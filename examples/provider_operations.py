#!/usr/bin/env python
"""Operating a protected data provider day to day.

Shows the :class:`repro.service.DataProviderService` facade — the full
composition a provider deploys: engine + delay guard + account
defenses. The walkthrough covers a provider's operational lifecycle:

1. stand the service up with §2 delays and §2.4 account limits,
2. serve a day of customer traffic,
3. read the operator report (protection posture, hot tuples),
4. save everything — data *and* learned popularity — and restart
   without losing the delay schedule,
5. watch the account limits refuse an over-eager client.

Run: ``python examples/provider_operations.py``
"""

import tempfile
from pathlib import Path

from repro.core import AccessDenied, AccountPolicy, GuardConfig
from repro.service import DataProviderService
from repro.workloads import make_zipf_query_trace


def main() -> None:
    # 1. Stand up the service: 10s cap, registration throttled to one
    #    account per minute, 500 queries per account per day.
    service = DataProviderService(
        guard_config=GuardConfig(cap=10.0),
        account_policy=AccountPolicy(
            registration_interval=60.0,
            daily_query_quota=500,
        ),
    )
    db = service.database
    db.execute(
        "CREATE TABLE reports (id INTEGER PRIMARY KEY, sector TEXT, "
        "score FLOAT)"
    )
    db.insert_rows(
        "reports",
        [(i, f"sector-{i % 12}", i * 0.1) for i in range(1, 2001)],
    )

    # 2. Customers arrive (the registration gate admits one per minute;
    #    advance the virtual clock between signups).
    for name in ("acme", "globex", "initech"):
        service.register(name, subnet=f"net-{name}")
        service.clock.advance(61)

    trace = make_zipf_query_trace(2000, 2000, alpha=1.3, seed=7)
    customers = ("acme", "globex", "initech")
    for position, event in enumerate(trace):
        who = customers[position % 3]
        try:
            service.query(
                who, f"SELECT * FROM reports WHERE id = {event.item}"
            )
        except AccessDenied:
            break

    # 3. Operator's view.
    print("=== operator report, end of day 1 ===")
    print(service.report().render())

    # 4. Nightly save; morning restart. The learned popularity comes
    #    back, so the delay schedule is identical after the restart.
    with tempfile.TemporaryDirectory() as scratch:
        save_path = Path(scratch) / "provider.json"
        service.save(save_path)
        (hot_table, hot_rowid), _count = service.guard.popularity.snapshot()[0]
        hot_before = service.guard.delay_for(hot_table, hot_rowid)

        restored = DataProviderService.load(
            save_path,
            guard_config=GuardConfig(cap=10.0),
            account_policy=AccountPolicy(daily_query_quota=500),
        )
        hot_after = restored.guard.delay_for(hot_table, hot_rowid)
        print("\n=== restart ===")
        print(f"hottest tuple delay before save : {hot_before * 1000:.3f} ms")
        print(f"hottest tuple delay after load  : {hot_after * 1000:.3f} ms")

        # 5. An over-eager client hits the daily quota.
        restored.register("scraper-llc")
        served = denied = 0
        for item in range(1, 1000):
            try:
                restored.query(
                    "scraper-llc",
                    f"SELECT * FROM reports WHERE id = {item}",
                )
                served += 1
            except AccessDenied as refusal:
                denied += 1
                print(
                    f"\nscraper-llc stopped after {served} queries "
                    f"({refusal.reason}; retry in "
                    f"{refusal.retry_after / 3600:.1f} h)"
                )
                break


if __name__ == "__main__":
    main()
