#!/usr/bin/env python
"""A stock-quote service defended by data change (§3's scenario).

Quote lookups are nearly uniform — everyone checks their own portfolio —
so the popularity scheme has no skew to exploit. But *update* rates are
extremely skewed: hot tickers change every second while obscure ones
change daily. The §3 defense charges delay inversely to update rate, so
by the time a robot finishes extracting the table, the hot half of the
data is stale and the copy is worthless.

Run: ``python examples/stock_ticker.py``
"""

import numpy as np

from repro.attacks import ExtractionAdversary
from repro.core import DelayGuard, GuardConfig, VirtualClock, analysis
from repro.engine import Database
from repro.sim.metrics import format_seconds
from repro.workloads import UpdateProcess, load_items_table


def main() -> None:
    population = 20_000  # listed instruments
    alpha = 1.0  # update-rate skew
    target_staleness = 0.9

    # Size the delay constant c from equation (12): what c guarantees
    # that 90% of any extracted snapshot is stale?
    c = analysis.required_c_for_staleness(target_staleness, alpha)
    print(f"equation (12): staleness >= {target_staleness:.0%} at "
          f"alpha={alpha} needs c = {c:.2f}")

    db = Database()
    load_items_table(db, population, table="quotes", payload_prefix="tick")
    clock = VirtualClock()
    guard = DelayGuard(
        db,
        config=GuardConfig(policy="update", update_c=c, cap=10.0),
        clock=clock,
    )

    # Hot tickers update once per second; rank-i updates at i^-alpha/s.
    market = UpdateProcess.zipf(population, alpha, rmax=1.0)
    heap = db.catalog.table("quotes")
    rates = {
        ("quotes", rowid): market.rate(row[0]) for rowid, row in heap.scan()
    }
    guard.update_rates.prime(rates, window=1e9)

    # Legitimate users: uniform lookups. Median delay = delay of the
    # median-update-rate instrument.
    delays = [
        guard.delay_for("quotes", rowid) for rowid in heap.rowids()[::37]
    ]
    print(f"median legitimate lookup delay: "
          f"{format_seconds(float(np.median(delays)))}")

    # The robot extracts everything while the market keeps moving.
    robot = ExtractionAdversary(guard, "quotes", record=False)
    result = robot.estimate(
        update_process=market, rng=np.random.default_rng(7)
    )
    d_total = result.total_delay
    print(f"extraction takes {format_seconds(d_total)} "
          f"({result.tuples:,} quotes)")

    # Paper staleness model (eq. 10): stale iff d_total >= update period.
    stale_paper = float((market.rates[1:] >= 1.0 / d_total).mean())
    print(f"stale on arrival (paper model) : {stale_paper:.1%}")
    print(f"stale on arrival (Poisson sim) : {result.staleness.fraction:.1%}")
    print(f"eq. (12) guarantee             : "
          f"{analysis.staleness_fraction(c, alpha):.1%}")
    print("\nthe thief waited "
          f"{format_seconds(d_total)} for a snapshot that was "
          f"{stale_paper:.0%} obsolete before it finished downloading.")


if __name__ == "__main__":
    main()
