#!/usr/bin/env python
"""Quickstart: protect a database with a delay guard in ~40 lines.

Creates a small relation, wraps it in a :class:`repro.core.DelayGuard`,
and shows the core behaviour of the paper's scheme:

* queries for *popular* tuples become nearly free;
* queries for *unpopular* tuples pay the capped delay;
* extracting the whole table costs hours even when the table is tiny.

Run: ``python examples/quickstart.py``
"""

from repro.core import DelayGuard, GuardConfig, VirtualClock
from repro.engine import Database
from repro.sim.metrics import format_seconds


def main() -> None:
    # 1. An ordinary database (build any schema you like).
    db = Database()
    db.execute(
        "CREATE TABLE listings (id INTEGER PRIMARY KEY, "
        "city TEXT, phone TEXT)"
    )
    db.insert_rows(
        "listings",
        [(i, f"city-{i % 50}", f"555-{i:04d}") for i in range(1, 1001)],
    )

    # 2. Wrap it. The guard intercepts every query, learns per-tuple
    #    popularity, and charges delay inversely proportional to it
    #    (capped at 10 seconds). The VirtualClock simulates the waits so
    #    this demo finishes instantly; use RealClock() in a deployment.
    clock = VirtualClock()
    guard = DelayGuard(db, config=GuardConfig(cap=10.0), clock=clock)

    # 3. A brand-new tuple pays the cold-start cap...
    first = guard.execute("SELECT * FROM listings WHERE id = 42")
    print(f"first access to tuple 42 : {format_seconds(first.delay)}")

    # ...but popularity drives the price down fast.
    for _ in range(500):
        guard.execute("SELECT * FROM listings WHERE id = 42")
    warm = guard.execute("SELECT * FROM listings WHERE id = 42")
    print(f"501st access to tuple 42 : {format_seconds(warm.delay)}")

    # An unpopular tuple still costs the cap.
    cold = guard.execute("SELECT * FROM listings WHERE id = 999")
    print(f"access to cold tuple 999 : {format_seconds(cold.delay)}")

    # 4. The adversary's problem: every tuple must be touched, and most
    #    tuples are cold. Stealing this 1,000-row table costs hours.
    total = guard.extraction_cost("listings")
    bound = guard.max_extraction_cost("listings")
    print(f"full extraction would cost {format_seconds(total)} "
          f"(bound: {format_seconds(bound)})")
    print(f"median legitimate delay so far: "
          f"{format_seconds(guard.stats.median_delay())}")


if __name__ == "__main__":
    main()
