#!/usr/bin/env python
"""A web directory provider under extraction attack (§1's scenario).

Simulates the paper's motivating data provider: a directory service
whose whole value is its compiled database. A year of legitimate,
Zipf-skewed traffic (the synthetic Calgary trace) teaches the guard the
popularity distribution; then three adversaries try to take the data:

1. a **sequential robot** walking the key space one query at a time;
2. a **Sybil adversary** with 100 manufactured identities, with and
   without the paper's registration-rate defense;
3. a **storefront** relaying its own customers' queries through one
   account, against a daily query quota.

Run: ``python examples/web_directory.py``
(takes ~10 s: it replays 725,091 requests)
"""

from repro.attacks import (
    ExtractionAdversary,
    ParallelAdversary,
    StorefrontAttack,
    registration_interval_for_target,
)
from repro.core import (
    AccountManager,
    AccountPolicy,
    DelayGuard,
    GuardConfig,
    VirtualClock,
)
from repro.engine import Database
from repro.sim import TraceReplayer
from repro.sim.metrics import format_seconds
from repro.workloads import generate_calgary, make_zipf_query_trace


def main() -> None:
    print("generating a year of directory traffic (Calgary-like)...")
    dataset = generate_calgary()  # 12,179 objects / 725,091 requests

    db = Database()
    dataset.load_into(db, table="directory")
    clock = VirtualClock()
    guard = DelayGuard(db, config=GuardConfig(cap=10.0), clock=clock)

    print("replaying legitimate traffic through the guard...")
    report = TraceReplayer(guard, "directory").replay(dataset.trace)
    print(f"  {report.queries:,} queries served; median delay "
          f"{format_seconds(report.median_delay)}, 95th percentile "
          f"{format_seconds(report.user_delays.quantile(0.95))}")

    # -- adversary 1: the sequential robot -------------------------------
    robot = ExtractionAdversary(guard, "directory", record=False)
    extraction = robot.estimate()
    print("\nsequential extraction robot:")
    print(f"  total delay {format_seconds(extraction.total_delay)} "
          f"({extraction.tuples:,} tuples; bound "
          f"{format_seconds(guard.max_extraction_cost('directory'))})")
    ratio = extraction.total_delay / max(report.median_delay, 1e-9)
    print(f"  adversary pays {ratio:,.0f}x the median user delay")

    # -- adversary 2: Sybil, then the registration gate ------------------
    print("\nSybil adversary with 100 identities:")
    open_accounts = AccountManager(policy=AccountPolicy(), clock=clock)
    guard.accounts = open_accounts
    sybil = ParallelAdversary(guard, "directory", identities=100)
    free = sybil.simulate()
    print(f"  no defense: wall time {format_seconds(free.wall_time)} "
          f"(speedup {free.speedup:.0f}x)")

    interval = registration_interval_for_target(
        extraction.total_delay, extraction.total_delay
    )
    guard.accounts = AccountManager(
        policy=AccountPolicy(registration_interval=interval), clock=clock
    )
    gated = ParallelAdversary(guard, "directory", identities=100).simulate()
    print(f"  with one registration per {format_seconds(interval)}: "
          f"wall time {format_seconds(gated.wall_time)} "
          f"(parallelism bought {gated.speedup:.1f}x)")

    # -- adversary 3: the storefront --------------------------------------
    print("\nstorefront relaying customer queries (quota 1,000/day):")
    guard.accounts = AccountManager(
        policy=AccountPolicy(daily_query_quota=1000), clock=clock
    )
    guard.accounts.register("storefront-inc")
    customers = make_zipf_query_trace(
        dataset.population, 5000, alpha=1.5, seed=99
    )
    result = StorefrontAttack(
        guard, "directory", "storefront-inc", cache=True
    ).relay(customers)
    print(f"  relayed {result.relayed:,} queries before quota; covered "
          f"{result.coverage:.1%} of the database")


if __name__ == "__main__":
    main()
