#!/usr/bin/env python
"""The defense over a real database, served over a real socket.

Combines the two deployment adapters:

* :class:`repro.adapters.SQLiteDelayProxy` — the delay scheme guarding
  an actual ``sqlite3`` database file, with no schema changes;
* :class:`repro.server.DelayServer` — the TCP front door (JSON-lines
  protocol) through which clients must pass.

The walkthrough protects a small SQLite product catalog, lets a
legitimate client browse popular items cheaply, and shows what a
key-space-walking robot would pay.

Run: ``python examples/sqlite_front_door.py``
"""

import sqlite3
import tempfile
from pathlib import Path

from repro.adapters import SQLiteDelayProxy
from repro.core import AccountPolicy, GuardConfig
from repro.server import DelayClient, DelayServer
from repro.service import DataProviderService
from repro.sim.metrics import format_seconds


def sqlite_part(db_path: Path) -> None:
    print("--- part 1: the delay proxy over a SQLite file ---")
    connection = sqlite3.connect(db_path)
    connection.execute(
        "CREATE TABLE catalog (id INTEGER PRIMARY KEY, sku TEXT, "
        "price REAL)"
    )
    connection.executemany(
        "INSERT INTO catalog VALUES (?, ?, ?)",
        [(i, f"SKU-{i:05d}", round(3 + (i % 70) * 1.5, 2))
         for i in range(1, 5001)],
    )
    connection.commit()

    proxy = SQLiteDelayProxy(connection, config=GuardConfig(cap=10.0))

    # Shoppers hammer the bestsellers...
    for _ in range(300):
        proxy.execute("SELECT * FROM catalog WHERE id = 17")
    hot = proxy.execute("SELECT * FROM catalog WHERE id = 17")
    cold = proxy.execute("SELECT * FROM catalog WHERE id = 4444")
    print(f"bestseller lookup : {format_seconds(hot.delay)}")
    print(f"long-tail lookup  : {format_seconds(cold.delay)}")

    # ...while a robot walking all 5,000 SKUs would wait:
    print(
        "full catalog theft: "
        f"{format_seconds(proxy.extraction_cost('catalog'))}"
    )
    connection.close()


def server_part() -> None:
    print("\n--- part 2: the TCP front door ---")
    service = DataProviderService(
        guard_config=GuardConfig(cap=10.0),
        account_policy=AccountPolicy(daily_query_quota=1000),
    )
    service.database.execute(
        "CREATE TABLE catalog (id INTEGER PRIMARY KEY, sku TEXT)"
    )
    service.database.insert_rows(
        "catalog", [(i, f"SKU-{i:05d}") for i in range(1, 501)]
    )

    with DelayServer(service) as server:
        host, port = server.address
        print(f"provider listening on {host}:{port}")
        with DelayClient(host, port) as client:
            client.register("shopper-1")
            first = client.query(
                "SELECT * FROM catalog WHERE id = 1", identity="shopper-1"
            )
            print(
                f"first lookup over the wire: rows={first['rows']}, "
                f"delay={format_seconds(first['delay'])}"
            )
            for _ in range(100):
                client.query(
                    "SELECT * FROM catalog WHERE id = 1",
                    identity="shopper-1",
                )
            warm = client.query(
                "SELECT * FROM catalog WHERE id = 1", identity="shopper-1"
            )
            print(
                "same lookup after 100 repeats: "
                f"delay={format_seconds(warm['delay'])}"
            )
            report = client.report()
            print(
                f"operator report: {report['queries']} queries, "
                "extraction would cost "
                f"{format_seconds(report['extraction_cost'])}"
            )


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        sqlite_part(Path(scratch) / "catalog.db")
    server_part()


if __name__ == "__main__":
    main()
