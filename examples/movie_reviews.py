#!/usr/bin/env python
"""A movie-review site with fast-moving popularity (§4.2's scenario).

Films open big and fade within weeks, so the popularity distribution
the guard must learn is never stationary. This example replays a
synthetic year of box-office-driven traffic twice:

* with **no decay** — the guard remembers January blockbusters forever;
* with **weekly decay** — the guard forgets, tracking the current hits.

It then shows the :class:`~repro.core.AdaptiveTracker` picking the
right decay term by itself, the way §2.3 suggests when the workload
dynamics are unknown.

Run: ``python examples/movie_reviews.py``
"""

from repro.core import AdaptiveTracker, DelayGuard, GuardConfig, VirtualClock
from repro.engine import Database
from repro.sim import TraceReplayer
from repro.sim.metrics import format_seconds
from repro.workloads import generate_boxoffice


def replay_with_decay(dataset, weekly_decay):
    db = Database()
    dataset.load_into(db, table="films")
    guard = DelayGuard(
        db, config=GuardConfig(cap=10.0), clock=VirtualClock()
    )
    replayer = TraceReplayer(
        guard, "films",
        boundary_decay=weekly_decay if weekly_decay > 1.0 else None,
    )
    report = replayer.replay(dataset.trace)
    return guard, report


def main() -> None:
    print("generating a year of box-office sales (634 films)...")
    dataset = generate_boxoffice()
    requests = dataset.trace.query_count()
    print(f"  {requests:,} review lookups, one per $100k of weekly gross")

    print("\nhow decay changes the December experience:")
    for decay in (1.0, 1.2, 2.0):
        guard, report = replay_with_decay(dataset, decay)
        last_weeks = report.user_delays.values[-5000:]
        december_median = sorted(last_weeks)[len(last_weeks) // 2]
        cost = guard.extraction_cost("films")
        print(
            f"  weekly decay {decay:>4.1f}: year median "
            f"{format_seconds(report.median_delay):>10}, December median "
            f"{format_seconds(december_median):>10}, adversary "
            f"{format_seconds(cost):>8}"
        )

    # -- adaptive decay selection (§2.3) ---------------------------------
    print("\nadaptive tracker choosing its own decay term:")
    adaptive = AdaptiveTracker([1.0, 1.001, 1.01], score_smoothing=0.01)
    for event in dataset.trace:
        if event.kind == "query":
            adaptive.record(event.item)
    print(f"  candidates 1.0 / 1.001 / 1.01 -> selected "
          f"{adaptive.active_rate} (per-request)")
    scores = adaptive.scores()
    for rate in sorted(scores):
        print(f"    decay {rate}: predictive loss {scores[rate]:.3f}")
    print("  (a shifting workload favours forgetting; a static one "
          "would favour 1.0)")


if __name__ == "__main__":
    main()
