"""Command-line interface.

Eight subcommands::

    python -m repro sql        # run SQL against a (persisted) database
    python -m repro csv        # import/export CSV
    python -m repro analyze    # closed-form predictions (eqs. 1-12)
    python -m repro experiments  # regenerate the paper's tables/figures
    python -m repro metrics    # scrape a live server's metrics
    python -m repro trace      # fetch a live server's recent traces
    python -m repro top        # live health + extraction-risk ranking
    python -m repro audit      # read a server's audit event log

Examples::

    python -m repro sql --db shop.json \
        -e "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)" \
        -e "INSERT INTO t VALUES (1, 'x')" --save
    python -m repro sql --db shop.json -e "SELECT * FROM t"
    python -m repro analyze --tuples 100000 --alpha 1.5 --cap 10
    python -m repro experiments table3 --scale 0.05
    python -m repro metrics --port 7007 --prometheus
    python -m repro trace --port 7007 --limit 5
    python -m repro top --port 7007 --watch --interval 2
    python -m repro audit audit.jsonl --kind forensic_flag --limit 50
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .core import analysis
from .engine import (
    Database,
    EngineError,
    export_csv,
    import_csv,
    open_database,
    save_database,
)
from .engine.persistence import PersistenceError
from .sim.metrics import format_ratio, format_seconds


def _load_or_create(path: Optional[str]) -> Database:
    if path and Path(path).exists():
        return open_database(path)
    return Database()


def _render_result(result) -> str:
    if result.statement_kind != "select":
        return f"ok ({result.rowcount} row(s) affected)"
    lines = []
    if result.columns:
        lines.append(" | ".join(result.columns))
    for row in result.rows:
        lines.append(
            " | ".join("NULL" if value is None else str(value) for value in row)
        )
    lines.append(f"({len(result.rows)} row(s))")
    return "\n".join(lines)


def cmd_sql(args: argparse.Namespace) -> int:
    """Execute SQL statements against a database file."""
    database = _load_or_create(args.db)
    statements: List[str] = list(args.execute or [])
    if not statements and not sys.stdin.isatty():
        text = sys.stdin.read()
        statements = [
            chunk.strip() for chunk in text.split(";") if chunk.strip()
        ]
    if not statements:
        print("no SQL given (use -e or pipe statements on stdin)")
        return 2
    status = 0
    for sql in statements:
        try:
            print(_render_result(database.execute(sql)))
        except EngineError as error:
            print(f"error: {error}", file=sys.stderr)
            status = 1
    if args.save:
        if not args.db:
            print("error: --save requires --db", file=sys.stderr)
            return 2
        save_database(database, args.db)
        print(f"saved to {args.db}")
    return status


def cmd_csv(args: argparse.Namespace) -> int:
    """Import or export a table as CSV."""
    database = _load_or_create(args.db)
    try:
        if args.direction == "export":
            count = export_csv(database, args.table, args.file)
            print(f"exported {count} row(s) from {args.table} to {args.file}")
        else:
            count = import_csv(
                database, args.table, args.file, create=args.create
            )
            print(f"imported {count} row(s) into {args.table}")
            if args.db:
                save_database(database, args.db)
                print(f"saved to {args.db}")
    except (EngineError, PersistenceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Print the paper's closed-form predictions for a configuration."""
    n, alpha, beta, cap = args.tuples, args.alpha, args.beta, args.cap
    fmax = args.fmax
    if fmax is None:
        fmax = float(analysis.zipf_weights(n, alpha)[0])
    median = analysis.median_delay(n, fmax, alpha, beta, cap)
    total = analysis.total_extraction_delay(n, fmax, alpha, beta, cap)
    ratio = analysis.adversary_to_user_ratio(n, fmax, alpha, beta, cap)
    print(f"tuples (N)            : {n:,}")
    print(f"zipf alpha            : {alpha}")
    print(f"beta                  : {beta}")
    print(f"fmax                  : {fmax:.6g}")
    print(f"cap (d_max)           : "
          f"{'none' if cap is None else format_seconds(cap)}")
    print(f"median rank           : {analysis.median_rank(n, alpha)}")
    print(f"median user delay     : {format_seconds(median)}")
    print(f"adversary delay       : {format_seconds(total)}")
    print(f"adversary/user ratio  : {format_ratio(ratio)}")
    if cap is not None:
        m = analysis.cap_rank(n, fmax, alpha, beta, cap)
        print(f"cap rank (M)          : {m:,} "
              f"({m / n:.1%} of tuples below the cap)")
        print(f"N*d_max bound         : {format_seconds(n * cap)}")
    if args.staleness_c is not None:
        s = analysis.staleness_fraction(args.staleness_c, alpha)
        print(f"eq.12 staleness (c={args.staleness_c:g}): {s:.1%}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """Delegate to the experiments runner."""
    from .experiments.runner import main as run_experiments

    argv = list(args.names)
    argv += ["--scale", str(args.scale)]
    return run_experiments(argv)


def _render_metric(name: str, snapshot: dict) -> List[str]:
    lines = [f"{name} ({snapshot['type']})"]
    if snapshot["type"] == "histogram":
        summary = f"  count={snapshot['count']} sum={snapshot['sum']:.6g}"
        quantiles = snapshot.get("quantiles")
        if quantiles:
            summary += (
                f" p50={quantiles['p50']:.6g} p99={quantiles['p99']:.6g}"
            )
        lines.append(summary)
        return lines
    if "series" in snapshot:
        for series in snapshot["series"]:
            labels = series["labels"]
            label_text = ", ".join(f"{k}={v}" for k, v in labels.items())
            lines.append(f"  {{{label_text}}} {series['value']:.6g}")
    else:
        lines.append(f"  {snapshot['value']:.6g}")
    return lines


def cmd_metrics(args: argparse.Namespace) -> int:
    """Scrape a live DelayServer's metrics registry."""
    from .server import DelayClient, ServerError

    try:
        with DelayClient(args.host, args.port, timeout=args.timeout) as client:
            if args.prometheus:
                print(client.metrics(format="prometheus")["text"], end="")
                return 0
            for name, snapshot in client.metrics()["metrics"].items():
                for line in _render_metric(name, snapshot):
                    print(line)
    except (ServerError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Fetch recent query-lifecycle traces from a live DelayServer."""
    import json as json_module

    from .server import DelayClient, ServerError

    try:
        with DelayClient(args.host, args.port, timeout=args.timeout) as client:
            response = client.traces(limit=args.limit)
    except (ServerError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    traces = response["traces"]
    if args.json:
        print(json_module.dumps(traces, indent=2))
        return 0
    print(
        f"{len(traces)} trace(s) shown, "
        f"{response['finished_total']} finished total"
    )
    for trace in traces:
        identity = trace.get("identity", "-")
        sql = trace.get("sql", "")
        print(
            f"[{trace['status']}] {identity} "
            f"delay={format_seconds(trace['delay'])} "
            f"total={format_seconds(trace['duration'])} {sql}"
        )
        for span in trace["spans"]:
            print(
                f"    {span['name']:<10} +{span['offset'] * 1e3:8.3f} ms  "
                f"{span['duration'] * 1e3:10.3f} ms"
            )
        if trace.get("reason"):
            print(f"    reason: {trace['reason']}")
    return 0


def _render_top(health: dict, forensics: Optional[dict]) -> str:
    """Format one health + forensics snapshot for the terminal."""
    lines = []
    build = health.get("build", {})
    lines.append(
        f"repro {build.get('version', '?')} "
        f"(python {build.get('python', '?')}) "
        f"{health['status']}, up {format_seconds(health['uptime_seconds'])}"
    )
    server = health["server"]
    lines.append(
        f"queue {server['queue_depth']}/{server['queue_capacity']}  "
        f"parked {server['parked_delays']}/{server['max_parked']}  "
        f"workers {server['workers_busy']}/{server['workers']}  "
        f"conns {server['connections']}/{server['max_connections']}  "
        f"errors {server['handler_errors_total']}"
    )
    if server["shed_counts"]:
        shed = ", ".join(
            f"{point}={count}"
            for point, count in sorted(server["shed_counts"].items())
        )
        lines.append(f"shed: {shed}")
    for window, slo in sorted(
        health["slo"]["windows"].items(), key=lambda kv: int(kv[0])
    ):
        lines.append(
            f"slo[{window}s]: avail={slo['availability']:.4f} "
            f"burn={slo['burn_rate']:.2f} "
            f"goodput={slo['goodput_per_second']:.2f}/s "
            f"p_mean={slo['mean_latency_seconds'] * 1e3:.2f}ms "
            f"slow={slo['slow_fraction']:.1%} "
            f"({slo['requests']} reqs)"
        )
    durability = health.get("durability") or {}
    if "shards" in durability:
        # A cluster aggregates shard journals; there is no single seq.
        if durability.get("journal_attached"):
            lines.append(
                f"journal: {len(durability['shards'])} shard journals, "
                f"lag={durability['journal_lag']} since checkpoint "
                f"#{durability['checkpoints_completed']}"
            )
    elif durability.get("journal_attached"):
        lines.append(
            f"journal: seq={durability['journal_last_seq']} "
            f"lag={durability['journal_lag']} since checkpoint "
            f"#{durability['checkpoints_completed']}"
        )
    cluster = health.get("cluster")
    if cluster is not None:
        routing = cluster.get("routing") or {}
        lines.append(
            f"cluster: {cluster['shard_count']} shards "
            f"N={cluster['population']}  "
            f"routed fast={routing.get('single_shard_queries', 0)} "
            f"scatter={routing.get('scatter_queries', 0)} "
            f"broadcast={routing.get('broadcast_statements', 0)}"
        )
        gossip = cluster.get("gossip")
        if gossip is not None:
            lags = ",".join(str(lag) for lag in gossip["shard_lags"])
            lines.append(
                f"gossip: rounds={gossip['rounds_total']} "
                f"adopted={gossip['entries_adopted_total']} "
                f"lag=[{lags}] "
                f"divergence={gossip['count_divergence']:.2f}"
            )
        replication = cluster.get("replication")
        if replication is not None:
            summary = replication.get("summary") or {}
            lines.append(
                f"replication: x{replication.get('factor', '?')} "
                f"groups={summary.get('groups_available', '?')}/"
                f"{summary.get('groups', '?')} up "
                f"lag={summary.get('max_replication_lag', 0)} "
                f"failovers={summary.get('failovers_total', 0)} "
                f"fenced={summary.get('fencings_total', 0)}"
            )
        groups_by_index = {
            group["group"]: group
            for group in (replication or {}).get("groups", [])
        }
        for entry in cluster.get("shards", []):
            journal = "yes" if entry.get("journal_attached") else "no"
            line = (
                f"  shard {entry['shard']}: rows={entry['rows']} "
                f"epoch={entry['mutation_epoch']} journal={journal}"
            )
            group = groups_by_index.get(entry["shard"])
            if group is not None:
                role = "up" if group["available"] else "DOWN"
                line += (
                    f" [{role} primary={group['primary']} "
                    f"term={group['term']} lag={group['replication_lag']} "
                    f"failovers={group['failovers']}]"
                )
            elif not entry.get("available", True):
                line += " [DOWN]"
            lines.append(line)
    staleness = health.get("staleness") or {}
    for table, stale in sorted(staleness.items()):
        lines.append(
            f"staleness[{table}]: S_max={stale['smax_fraction']:.2%} "
            f"T={format_seconds(stale['extraction_seconds'])} "
            f"rate={stale['update_rate_per_second']:.4g}/s"
        )
    if forensics is not None:
        lines.append(
            f"forensics: {forensics['flagged_identities']} flagged / "
            f"{forensics['tracked_identities']} tracked "
            f"(raised {forensics['flags_raised_total']}, "
            f"cleared {forensics['flags_cleared_total']})"
        )
        for entry in forensics.get("identities", []):
            flag = " FLAGGED" if entry["flagged"] else ""
            lines.append(
                f"  {entry['identity']:<20} risk={entry['risk']:.3f} "
                f"cov={entry['coverage']:.1%} nov={entry['novelty']:.1%} "
                f"reqs={entry['requests']} "
                f"eta={format_seconds(entry['eta_seconds'])}{flag}"
            )
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """Live health + extraction-risk view of a running DelayServer."""
    import json as json_module
    import time as time_module

    from .server import DelayClient, ServerError

    try:
        with DelayClient(args.host, args.port, timeout=args.timeout) as client:
            while True:
                health = client.health()
                forensics = None
                try:
                    forensics = client.forensics(limit=args.limit)
                except ServerError as error:
                    if error.reason != "not_enabled":
                        raise
                if args.json:
                    print(
                        json_module.dumps(
                            {"health": health, "forensics": forensics},
                            indent=2,
                        )
                    )
                else:
                    print(_render_top(health, forensics))
                if not args.watch:
                    return 0
                time_module.sleep(args.interval)
                print()
    except KeyboardInterrupt:
        return 0
    except (ServerError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def cmd_audit(args: argparse.Namespace) -> int:
    """Read a server's audit event log (including rotated segments)."""
    import json as json_module
    from collections import deque

    from .obs import iter_audit_events

    if not Path(args.path).exists():
        print(f"error: no audit log at {args.path}", file=sys.stderr)
        return 1
    events = iter_audit_events(args.path)
    if args.kind:
        events = (
            event for event in events if event.get("event") in args.kind
        )
    selected = deque(events, maxlen=args.limit)
    for event in selected:
        if args.json:
            print(json_module.dumps(event))
            continue
        ts = event.get("ts")
        stamp = f"{ts:.3f}" if isinstance(ts, (int, float)) else "-"
        kind = event.get("event", "?")
        trace_id = event.get("trace_id") or "-"
        detail = ", ".join(
            f"{key}={value}"
            for key, value in sorted(event.items())
            if key not in ("v", "ts", "event", "trace_id")
        )
        print(f"{stamp} {kind:<22} trace={trace_id:<12} {detail}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Delay-based defense against database extraction "
            "(SDM@VLDB 2004 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sql = commands.add_parser("sql", help="run SQL against a database file")
    sql.add_argument("--db", help="database file (created if missing)")
    sql.add_argument(
        "-e", "--execute", action="append", help="SQL statement (repeatable)"
    )
    sql.add_argument(
        "--save", action="store_true", help="persist the database after"
    )
    sql.set_defaults(handler=cmd_sql)

    csv_cmd = commands.add_parser("csv", help="import/export CSV")
    csv_cmd.add_argument("direction", choices=("import", "export"))
    csv_cmd.add_argument("table")
    csv_cmd.add_argument("file")
    csv_cmd.add_argument("--db", help="database file")
    csv_cmd.add_argument(
        "--create", action="store_true",
        help="create the table from the CSV header (import only)",
    )
    csv_cmd.set_defaults(handler=cmd_csv)

    analyze = commands.add_parser(
        "analyze", help="closed-form predictions for a configuration"
    )
    analyze.add_argument("--tuples", type=int, required=True)
    analyze.add_argument("--alpha", type=float, default=1.0)
    analyze.add_argument("--beta", type=float, default=0.0)
    analyze.add_argument("--cap", type=float, default=10.0)
    analyze.add_argument(
        "--no-cap", dest="cap", action="store_const", const=None
    )
    analyze.add_argument(
        "--fmax", type=float, default=None,
        help="top-item frequency (default: exact Zipf head weight)",
    )
    analyze.add_argument(
        "--staleness-c", type=float, default=None,
        help="also print eq.12 staleness for this c",
    )
    analyze.set_defaults(handler=cmd_analyze)

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables/figures"
    )
    experiments.add_argument("names", nargs="*")
    experiments.add_argument("--scale", type=float, default=1.0)
    experiments.set_defaults(handler=cmd_experiments)

    metrics = commands.add_parser(
        "metrics", help="scrape a live server's metrics registry"
    )
    metrics.add_argument("--host", default="127.0.0.1")
    metrics.add_argument("--port", type=int, required=True)
    metrics.add_argument("--timeout", type=float, default=10.0)
    metrics.add_argument(
        "--prometheus", action="store_true",
        help="print Prometheus text exposition instead of a summary",
    )
    metrics.set_defaults(handler=cmd_metrics)

    trace = commands.add_parser(
        "trace", help="fetch a live server's recent query traces"
    )
    trace.add_argument("--host", default="127.0.0.1")
    trace.add_argument("--port", type=int, required=True)
    trace.add_argument("--timeout", type=float, default=10.0)
    trace.add_argument("--limit", type=int, default=20)
    trace.add_argument(
        "--json", action="store_true", help="print raw JSON traces"
    )
    trace.set_defaults(handler=cmd_trace)

    top = commands.add_parser(
        "top",
        help="live health + extraction-risk ranking from a server",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, required=True)
    top.add_argument("--timeout", type=float, default=10.0)
    top.add_argument(
        "--limit", type=int, default=10,
        help="how many risk-ranked identities to show",
    )
    top.add_argument(
        "--watch", action="store_true",
        help="refresh every --interval seconds until interrupted",
    )
    top.add_argument("--interval", type=float, default=2.0)
    top.add_argument(
        "--json", action="store_true", help="print raw JSON snapshots"
    )
    top.set_defaults(handler=cmd_top)

    audit = commands.add_parser(
        "audit", help="read an audit event log written by a server"
    )
    audit.add_argument("path", help="audit log path (rotations included)")
    audit.add_argument(
        "--limit", type=int, default=50, help="show the newest N events"
    )
    audit.add_argument(
        "--kind", action="append",
        help="only these event kinds (repeatable), e.g. forensic_flag",
    )
    audit.add_argument(
        "--json", action="store_true", help="print raw JSONL events"
    )
    audit.set_defaults(handler=cmd_audit)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit
        # quietly like any well-behaved filter. Reopen stdout on
        # devnull so the interpreter's shutdown flush doesn't raise.
        sys.stdout = open(os.devnull, "w")
        return 0


if __name__ == "__main__":
    sys.exit(main())
