"""Anti-entropy: converge every shard on one global count view.

Each round, every shard asks every peer for tracker entries newer than
the versions it already holds (:meth:`DelayGuard.gossip_versions` →
:meth:`DelayGuard.gossip_digest`) and folds them in
(:meth:`DelayGuard.gossip_merge`). The merges are per-origin
last-writer-wins joins — commutative, associative, idempotent — so
rounds may repeat, reorder, overlap with live traffic, or race each
other without double counting; the only cost of a missed round is
staleness, bounded by the round interval.

Pairwise full-mesh exchange is O(M²) per round, which is the right
trade for the single-digit shard counts this process-local cluster
targets: deltas are version-filtered, so a quiescent mesh exchanges
nothing.

An unreachable peer (a crashed replica, an injected fault) is retried
with capped exponential backoff and full jitter
(:class:`~repro.core.resilience.BackoffPolicy`) rather than at full
rate every round: the mesh keeps converging around the hole while the
dead pair costs one failed call per backoff window instead of per
round, and jitter keeps M peers from re-probing a recovering shard in
lockstep.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.guard import DelayGuard
from ..core.resilience import BackoffPolicy


class _PeerState:
    """Backoff bookkeeping for one (destination, source) exchange."""

    __slots__ = ("failures", "next_attempt_at")

    def __init__(self) -> None:
        self.failures = 0
        self.next_attempt_at = 0.0


class GossipCoordinator:
    """Runs anti-entropy rounds across a set of shard guards.

    Args:
        guards: the shard guards to keep convergent.
        interval: seconds between background rounds; None means manual
            only (call :meth:`run_round` — tests and the virtual-clock
            harness drive rounds explicitly).
        backoff: retry policy for unreachable peers; defaults to a
            capped full-jitter exponential starting at one round
            interval (or 100 ms for manual meshes) and capped at 30 s.
        time_source: monotonic seconds, injectable for tests.
    """

    def __init__(
        self,
        guards: Sequence[DelayGuard],
        interval: Optional[float] = None,
        backoff: Optional[BackoffPolicy] = None,
        time_source: Callable[[], float] = time.monotonic,
    ):
        if interval is not None and interval <= 0:
            raise ValueError(
                f"gossip interval must be positive, got {interval}"
            )
        self.guards: List[DelayGuard] = list(guards)
        self.interval = interval
        self.rounds_total = 0
        self.entries_adopted_total = 0
        base = interval if interval is not None else 0.1
        self.backoff = (
            backoff
            if backoff is not None
            else BackoffPolicy(base=base, cap=max(30.0, base))
        )
        self._time = time_source
        self.peer_failures_total = 0
        self.exchanges_skipped_total = 0
        self._peer_state: Dict[Tuple[int, int], _PeerState] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- the protocol --------------------------------------------------------

    def run_round(self) -> int:
        """One full-mesh exchange; returns entries adopted this round.

        Serialised under the coordinator lock so a manual round and the
        background thread never interleave half-rounds (the merge would
        still be correct — idempotence — but the round counters would
        tear). Pairs whose last exchange failed are skipped until
        their jittered backoff window elapses.
        """
        with self._lock:
            adopted = 0
            now = self._time()
            for dst_index, destination in enumerate(self.guards):
                versions = None
                for src_index, source in enumerate(self.guards):
                    if source is destination:
                        continue
                    state = self._peer_state.get((dst_index, src_index))
                    if state is not None and now < state.next_attempt_at:
                        self.exchanges_skipped_total += 1
                        continue
                    try:
                        if versions is None:
                            versions = destination.gossip_versions()
                        digest = source.gossip_digest(versions)
                        counts = destination.gossip_merge(digest)
                    except Exception:
                        if state is None:
                            state = _PeerState()
                            self._peer_state[(dst_index, src_index)] = state
                        self.peer_failures_total += 1
                        state.next_attempt_at = now + self.backoff.wait(
                            state.failures
                        )
                        state.failures += 1
                        continue
                    if state is not None:
                        # Reachable again: retry at full rate.
                        del self._peer_state[(dst_index, src_index)]
                    adopted += sum(counts.values())
                    # The merge may have advanced our versions; refresh
                    # so the next source's digest is delta-only.
                    versions = None
            self.rounds_total += 1
            self.entries_adopted_total += adopted
            return adopted

    def peers_backed_off(self) -> int:
        """Pairs currently waiting out a backoff window."""
        now = self._time()
        with self._lock:
            return sum(
                1
                for state in self._peer_state.values()
                if now < state.next_attempt_at
            )

    # -- background loop -----------------------------------------------------

    def start(self) -> None:
        """Run rounds on a daemon thread every ``interval`` seconds."""
        if self.interval is None:
            raise ValueError("no interval configured; call run_round()")
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-gossip", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background loop (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None

    @property
    def running(self) -> bool:
        """True while the background loop is alive."""
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.run_round()

    # -- observability -------------------------------------------------------

    def shard_lags(self) -> List[int]:
        """Per-shard version lag: entries each shard has not yet seen.

        For shard ``i``, the sum over every other origin of how far
        that origin's version mark has advanced past what shard ``i``
        holds. Zero everywhere immediately after a quiescent round.
        """
        versions = [guard.gossip_versions() for guard in self.guards]
        lags: List[int] = []
        for index, held in enumerate(versions):
            lag = 0
            for peer_index, peer in enumerate(versions):
                if peer_index == index:
                    continue
                for tracker in ("popularity", "update_rates"):
                    mine = held.get(tracker, {})
                    for origin, version in peer.get(tracker, {}).items():
                        lag += max(version - mine.get(origin, 0), 0)
            lags.append(lag)
        return lags

    def count_divergence(self) -> float:
        """Spread of the shards' effective decayed totals.

        Every shard's effective total (local + mirrored mass) estimates
        the same global quantity, so max − min measures how far the
        mesh is from convergence; 0.0 when fully converged.
        """
        totals = [guard.popularity.decayed_total for guard in self.guards]
        if not totals:
            return 0.0
        return max(totals) - min(totals)

    def stats(self) -> Dict:
        """Round counters plus the live lag/divergence view."""
        return {
            "rounds_total": self.rounds_total,
            "entries_adopted_total": self.entries_adopted_total,
            "interval": self.interval,
            "running": self.running,
            "shard_lags": self.shard_lags(),
            "count_divergence": self.count_divergence(),
            "peer_failures_total": self.peer_failures_total,
            "exchanges_skipped_total": self.exchanges_skipped_total,
            "peers_backed_off": self.peers_backed_off(),
        }
