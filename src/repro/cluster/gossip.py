"""Anti-entropy: converge every shard on one global count view.

Each round, every shard asks every peer for tracker entries newer than
the versions it already holds (:meth:`DelayGuard.gossip_versions` →
:meth:`DelayGuard.gossip_digest`) and folds them in
(:meth:`DelayGuard.gossip_merge`). The merges are per-origin
last-writer-wins joins — commutative, associative, idempotent — so
rounds may repeat, reorder, overlap with live traffic, or race each
other without double counting; the only cost of a missed round is
staleness, bounded by the round interval.

Pairwise full-mesh exchange is O(M²) per round, which is the right
trade for the single-digit shard counts this process-local cluster
targets: deltas are version-filtered, so a quiescent mesh exchanges
nothing.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from ..core.guard import DelayGuard


class GossipCoordinator:
    """Runs anti-entropy rounds across a set of shard guards.

    Args:
        guards: the shard guards to keep convergent.
        interval: seconds between background rounds; None means manual
            only (call :meth:`run_round` — tests and the virtual-clock
            harness drive rounds explicitly).
    """

    def __init__(
        self,
        guards: Sequence[DelayGuard],
        interval: Optional[float] = None,
    ):
        if interval is not None and interval <= 0:
            raise ValueError(
                f"gossip interval must be positive, got {interval}"
            )
        self.guards: List[DelayGuard] = list(guards)
        self.interval = interval
        self.rounds_total = 0
        self.entries_adopted_total = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- the protocol --------------------------------------------------------

    def run_round(self) -> int:
        """One full-mesh exchange; returns entries adopted this round.

        Serialised under the coordinator lock so a manual round and the
        background thread never interleave half-rounds (the merge would
        still be correct — idempotence — but the round counters would
        tear).
        """
        with self._lock:
            adopted = 0
            for destination in self.guards:
                versions = destination.gossip_versions()
                for source in self.guards:
                    if source is destination:
                        continue
                    digest = source.gossip_digest(versions)
                    counts = destination.gossip_merge(digest)
                    adopted += sum(counts.values())
            self.rounds_total += 1
            self.entries_adopted_total += adopted
            return adopted

    # -- background loop -----------------------------------------------------

    def start(self) -> None:
        """Run rounds on a daemon thread every ``interval`` seconds."""
        if self.interval is None:
            raise ValueError("no interval configured; call run_round()")
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-gossip", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background loop (idempotent)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None

    @property
    def running(self) -> bool:
        """True while the background loop is alive."""
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.run_round()

    # -- observability -------------------------------------------------------

    def shard_lags(self) -> List[int]:
        """Per-shard version lag: entries each shard has not yet seen.

        For shard ``i``, the sum over every other origin of how far
        that origin's version mark has advanced past what shard ``i``
        holds. Zero everywhere immediately after a quiescent round.
        """
        versions = [guard.gossip_versions() for guard in self.guards]
        lags: List[int] = []
        for index, held in enumerate(versions):
            lag = 0
            for peer_index, peer in enumerate(versions):
                if peer_index == index:
                    continue
                for tracker in ("popularity", "update_rates"):
                    mine = held.get(tracker, {})
                    for origin, version in peer.get(tracker, {}).items():
                        lag += max(version - mine.get(origin, 0), 0)
            lags.append(lag)
        return lags

    def count_divergence(self) -> float:
        """Spread of the shards' effective decayed totals.

        Every shard's effective total (local + mirrored mass) estimates
        the same global quantity, so max − min measures how far the
        mesh is from convergence; 0.0 when fully converged.
        """
        totals = [guard.popularity.decayed_total for guard in self.guards]
        if not totals:
            return 0.0
        return max(totals) - min(totals)

    def stats(self) -> Dict:
        """Round counters plus the live lag/divergence view."""
        return {
            "rounds_total": self.rounds_total,
            "entries_adopted_total": self.entries_adopted_total,
            "interval": self.interval,
            "running": self.running,
            "shard_lags": self.shard_lags(),
            "count_divergence": self.count_divergence(),
        }
