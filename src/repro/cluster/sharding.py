"""Hash partitioning: which shard owns which tuple.

Two complementary mappings, chosen so they agree forever:

- **Placement** hashes the partition key (the table's primary key
  value) with CRC-32, so INSERTs and primary-key lookups route without
  any directory state.
- **Ownership of an existing rowid** is positional: shard ``s`` of an
  ``M``-shard cluster allocates rowids from the residue class
  ``s + 1 (mod M)`` (see
  :meth:`repro.engine.table.HeapTable.configure_rowids`), so any layer
  holding a (table, rowid) key — the trackers, the router's merged
  touched-sets — recovers the owner as ``(rowid - 1) % M`` with no
  lookup at all.

The statement probes below are deliberately conservative: they only
claim a single-shard route when the WHERE clause *proves* one (a
top-level primary-key equality or IN over literals). Anything else
scatters, which is always correct — just wider.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Sequence, Tuple

from ..engine.expr import ColumnRef, Comparison, InList, Literal, conjuncts
from ..engine.types import SQLValue

Key = Tuple[str, int]


def hash_partition(table: str, value: SQLValue, shard_count: int) -> int:
    """Stable shard index for a (table, partition-key value) pair.

    CRC-32 over a type-tagged rendering: ``1`` and ``"1"`` must land
    deterministically but need not collide, and the mapping has to be
    identical across processes and Python versions (unlike ``hash()``,
    which is salted per process).
    """
    rendered = f"{table.lower()}\x00{type(value).__name__}\x00{value!r}"
    return zlib.crc32(rendered.encode("utf-8")) % shard_count


class ShardMap:
    """The cluster's partitioning scheme: M shards, CRC placement."""

    def __init__(self, shard_count: int):
        if shard_count < 1:
            raise ValueError(
                f"shard_count must be >= 1, got {shard_count}"
            )
        self.shard_count = shard_count

    def shard_for(self, table: str, pk_value: SQLValue) -> int:
        """The shard that stores (and prices) this partition key."""
        return hash_partition(table, pk_value, self.shard_count)

    def owner_of_rowid(self, rowid: int) -> int:
        """The shard whose allocator produced this global rowid."""
        return (rowid - 1) % self.shard_count

    def split_rows(
        self,
        table: str,
        pk_position: int,
        rows: Sequence[Sequence[object]],
    ) -> List[List[Sequence[object]]]:
        """Group INSERT value rows by owning shard (list per shard)."""
        grouped: List[List[Sequence[object]]] = [
            [] for _ in range(self.shard_count)
        ]
        for row in rows:
            value = row[pk_position]
            grouped[self.shard_for(table, value)].append(row)
        return grouped


def _column_matches(
    ref: ColumnRef, pk: str, table: str, alias: Optional[str]
) -> bool:
    """True when a column reference names the partition key."""
    name = ref.name.lower()
    qualifier, _, bare = name.rpartition(".")
    if bare != pk.lower():
        return False
    if not qualifier:
        return True
    accepted = {table.lower()}
    if alias:
        accepted.add(alias.lower())
    return qualifier in accepted


def pk_values_from_where(
    where: Optional[object],
    pk: Optional[str],
    table: str,
    alias: Optional[str] = None,
) -> Optional[List[SQLValue]]:
    """Partition-key values proven by a WHERE clause, else None.

    Scans the top-level AND conjuncts for ``pk = <literal>`` (either
    side) or ``pk IN (<literals>)``. Returns the literal values when
    exactly such a conjunct exists; None means the statement gives no
    single-shard proof and must scatter. OR trees, ranges, arithmetic,
    and ``NOT IN`` all deliberately return None — conservative is
    correct, just wider.
    """
    if pk is None or where is None:
        return None
    for conjunct in conjuncts(where):
        if isinstance(conjunct, Comparison) and conjunct.op == "=":
            left, right = conjunct.left, conjunct.right
            if (
                isinstance(left, ColumnRef)
                and isinstance(right, Literal)
                and _column_matches(left, pk, table, alias)
            ):
                return [right.value]
            if (
                isinstance(right, ColumnRef)
                and isinstance(left, Literal)
                and _column_matches(right, pk, table, alias)
            ):
                return [left.value]
        if (
            isinstance(conjunct, InList)
            and not conjunct.negated
            and isinstance(conjunct.operand, ColumnRef)
            and _column_matches(conjunct.operand, pk, table, alias)
            and all(isinstance(item, Literal) for item in conjunct.items)
        ):
            return [item.value for item in conjunct.items]
    return None


def render_insert_sql(
    table: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Literal]],
) -> str:
    """Re-render an INSERT's shard-local row subset as SQL text.

    Shards journal committed DML as SQL source, so a split INSERT must
    arrive at each shard as text covering only that shard's rows. Rows
    are required to be all-:class:`Literal` by the caller;
    ``Literal.__str__`` renders SQL-escaped values.
    """
    column_list = f" ({', '.join(columns)})" if columns else ""
    values = ", ".join(
        "(" + ", ".join(str(value) for value in row) + ")" for row in rows
    )
    return f"INSERT INTO {table}{column_list} VALUES {values}"
