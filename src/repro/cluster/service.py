"""The deployable M-shard cluster, quacking like one service.

:class:`ClusterService` owns M :class:`~repro.service.DataProviderService`
shards — each with its own engine, journal, and snapshot — plus the
glue that keeps the *defense* single-node-equivalent:

- every shard's guard prices against the **global** population (a
  shared provider summing all shards, cached per mutation-epoch
  vector);
- a :class:`~repro.cluster.gossip.GossipCoordinator` keeps the
  popularity/update-rate trackers convergent, so a single-shard
  fast-path query is priced from (boundedly stale) global counts;
- a :class:`~repro.cluster.router.ClusterRouter` serves every
  statement with exactly one globally-priced delay;
- accounts live at the router, never at the shards, so per-identity
  budgets cannot be multiplied by spraying shards.

The whole composition exposes the :class:`DataProviderService` surface
(``guard``/``query``/``register``/``report``/``checkpoint``/
``durability_health``), so :class:`~repro.server.DelayServer` and the
CLI serve a cluster unchanged; ``cluster_health()`` additionally feeds
the server's ``health`` op a shard-level view (per-shard lag, gossip
round-trips, count divergence).
"""

from __future__ import annotations

import dataclasses
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.accounts import Account, AccountManager, AccountPolicy
from ..core.clock import Clock, VirtualClock
from ..core.config import GuardConfig
from ..core.errors import ConfigError
from ..core.guard import GuardedResult
from ..engine.database import Database
from ..engine.journal import WriteAheadJournal
from ..obs import Observability
from ..obs.health import replication_summary
from ..service import DataProviderService, ServiceReport
from .gossip import GossipCoordinator
from .replication import GroupMonitor, ReplicaGroup, ReplicaMember
from .router import ClusterRouter
from .sharding import ShardMap


class ClusterGuard:
    """The router dressed in :class:`~repro.core.guard.DelayGuard`'s API.

    :class:`~repro.server.DelayServer` and the CLI talk to
    ``service.guard``; this adapter forwards queries to the router and
    aggregates the read-only surfaces (stats, forensics, staleness,
    extraction cost) cluster-wide. ``result_cache`` is None: the
    server's I/O-loop fast path is a single-guard optimisation and
    simply stays off for clusters.
    """

    result_cache = None

    def __init__(self, cluster: "ClusterService"):
        self._cluster = cluster
        self.config = cluster.config

    # -- the server's query surface -----------------------------------------

    def execute(
        self,
        sql_or_statement,
        identity: Optional[str] = None,
        record: bool = True,
        sleep: bool = True,
        deadline_at: Optional[float] = None,
        partial_results: bool = False,
    ) -> GuardedResult:
        return self._cluster.router.execute(
            sql_or_statement,
            identity=identity,
            record=record,
            sleep=sleep,
            deadline_at=deadline_at,
            partial_results=partial_results,
        )

    @property
    def stats(self):
        return self._cluster.router.stats

    @property
    def forensics(self):
        return self._cluster.router.forensics

    @property
    def popularity(self):
        """A live shard's gossip-merged popularity view."""
        return self._cluster.router._reference_shard().guard.popularity

    # -- aggregated read-only surfaces --------------------------------------

    def population(self) -> int:
        return self._cluster.population()

    def extraction_cost(self, table: Optional[str] = None) -> float:
        """Global extraction cost: the sum over every shard's tuples.

        Each shard prices its own partition against the merged trackers
        and the global N, so the sum equals the single-node figure up
        to gossip staleness. Down replica groups are skipped — their
        partitions are unreadable, so the figure is a lower bound while
        degraded (the health view flags the missing groups).
        """
        return sum(
            guard.extraction_cost(table)
            for guard in self._cluster.live_guards()
        )

    def max_extraction_cost(self, table: Optional[str] = None) -> float:
        if self.config.cap is None:
            raise ConfigError("max_extraction_cost requires a delay cap")
        if table is not None:
            total = 0
            for shard in self._cluster.live_shards():
                with shard.database.read_view():
                    total += len(shard.database.catalog.table(table))
            return total * self.config.cap
        return self.population() * self.config.cap

    def staleness_report(self) -> Dict[str, Dict]:
        """Per-table staleness, merged across shards.

        Extraction horizons, update rates, and populations add; the
        stale fraction is the population-weighted mean (it is an
        expected count divided by a population, and both sum).
        """
        merged: Dict[str, Dict] = {}
        for guard in self._cluster.live_guards():
            for table, entry in guard.staleness_report().items():
                slot = merged.setdefault(
                    table,
                    {
                        "population": 0,
                        "extraction_seconds": 0.0,
                        "update_rate_per_second": 0.0,
                        "updated_keys": 0,
                        "_expected_stale": 0.0,
                    },
                )
                slot["population"] += entry["population"]
                slot["extraction_seconds"] += entry["extraction_seconds"]
                slot["update_rate_per_second"] += entry[
                    "update_rate_per_second"
                ]
                slot["updated_keys"] += entry["updated_keys"]
                slot["_expected_stale"] += (
                    entry["smax_fraction"] * entry["population"]
                )
        for slot in merged.values():
            slot["smax_fraction"] = slot.pop("_expected_stale") / max(
                slot["population"], 1
            )
        return merged

    def refresh_staleness_gauges(self) -> Dict[str, Dict]:
        """The server's health op calls this; clusters just report.

        Shard guards run with observability disabled, so there are no
        per-shard gauges to pump — the merged report is the product.
        """
        return self.staleness_report()


class ClusterService:
    """M shards + gossip + router, exposing one service surface.

    Args:
        shard_count: number of shards (M).
        guard_config: the cluster-wide defense configuration. Each
            shard runs a copy with ``node_id="shard-i"`` (its stable
            gossip origin) and forensics off — extraction forensics
            watches *global* coverage and runs once, at the router.
        account_policy: §2.4 account defenses, enforced at the router
            (shards never see identities, so budgets are global).
        clock: the shared cluster clock (virtual by default). All
            shards, the accounts, and the router's single served delay
            use this one clock.
        obs: the router-level observability bundle (enabled by
            default); shard services always run with observability
            disabled so their metric registrations don't collide.
        data_dir: when set, shard ``i`` checkpoints to
            ``shard-i.snapshot.json`` and journals to
            ``shard-i.journal`` under this directory. Required for
            :meth:`checkpoint` and :meth:`recover`.
        journal_sync: fsync shard journals on every commit.
        gossip: run anti-entropy at all. Exists so the attack test can
            demonstrate the vulnerability gossip closes; leave True.
        gossip_interval: seconds between background anti-entropy
            rounds; None means manual (call
            ``service.gossip.run_round()`` — virtual-clock tests do).
        replication_factor: members per replica group (1 = no
            replication, the historical single-service shard). With a
            factor of R, each shard is a :class:`ReplicaGroup` of one
            journalling primary plus R−1 followers fed by journal
            shipping; requires ``data_dir`` (shipping tails the
            primary's journal file).
        probe_interval: seconds between group-monitor passes (liveness
            probe → promote → ship); None means manual — call
            ``service.monitor.probe()``, as the virtual-clock tests do.
            Also becomes the ``retry_after`` hint on degraded denials.
    """

    def __init__(
        self,
        shard_count: int = 2,
        guard_config: Optional[GuardConfig] = None,
        account_policy: Optional[AccountPolicy] = None,
        clock: Optional[Clock] = None,
        obs: Optional[Observability] = None,
        data_dir: Optional[Union[str, Path]] = None,
        journal_sync: bool = True,
        gossip: bool = True,
        gossip_interval: Optional[float] = None,
        replication_factor: int = 1,
        probe_interval: Optional[float] = None,
        _shards: Optional[List[DataProviderService]] = None,
    ):
        if shard_count < 1:
            raise ConfigError(
                f"shard_count must be >= 1, got {shard_count}"
            )
        if replication_factor < 1:
            raise ConfigError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        if replication_factor > 1 and data_dir is None:
            raise ConfigError(
                "replication requires data_dir= (followers are fed by "
                "shipping the primary's journal file)"
            )
        self.shard_count = shard_count
        self.replication_factor = replication_factor
        self.config = (
            guard_config if guard_config is not None else GuardConfig()
        )
        self.clock = clock if clock is not None else VirtualClock()
        self.obs = obs if obs is not None else Observability()
        self.data_dir = Path(data_dir) if data_dir is not None else None
        self.accounts: Optional[AccountManager] = (
            AccountManager(policy=account_policy, clock=self.clock)
            if account_policy is not None
            else None
        )
        if _shards is not None:
            # recover() built the primaries already (snapshot + replay).
            primaries = _shards
        else:
            primaries = [
                self._build_shard(index, journal_sync)
                for index in range(shard_count)
            ]
        self.groups: Optional[List[ReplicaGroup]] = None
        self.monitor: Optional[GroupMonitor] = None
        if replication_factor > 1:
            self.groups = [
                self._build_group(index, primary, journal_sync)
                for index, primary in enumerate(primaries)
            ]
            self.shards = self.groups
            self.monitor = GroupMonitor(
                self.groups, interval=probe_interval
            )
        else:
            self.shards = primaries
        self._pop_lock = threading.Lock()
        self._pop_cache: Optional[Tuple[tuple, int]] = None
        self._last_counts: Dict[int, int] = {}
        for guard in self.all_member_guards():
            guard.set_population_provider(self.population)
        self.shard_map = ShardMap(shard_count)
        # The anti-entropy mesh spans *every* member — followers gossip
        # too, so a promoted replica's trackers are already convergent
        # (up to one round) the moment it starts serving.
        self.gossip: Optional[GossipCoordinator] = (
            GossipCoordinator(
                self.all_member_guards(), interval=gossip_interval
            )
            if gossip
            else None
        )
        self.router = ClusterRouter(
            self.shards,
            self.shard_map,
            self.config,
            self.clock,
            population=self.population,
            accounts=self.accounts,
            obs=self.obs,
        )
        self.guard = ClusterGuard(self)
        self.checkpoints_completed = 0
        self._register_metrics()
        if self.gossip is not None and gossip_interval is not None:
            self.gossip.start()
        if self.monitor is not None and probe_interval is not None:
            self.monitor.start()

    def _shard_config(self, index: int) -> GuardConfig:
        return dataclasses.replace(
            self.config, node_id=f"shard-{index}", forensics=False
        )

    def _shard_paths(
        self, index: int
    ) -> Tuple[Optional[Path], Optional[Path]]:
        if self.data_dir is None:
            return None, None
        return (
            self.data_dir / f"shard-{index}.snapshot.json",
            self.data_dir / f"shard-{index}.journal",
        )

    def _build_shard(
        self, index: int, journal_sync: bool
    ) -> DataProviderService:
        database = Database()
        database.set_rowid_allocation(index, self.shard_count)
        snapshot_path, journal_path = self._shard_paths(index)
        return DataProviderService(
            database=database,
            guard_config=self._shard_config(index),
            clock=self.clock,
            obs=Observability.disabled(),
            snapshot_path=snapshot_path,
            journal_path=journal_path,
            journal_sync=journal_sync,
        )

    def _build_group(
        self, index: int, primary: DataProviderService, journal_sync: bool
    ) -> ReplicaGroup:
        """One shard's replica group: the journalling primary plus
        R−1 followers seeded from the primary's current state.

        Seeding copies the primary's rows (preserving rowids) and
        merges its full tracker digest, then marks the follower caught
        up to the primary's current journal seq — on a fresh cluster
        both are empty and this is a no-op; after :meth:`recover` it
        re-seeds followers from the recovered primary (their previous
        replica journals are superseded and reset). Followers run with
        a *detached* database journal — shipped frames are persisted
        verbatim into a dedicated replica journal instead, which
        promotion attaches as the live journal so local commits
        continue the replicated numbering.
        """
        members = [ReplicaMember(f"shard-{index}", service=primary)]
        snapshot_seq = (
            primary.journal.last_seq if primary.journal is not None else 0
        )
        for replica in range(1, self.replication_factor):
            database = Database()
            database.set_rowid_allocation(index, self.shard_count)
            with primary.database.read_view():
                catalog = primary.database.catalog
                for name in catalog.table_names():
                    heap = catalog.table(name)
                    database.catalog.create_table(heap.schema)
                    target = database.catalog.table(name)
                    for rowid, row in heap.scan():
                        target.restore(rowid, row)
            member_id = f"shard-{index}-r{replica}"
            follower = DataProviderService(
                database=database,
                guard_config=dataclasses.replace(
                    self._shard_config(index), node_id=member_id
                ),
                clock=self.clock,
                obs=Observability.disabled(),
            )
            follower.guard.gossip_merge(
                primary.guard.gossip_digest(None)
            )
            journal_path = self.data_dir / f"shard-{index}-r{replica}.journal"
            if journal_path.exists():
                journal_path.unlink()
            member = ReplicaMember(
                member_id,
                service=follower,
                journal=WriteAheadJournal(journal_path, sync=journal_sync),
            )
            member.applied_seq = snapshot_seq
            member.acked_seq = snapshot_seq
            members.append(member)
        return ReplicaGroup(
            index,
            members,
            audit=self.obs.audit if self.obs.enabled else None,
        )

    # -- member access --------------------------------------------------------

    @property
    def guards(self) -> List:
        """Each shard's *current* serving guard (promotion redirects)."""
        return [shard.guard for shard in self.shards]

    def live_shards(self) -> List:
        """The shards currently able to serve (groups may be down)."""
        return [
            shard
            for shard in self.shards
            if getattr(shard, "available", True)
        ]

    def live_guards(self) -> List:
        return [shard.guard for shard in self.live_shards()]

    def all_member_guards(self) -> List:
        """Every local member's guard, followers included — the gossip
        mesh and the population provider span all of them."""
        if self.groups is not None:
            return [
                guard
                for group in self.groups
                for guard in group.member_guards
            ]
        return [shard.guard for shard in self.shards]

    def _register_metrics(self) -> None:
        """Callback-backed replication gauges on the router registry."""
        if not self.obs.enabled or self.groups is None:
            return
        registry = self.obs.registry
        groups = self.groups
        registry.gauge(
            "cluster_replication_lag",
            "max committed-vs-acked lag across replica groups",
        ).set_function(
            lambda: max(
                (g.replication_health()["replication_lag"] for g in groups),
                default=0,
            )
        )
        registry.counter(
            "cluster_failovers_total",
            "promotions across all replica groups",
        ).set_function(lambda: sum(g.failovers for g in groups))
        registry.gauge(
            "cluster_groups_available",
            "replica groups currently able to serve",
        ).set_function(
            lambda: sum(1 for g in groups if g.available)
        )

    # -- the service surface the server consumes ----------------------------

    def register(self, identity: str, subnet: str = "0.0.0.0/0") -> Account:
        """Register an identity with the cluster-wide account manager."""
        if self.accounts is None:
            raise ConfigError(
                "this cluster runs without accounts; queries are anonymous"
            )
        return self.accounts.register(identity, subnet=subnet)

    def query(
        self, identity: Optional[str], sql: str, record: bool = True
    ) -> GuardedResult:
        """Serve one statement through the router."""
        return self.router.execute(sql, identity=identity, record=record)

    def report(self, top_k: int = 3) -> ServiceReport:
        """Operator report over the *cluster*: router stats only.

        Shard guards also keep stats internally, but every client query
        passes through the router exactly once — counting shard-side
        executions too would double-book scatter reads.
        """
        stats = self.router.stats
        merged = self.guard.popularity
        snapshot = merged.snapshot()[:top_k]
        total = max(merged.decayed_total, 1.0)
        top = [
            (table, rowid, count / total)
            for (table, rowid), count in snapshot
        ]
        max_cost = (
            self.guard.max_extraction_cost()
            if self.config.cap is not None
            else None
        )
        return ServiceReport(
            users=len(self.accounts.accounts) if self.accounts else 0,
            queries=stats.queries,
            denied=stats.denied,
            median_user_delay=stats.median_delay(),
            total_delay_charged=stats.total_delay,
            extraction_cost=self.guard.extraction_cost(),
            max_extraction_cost=max_cost,
            top_tuples=top,
        )

    def checkpoint(self) -> int:
        """Checkpoint every shard; returns the highest journal seq."""
        if self.data_dir is None:
            raise ConfigError(
                "no checkpoint path: construct the cluster with data_dir="
            )
        seq = 0
        for shard in self.shards:
            seq = max(seq, shard.checkpoint())
        self.checkpoints_completed += 1
        return seq

    def durability_health(self) -> Dict:
        """Aggregate durability posture plus the per-shard detail."""
        per_shard = [shard.durability_health() for shard in self.shards]
        return {
            "journal_attached": all(
                entry["journal_attached"] for entry in per_shard
            ),
            "checkpoints_completed": self.checkpoints_completed,
            "journal_lag": sum(
                entry.get("journal_lag", 0) for entry in per_shard
            ),
            "shards": per_shard,
        }

    def cluster_health(self) -> Dict:
        """The shard-level view the server's ``health`` op embeds."""
        shards = []
        for index, shard in enumerate(self.shards):
            available = getattr(shard, "available", True)
            if available:
                with shard.database.read_view():
                    rows = sum(
                        len(shard.database.catalog.table(name))
                        for name in shard.database.catalog.table_names()
                    )
                epoch = shard.database.mutation_epoch
                attached = shard.journal is not None
            else:
                rows = self._last_counts.get(index)
                epoch = None
                attached = False
            shards.append(
                {
                    "shard": index,
                    "rows": rows,
                    "available": available,
                    "mutation_epoch": epoch,
                    "journal_attached": attached,
                }
            )
        replication = None
        if self.groups is not None:
            replication = {
                "factor": self.replication_factor,
                "summary": replication_summary(self.groups),
                "groups": [
                    group.replication_health() for group in self.groups
                ],
                "monitor": (
                    {
                        "probes_total": self.monitor.probes_total,
                        "probe_failures_total": (
                            self.monitor.probe_failures_total
                        ),
                        "interval": self.monitor.interval,
                        "running": self.monitor.running,
                    }
                    if self.monitor is not None
                    else None
                ),
            }
        return {
            "shard_count": self.shard_count,
            "population": self.population(),
            "shards": shards,
            "gossip": (
                self.gossip.stats() if self.gossip is not None else None
            ),
            "routing": self.router.routing_stats(),
            "replication": replication,
        }

    def close(self) -> None:
        """Stop the background gossip/monitor loops (idempotent)."""
        if self.gossip is not None:
            self.gossip.stop()
        if self.monitor is not None:
            self.monitor.stop()

    # -- sizing --------------------------------------------------------------

    def population(self) -> int:
        """Global tuple count, cached per cluster-wide epoch vector.

        Every shard guard prices against this (see
        :meth:`~repro.core.guard.DelayGuard.set_population_provider`):
        a committed mutation on any shard moves that shard's epoch and
        invalidates the cache, so the count is always exact.

        A down replica group contributes its last-known count: the
        partition's tuples still exist (they are merely unservable), so
        letting N collapse would misprice every other shard's delays
        while the group fails over.
        """
        epochs = []
        for index, shard in enumerate(self.shards):
            if getattr(shard, "available", True):
                epochs.append(shard.database.mutation_epoch)
            else:
                epochs.append(("down", self._last_counts.get(index, 0)))
        epochs = tuple(epochs)
        with self._pop_lock:
            cached = self._pop_cache
            if cached is not None and cached[0] == epochs:
                return cached[1]
        total = 0
        for index, shard in enumerate(self.shards):
            if not getattr(shard, "available", True):
                total += self._last_counts.get(index, 0)
                continue
            count = 0
            with shard.database.read_view():
                for name in shard.database.catalog.table_names():
                    count += len(shard.database.catalog.table(name))
            self._last_counts[index] = count
            total += count
        value = max(total, 1)
        with self._pop_lock:
            self._pop_cache = (epochs, value)
        return value

    # -- crash recovery ------------------------------------------------------

    @classmethod
    def recover(
        cls,
        shard_count: int,
        data_dir: Union[str, Path],
        guard_config: Optional[GuardConfig] = None,
        account_policy: Optional[AccountPolicy] = None,
        clock: Optional[Clock] = None,
        obs: Optional[Observability] = None,
        journal_sync: bool = True,
        gossip: bool = True,
        gossip_interval: Optional[float] = None,
        replication_factor: int = 1,
        probe_interval: Optional[float] = None,
    ) -> "ClusterService":
        """Rebuild a cluster from each shard's snapshot + journal.

        Each shard recovers independently — its own snapshot, its own
        journal replay, with strided rowid allocation configured
        *before* replay so re-applied INSERTs land on exactly the
        rowids they held before the crash. Restored tracker state
        includes each shard's mirrored view of its peers, and the next
        anti-entropy round re-converges anything the crash lost.

        With ``replication_factor > 1``, followers are re-seeded from
        the recovered primary's state rather than replaying their old
        replica journals (the primary's snapshot+journal is the
        authoritative timeline; stale replica journals are reset) —
        recovery restores durability first, then redundancy.
        """
        placeholder = cls.__new__(cls)
        placeholder.config = (
            guard_config if guard_config is not None else GuardConfig()
        )
        placeholder.data_dir = Path(data_dir)
        shared_clock = clock if clock is not None else VirtualClock()
        placeholder.clock = shared_clock
        shards: List[DataProviderService] = []
        for index in range(shard_count):
            snapshot_path, journal_path = placeholder._shard_paths(index)

            def stride(db: Database, index: int = index) -> None:
                db.set_rowid_allocation(index, shard_count)

            shards.append(
                DataProviderService.recover(
                    snapshot_path=snapshot_path,
                    journal_path=journal_path,
                    guard_config=placeholder._shard_config(index),
                    clock=shared_clock,
                    obs=Observability.disabled(),
                    journal_sync=journal_sync,
                    database_setup=stride,
                )
            )
        return cls(
            shard_count=shard_count,
            guard_config=guard_config,
            account_policy=account_policy,
            clock=shared_clock,
            obs=obs,
            data_dir=data_dir,
            journal_sync=journal_sync,
            gossip=gossip,
            gossip_interval=gossip_interval,
            replication_factor=replication_factor,
            probe_interval=probe_interval,
            _shards=shards,
        )
