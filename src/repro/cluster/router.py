"""Scatter-gather statement routing with one globally-priced delay.

The router is the cluster's single front door. Every statement enters
here, and the defense's invariant is enforced here: **one delay per
query, priced from the global merged view, served once** — never
per-shard sleeps (summing M per-shard prices computed against M
under-counted views is exactly the vulnerability sharding introduces).

Routing by statement kind:

- **DDL** (CREATE/DROP/EXPLAIN targets) broadcasts to every shard —
  all shards hold the full schema, so any shard can answer any
  statement about its own partition.
- **INSERT** splits its VALUES rows by partition-key hash and
  re-renders each shard's subset as SQL text (shards journal DML as
  source text).
- **UPDATE/DELETE** routes to the owning shard when the WHERE clause
  proves a partition key, otherwise broadcasts — partitions are
  disjoint, so the broadcast touches each affected row exactly once.
- **SELECT** takes the single-shard fast path when a partition-key
  equality proves one owner (the owner prices from its gossip-merged
  tracker view against the *global* population, so the price equals
  the single-node price up to gossip staleness). Anything else —
  scans, joins, aggregates — executes against a merged read-only
  engine built from every shard's rows under their read locks (cached
  per cluster-wide mutation-epoch vector), is priced **once** at the
  coordinator from the merged touched-set, and is recorded at each
  tuple's owning shard so the owners stay the authoritative count
  holders.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.accounts import AccountManager
from ..core.clock import Clock
from ..core.config import GuardConfig
from ..core.detection import CoverageMonitor
from ..core.errors import AccessDenied, ConfigError, ShardUnavailable
from ..core.guard import GuardedResult, GuardStats
from ..engine.database import Database
from ..engine.errors import EngineError
from ..engine.executor import ResultSet
from ..engine.expr import Literal
from ..engine.parser.ast import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    TransactionStatement,
    UpdateStatement,
)
from ..engine.parser.normalize import normalize_sql
from ..engine.parser.parser import parse_cached
from ..obs import ForensicsMonitor, Observability
from .sharding import ShardMap, pk_values_from_where, render_insert_sql

Key = Tuple[str, int]


class ClusterRouter:
    """Routes statements across shards; prices one global delay.

    Args:
        shards: the shard services, in shard-index order (shard ``i``
            allocates rowids ≡ ``i + 1 (mod M)``).
        shard_map: the cluster's partitioning scheme.
        config: the cluster-wide guard configuration — pricing mode,
            cap, forensics thresholds. Shard guards run with forensics
            off; the router runs the cluster-wide monitor over the
            global population so spray-across-shards coverage is
            visible in one place.
        clock: the shared cluster clock (delays are served here).
        accounts: the shared account manager (per-identity budgets are
            global, not per-shard).
        obs: the router's observability bundle; audit events carry the
            shard ids each query touched.
        population: zero-argument callable returning the global tuple
            count.
    """

    def __init__(
        self,
        shards: Sequence,
        shard_map: ShardMap,
        config: GuardConfig,
        clock: Clock,
        population,
        accounts: Optional[AccountManager] = None,
        obs: Optional[Observability] = None,
    ):
        self.shards = list(shards)
        self.shard_map = shard_map
        self.config = config
        self.clock = clock
        self.accounts = accounts
        self.obs = obs if obs is not None else Observability.disabled()
        self.population = population
        self.stats = GuardStats()
        #: cluster-wide extraction forensics over the global population.
        self.forensics: Optional[ForensicsMonitor] = None
        if config.forensics:
            self.forensics = ForensicsMonitor(
                CoverageMonitor(
                    population=population,
                    coverage_threshold=config.forensics_coverage_threshold,
                    novelty_threshold=config.forensics_novelty_threshold,
                    window=config.forensics_window,
                    min_requests=config.forensics_min_requests,
                    max_identities=config.forensics_max_identities,
                    max_keys_per_identity=(
                        config.forensics_max_keys_per_identity
                    ),
                ),
                audit=self.obs.audit if self.obs.enabled else None,
            )
        self._merged_lock = threading.Lock()
        self._merged_cache: Optional[Tuple[tuple, Database]] = None
        #: routing counters for cluster health.
        self.single_shard_queries = 0
        self.scatter_queries = 0
        self.broadcast_statements = 0
        #: degraded-mode counters (replica groups down, shard errors).
        self.shard_failures = 0
        self.unavailable_denials = 0
        self.partial_scatter_queries = 0

    # -- shard availability --------------------------------------------------

    @property
    def guards(self) -> List:
        """Every shard's current guard (replica groups resolve to
        their current primary — raising when the group is down)."""
        return [shard.guard for shard in self.shards]

    def _is_available(self, index: int) -> bool:
        return getattr(self.shards[index], "available", True)

    def _available_indexes(self) -> List[int]:
        return [
            index
            for index in range(len(self.shards))
            if self._is_available(index)
        ]

    def _deny_unavailable(self, indexes: Sequence[int]) -> ShardUnavailable:
        """Build (and account) the structured degraded-mode denial."""
        retry_after = max(
            (
                getattr(self.shards[index], "retry_after", 0.0)
                for index in indexes
            ),
            default=0.0,
        )
        self.unavailable_denials += 1
        self.stats.note_denied()
        self._emit_audit(
            "cluster_shard_unavailable", shards=sorted(indexes)
        )
        return ShardUnavailable(indexes, retry_after=retry_after)

    def _require_shards(self, indexes: Sequence[int]) -> None:
        down = [i for i in indexes if not self._is_available(i)]
        if down:
            raise self._deny_unavailable(down)

    def _shard_guard(self, index: int):
        self._require_shards([index])
        return self.shards[index].guard

    def _reference_shard(self):
        """Any live shard (schema is replicated everywhere): used for
        catalog lookups and coordinator-side pricing."""
        for index in range(len(self.shards)):
            if self._is_available(index):
                return self.shards[index]
        raise self._deny_unavailable(list(range(len(self.shards))))

    # -- the front door ------------------------------------------------------

    def execute(
        self,
        sql_or_statement: Union[str, object],
        identity: Optional[str] = None,
        record: bool = True,
        sleep: bool = True,
        deadline_at: Optional[float] = None,
        partial_results: bool = False,
    ) -> GuardedResult:
        """Route one statement; charge and serve its single delay.

        ``partial_results`` opts a scatter SELECT into degraded-mode
        serving: with one or more replica groups down it answers from
        the live shards and attaches per-shard coverage metadata to
        the result instead of failing closed — never silently partial.
        """
        started = time.perf_counter()
        if isinstance(sql_or_statement, str):
            statement = parse_cached(normalize_sql(sql_or_statement))
            source = sql_or_statement
        else:
            statement = sql_or_statement
            source = None
        if isinstance(statement, TransactionStatement):
            raise ConfigError(
                "explicit transactions are not supported through the "
                "cluster router (statements are atomic per shard)"
            )
        if self.accounts is not None:
            if identity is None:
                raise ConfigError(
                    "this cluster requires an identity for every query"
                )
            try:
                self.accounts.authorize_query(identity)
            except Exception:
                self.stats.note_denied()
                raise
        if isinstance(statement, SelectStatement):
            return self._execute_select(
                statement, source, identity, record, sleep, deadline_at,
                started, partial_results,
            )
        if isinstance(statement, InsertStatement):
            result = self._execute_insert(statement, source)
        elif isinstance(statement, (UpdateStatement, DeleteStatement)):
            result = self._execute_dml(statement, source)
        else:
            result = self._broadcast(statement, source)
        self.stats.note_query(0.0, time.perf_counter() - started, 0.0)
        return GuardedResult(result=result, delay=0.0, identity=identity)

    # -- writes and DDL ------------------------------------------------------

    def _shard_execute(
        self, index: int, statement, source, completed: Optional[List[int]] = None
    ) -> ResultSet:
        """Run one statement on one shard's guard (no sleep, no price).

        Failure taxonomy: semantic errors (the engine parsing or
        rejecting the statement, a guard denial) propagate unchanged —
        the shard answered, deterministically. An *infrastructure*
        failure (the shard process/group blowing up mid-statement) is
        mapped into the structured ``shard_unavailable`` denial, with
        the partial outcome — which shards had already applied the
        statement — recorded in routing stats and the audit log rather
        than silently discarded.
        """
        guard = self._shard_guard(index)
        try:
            guarded = guard.execute(
                source if source is not None else statement,
                record=False,
                sleep=False,
            )
        except (EngineError, AccessDenied, ConfigError):
            raise
        except Exception as error:
            self.shard_failures += 1
            self.stats.note_denied()
            self._emit_audit(
                "cluster_shard_failure",
                shard=index,
                error=repr(error),
                completed_shards=list(completed or []),
            )
            raise ShardUnavailable(
                [index],
                retry_after=getattr(self.shards[index], "retry_after", 0.0),
            ) from error
        return guarded.result

    def _broadcast(self, statement, source) -> ResultSet:
        """DDL fan-out: every shard applies the same statement."""
        self.broadcast_statements += 1
        self._require_shards(range(len(self.shards)))
        result = None
        completed: List[int] = []
        for index in range(len(self.shards)):
            result = self._shard_execute(index, statement, source, completed)
            completed.append(index)
        self._emit_audit(
            "cluster_broadcast",
            shards=list(range(len(self.shards))),
            kind=type(statement).__name__,
        )
        return result if result is not None else ResultSet(
            statement_kind="ddl"
        )

    def _execute_insert(
        self, statement: InsertStatement, source
    ) -> ResultSet:
        """Split VALUES rows by partition key; re-render per shard."""
        if self.shard_map.shard_count == 1:
            return self._shard_execute(0, statement, source)
        schema = self._reference_shard().database.catalog.table(
            statement.table
        ).schema
        pk = schema.primary_key
        if pk is None:
            raise ConfigError(
                f"sharded INSERT into {statement.table!r} requires a "
                "primary key to place rows"
            )
        if statement.columns:
            names = [name.lower() for name in statement.columns]
            if pk.lower() not in names:
                raise ConfigError(
                    f"sharded INSERT into {statement.table!r} must "
                    f"list the partition key column {pk!r}"
                )
            pk_position = names.index(pk.lower())
        else:
            pk_position = schema.position(pk)
        for row in statement.rows:
            for value in row:
                if not isinstance(value, Literal):
                    raise ConfigError(
                        "sharded INSERT rows must be literal values"
                    )
        placed: List[List[Tuple[Literal, ...]]] = [
            [] for _ in range(self.shard_map.shard_count)
        ]
        for row in statement.rows:
            shard = self.shard_map.shard_for(
                statement.table, row[pk_position].value
            )
            placed[shard].append(row)
        total = 0
        touched_shards = []
        self._require_shards(
            [index for index, rows in enumerate(placed) if rows]
        )
        for index, rows in enumerate(placed):
            if not rows:
                continue
            sql = render_insert_sql(
                statement.table, statement.columns, rows
            )
            result = self._shard_execute(index, None, sql, touched_shards)
            total += result.rowcount
            touched_shards.append(index)
        self._emit_audit(
            "cluster_insert",
            shards=touched_shards,
            table=statement.table,
            rows=total,
        )
        return ResultSet(
            table=statement.table, rowcount=total, statement_kind="insert"
        )

    def _execute_dml(self, statement, source) -> ResultSet:
        """UPDATE/DELETE: owner when the key is proven, else broadcast."""
        schema = self._reference_shard().database.catalog.table(
            statement.table
        ).schema
        values = pk_values_from_where(
            statement.where, schema.primary_key, statement.table
        )
        if values is not None:
            owners = {
                self.shard_map.shard_for(statement.table, value)
                for value in values
            }
            if len(owners) == 1:
                owner = owners.pop()
                result = self._shard_execute(owner, statement, source)
                self._emit_audit(
                    "cluster_dml",
                    shards=[owner],
                    table=statement.table,
                    rowcount=result.rowcount,
                )
                return result
        self.broadcast_statements += 1
        self._require_shards(range(len(self.shards)))
        total = 0
        rowids: List[int] = []
        completed: List[int] = []
        for index in range(len(self.shards)):
            result = self._shard_execute(index, statement, source, completed)
            completed.append(index)
            total += result.rowcount
            rowids.extend(result.rowids)
        self._emit_audit(
            "cluster_dml",
            shards=list(range(len(self.shards))),
            table=statement.table,
            rowcount=total,
        )
        return ResultSet(
            table=statement.table,
            rowcount=total,
            rowids=rowids,
            statement_kind=result.statement_kind,
        )

    # -- reads ---------------------------------------------------------------

    def _execute_select(
        self,
        statement: SelectStatement,
        source,
        identity: Optional[str],
        record: bool,
        sleep: bool,
        deadline_at: Optional[float],
        started: float,
        partial_results: bool = False,
    ) -> GuardedResult:
        single = self._single_shard_for(statement)
        engine_seconds = 0.0
        coverage = None
        if single is not None:
            guard = self._shard_guard(single)
            try:
                guarded = guard.execute(
                    source if source is not None else statement,
                    record=record,
                    sleep=False,
                    deadline_at=deadline_at,
                )
            except AccessDenied as denied:
                if denied.reason == "deadline_exceeded":
                    self.stats.note_deadline_abort()
                else:
                    self.stats.note_denied()
                raise
            self.single_shard_queries += 1
            keys = self._result_keys(guarded.result)
            shards = [single]
            delay = guarded.delay
            per_tuple = guarded.per_tuple_delays
            result_set = guarded.result
        else:
            self.scatter_queries += 1
            answering = self._available_indexes()
            missing = sorted(
                set(range(len(self.shards))) - set(answering)
            )
            if missing and not partial_results:
                # Fail closed: a silently partial scan would both hide
                # rows and under-price the touched-set.
                raise self._deny_unavailable(missing)
            if missing:
                self.partial_scatter_queries += 1
                coverage = {
                    "partial": True,
                    "shards_total": len(self.shards),
                    "shards_answered": answering,
                    "shards_missing": missing,
                }
            merged = self._merged_database(tuple(answering))
            engine_started = time.perf_counter()
            result_set = merged.execute(statement, tracked=True)
            engine_seconds = time.perf_counter() - engine_started
            keys = self._result_keys(result_set)
            # One global price from the merged touched-set, computed at
            # the coordinator's gossip-merged trackers (the first live
            # shard; every shard converges on the same global view).
            per_tuple = self._reference_shard().guard.policy.delays_for(
                keys
            )
            if self.config.charge_returned_tuples:
                delay = sum(per_tuple)
            else:
                delay = max(per_tuple, default=0.0)
            if deadline_at is not None and delay > 0:
                if delay > deadline_at - time.monotonic():
                    self.stats.note_deadline_abort()
                    raise AccessDenied(
                        "deadline_exceeded", retry_after=delay
                    )
            shards = self._record_at_owners(keys, record)
        if self.accounts is not None and identity is not None:
            self.accounts.record_retrieval(identity, len(keys))
        self.stats.note_query(delay, engine_seconds, 0.0)
        self.stats.note_select(delay, len(keys))
        if self.forensics is not None and identity is not None:
            self.forensics.observe(identity, keys, delay=delay)
        self._emit_audit(
            "cluster_select",
            shards=shards,
            identity=identity,
            delay=delay,
            tuples=len(keys),
        )
        if sleep and delay > 0:
            self.clock.sleep(delay)
        return GuardedResult(
            result=result_set,
            delay=delay,
            per_tuple_delays=list(per_tuple),
            identity=identity,
            coverage=coverage,
        )

    def _single_shard_for(
        self, statement: SelectStatement
    ) -> Optional[int]:
        """The one shard that can answer this SELECT alone, if proven."""
        if statement.joins:
            return None
        catalog = self._reference_shard().database.catalog
        if not catalog.has_table(statement.table):
            return None
        schema = catalog.table(statement.table).schema
        values = pk_values_from_where(
            statement.where,
            schema.primary_key,
            statement.table,
            statement.table_alias,
        )
        if not values:
            return None
        owners = {
            self.shard_map.shard_for(statement.table, value)
            for value in values
        }
        if len(owners) == 1:
            return owners.pop()
        return None

    def _result_keys(self, result: ResultSet) -> List[Key]:
        """The charged tuple keys for a SELECT result."""
        if result.touched:
            return list(result.touched)
        if result.table is None:
            return []
        table = result.table.lower()
        return [(table, rowid) for rowid in result.rowids]

    def _record_at_owners(
        self, keys: List[Key], record: bool
    ) -> List[int]:
        """Record scatter-read accesses into each owner's tracker.

        Owners stay the authoritative holders of their partition's
        counts — gossip then carries these increments to every peer.
        Returns the touched shard indexes (for the audit event).
        """
        by_owner: Dict[int, List[Key]] = {}
        for key in keys:
            owner = self.shard_map.owner_of_rowid(key[1])
            by_owner.setdefault(owner, []).append(key)
        if record and self.config.record_accesses:
            for owner, owned in by_owner.items():
                if not self._is_available(owner):
                    # Partial-mode reads never return a down owner's
                    # rows; this is pure defence-in-depth. Recording at
                    # a live peer keeps the mass in the global view —
                    # gossip carries it onward, never understating.
                    self._reference_shard().guard.popularity.record_many(
                        owned
                    )
                    continue
                self.shards[owner].guard.popularity.record_many(owned)
        return sorted(by_owner)

    # -- the merged read view ------------------------------------------------

    def _merged_database(
        self, indexes: Optional[Tuple[int, ...]] = None
    ) -> Database:
        """A read-only engine holding every shard's rows, global rowids.

        Cached on (participating shards, their mutation-epoch vector):
        any committed mutation on any included shard invalidates it
        (the epoch moves), so a served scatter-read is always against a
        consistent cut no older than the last commit; a degraded merge
        over fewer shards never aliases the full one. Rows keep their
        global rowids via ``restore``, so the merged touched-set prices
        and records against exactly the same keys the owners track.
        """
        if indexes is None:
            indexes = tuple(range(len(self.shards)))
        participants = [self.shards[index] for index in indexes]
        epochs = (
            indexes,
            tuple(
                shard.database.mutation_epoch for shard in participants
            ),
        )
        with self._merged_lock:
            cached = self._merged_cache
            if cached is not None and cached[0] == epochs:
                return cached[1]
        merged = Database()
        for shard in participants:
            with shard.database.read_view():
                catalog = shard.database.catalog
                for name in catalog.table_names():
                    heap = catalog.table(name)
                    if not merged.catalog.has_table(name):
                        merged.catalog.create_table(heap.schema)
                    target = merged.catalog.table(name)
                    for rowid, row in heap.scan():
                        target.restore(rowid, row)
        with self._merged_lock:
            self._merged_cache = (epochs, merged)
        return merged

    # -- observability -------------------------------------------------------

    def _emit_audit(self, event: str, **fields) -> None:
        audit = self.obs.audit
        if audit is not None:
            audit.emit(event, **fields)

    def routing_stats(self) -> Dict:
        """Routing counters for cluster health."""
        return {
            "single_shard_queries": self.single_shard_queries,
            "scatter_queries": self.scatter_queries,
            "broadcast_statements": self.broadcast_statements,
            "shard_failures": self.shard_failures,
            "unavailable_denials": self.unavailable_denials,
            "partial_scatter_queries": self.partial_scatter_queries,
        }
