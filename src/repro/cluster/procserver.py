"""A single-shard server subprocess for cluster benchmarks.

CPython's GIL means in-process shards cannot demonstrate CPU scaling —
every shard's engine bytecode would serialise on one interpreter lock.
The cluster throughput benchmark therefore runs each shard as its own
process::

    python -m repro.cluster.procserver --shard 2 --shards 4 --rows 1600

The process builds shard 2 of 4: strided rowid allocation, the
benchmark schema, and only the rows whose partition key hashes to this
shard (the same :func:`~repro.cluster.sharding.hash_partition` the
router uses, so client-side routing agrees with server-side placement).
It prints ``PORT <n>`` on stdout once it is serving, then runs until
its stdin closes (the parent exiting tears the whole fleet down, even
if it crashed before cleanup).
"""

from __future__ import annotations

import argparse
import sys

from ..core.clock import RealClock
from ..core.config import GuardConfig
from ..engine.database import Database
from ..server import DelayServer
from ..service import DataProviderService
from .sharding import hash_partition

TABLE = "items"
CATEGORIES = 8


def build_service(
    shard: int, shards: int, rows: int, policy: str, unit: float
) -> DataProviderService:
    """Shard ``shard``'s service: its partition of a ``rows``-row table."""
    database = Database()
    database.set_rowid_allocation(shard, shards)
    database.execute(
        f"CREATE TABLE {TABLE} ("
        "id INTEGER PRIMARY KEY, category INTEGER, v TEXT)"
    )
    owned = [
        (i, i % CATEGORIES, f"value-{i}")
        for i in range(1, rows + 1)
        if hash_partition(TABLE, i, shards) == shard
    ]
    if owned:
        database.insert_rows(TABLE, owned)
    return DataProviderService(
        database=database,
        guard_config=GuardConfig(policy=policy, unit=unit),
        clock=RealClock(),
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shard", type=int, required=True)
    parser.add_argument("--shards", type=int, required=True)
    parser.add_argument("--rows", type=int, default=1600)
    parser.add_argument("--policy", default="none")
    parser.add_argument("--unit", type=float, default=1.0)
    parser.add_argument("--host", default="127.0.0.1")
    args = parser.parse_args(argv)
    if not 0 <= args.shard < args.shards:
        parser.error(f"--shard must be in [0, {args.shards})")
    service = build_service(
        args.shard, args.shards, args.rows, args.policy, args.unit
    )
    server = DelayServer(service, host=args.host, port=0)
    server.start()
    print(f"PORT {server.address[1]}", flush=True)
    try:
        # Serve until the parent closes our stdin (or we are killed).
        sys.stdin.read()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
