"""A single-shard server subprocess for cluster benchmarks.

CPython's GIL means in-process shards cannot demonstrate CPU scaling —
every shard's engine bytecode would serialise on one interpreter lock.
The cluster throughput benchmark therefore runs each shard as its own
process::

    python -m repro.cluster.procserver --shard 2 --shards 4 --rows 1600

The process builds shard 2 of 4: strided rowid allocation, the
benchmark schema, and only the rows whose partition key hashes to this
shard (the same :func:`~repro.cluster.sharding.hash_partition` the
router uses, so client-side routing agrees with server-side placement).
It prints ``PORT <n>`` on stdout once it is serving, then runs until
its stdin closes (the parent exiting tears the whole fleet down, even
if it crashed before cleanup).

:class:`ProcessFleet` is the parent-side harness: it spawns one
procserver per shard and — critically — tears the fleet down
*deterministically* when any child fails to come up. A naive spawn
loop that raises on the first bad child leaves its already-started
siblings parented to a dead stdin pipe (alive until someone notices),
and discards the crashed child's stderr — the one artifact that says
why. The fleet reaps every spawned child on failure and surfaces the
crashed shard's stderr in the raised error.
"""

from __future__ import annotations

import argparse
import queue
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence

from ..core.clock import RealClock
from ..core.config import GuardConfig
from ..engine.database import Database
from ..server import DelayServer
from ..service import DataProviderService
from .sharding import hash_partition

TABLE = "items"
CATEGORIES = 8


def build_service(
    shard: int, shards: int, rows: int, policy: str, unit: float
) -> DataProviderService:
    """Shard ``shard``'s service: its partition of a ``rows``-row table."""
    database = Database()
    database.set_rowid_allocation(shard, shards)
    database.execute(
        f"CREATE TABLE {TABLE} ("
        "id INTEGER PRIMARY KEY, category INTEGER, v TEXT)"
    )
    owned = [
        (i, i % CATEGORIES, f"value-{i}")
        for i in range(1, rows + 1)
        if hash_partition(TABLE, i, shards) == shard
    ]
    if owned:
        database.insert_rows(TABLE, owned)
    return DataProviderService(
        database=database,
        guard_config=GuardConfig(policy=policy, unit=unit),
        clock=RealClock(),
    )


class ProcessFleet:
    """Spawn and deterministically reap a set of procserver children.

    Args:
        shard_count: the cluster's M (placement modulus).
        shards: which shard indexes to actually run (all by default —
            the latency probe runs a single shard of M).
        rows: total logical rows each child partitions.
        env: environment for the children (the caller sets
            ``PYTHONPATH``); current environment by default.
        startup_timeout: seconds to wait for each child's ``PORT``
            line before declaring it hung.
        extra_args: extra procserver argv (tests inject
            ``--selftest-crash``).

    Use as a context manager; :attr:`ports` maps shard index → TCP
    port once :meth:`start` returns. If any child exits or hangs
    before printing its port, every already-spawned sibling is
    stopped, *all* children are reaped, and the raised error carries
    the failed shard's stderr.
    """

    def __init__(
        self,
        shard_count: int,
        shards: Optional[Sequence[int]] = None,
        rows: int = 1600,
        policy: str = "none",
        unit: float = 1.0,
        env: Optional[Dict[str, str]] = None,
        startup_timeout: float = 30.0,
        extra_args: Sequence[str] = (),
    ):
        self.shard_count = shard_count
        self.shards = (
            list(shards) if shards is not None else list(range(shard_count))
        )
        self.rows = rows
        self.policy = policy
        self.unit = unit
        self.env = env
        self.startup_timeout = startup_timeout
        self.extra_args = list(extra_args)
        self.ports: Dict[int, int] = {}
        self._children: List[subprocess.Popen] = []

    def start(self) -> "ProcessFleet":
        try:
            for shard in self.shards:
                child = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro.cluster.procserver",
                        "--shard",
                        str(shard),
                        "--shards",
                        str(self.shard_count),
                        "--rows",
                        str(self.rows),
                        "--policy",
                        self.policy,
                        "--unit",
                        str(self.unit),
                        *self.extra_args,
                    ],
                    env=self.env,
                    stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )
                self._children.append(child)
                self.ports[shard] = self._await_port(shard, child)
        except Exception:
            self.stop()
            raise
        return self

    def _await_port(self, shard: int, child: subprocess.Popen) -> int:
        """Read the child's ``PORT`` line without blocking forever.

        readline() on a hung child would wedge the whole harness, so a
        reaper thread does the read and the deadline lives here.
        """
        lines: "queue.Queue[str]" = queue.Queue()
        reader = threading.Thread(
            target=lambda: lines.put(child.stdout.readline()),
            daemon=True,
        )
        reader.start()
        try:
            line = lines.get(timeout=self.startup_timeout).strip()
        except queue.Empty:
            raise RuntimeError(
                f"shard {shard} printed no PORT line within "
                f"{self.startup_timeout:.0f}s{self._stderr_suffix(child)}"
            )
        if not line.startswith("PORT "):
            raise RuntimeError(
                f"shard {shard} failed to start "
                f"(got {line!r}){self._stderr_suffix(child)}"
            )
        return int(line.split()[1])

    def _stderr_suffix(self, child: subprocess.Popen) -> str:
        """The crashed child's stderr, reaped, for the error message."""
        try:
            child.kill()
        except OSError:
            pass
        try:
            _out, err = child.communicate(timeout=5)
        except (subprocess.TimeoutExpired, ValueError, OSError):
            return ""
        err = (err or "").strip()
        return f"; stderr:\n{err}" if err else ""

    def stop(self) -> None:
        """Reap every spawned child: EOF their stdin, wait under one
        shared deadline, kill stragglers. Idempotent; never raises."""
        for child in self._children:
            if child.stdin is not None:
                try:
                    child.stdin.close()  # procserver exits on stdin EOF
                except OSError:
                    pass
        deadline = time.monotonic() + 10.0
        for child in self._children:
            try:
                child.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                child.kill()
            except OSError:
                pass
        for child in self._children:
            try:
                # communicate() reaps and closes the pipes, so a killed
                # child cannot linger as a zombie or leak fds.
                child.communicate(timeout=5)
            except (subprocess.TimeoutExpired, ValueError, OSError):
                pass
        self._children = []
        self.ports = {}

    def __enter__(self) -> "ProcessFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shard", type=int, required=True)
    parser.add_argument("--shards", type=int, required=True)
    parser.add_argument("--rows", type=int, default=1600)
    parser.add_argument("--policy", default="none")
    parser.add_argument("--unit", type=float, default=1.0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        # Crash before serving — exists so the fleet-teardown tests can
        # exercise the sibling-reaping path against a real child.
        "--selftest-crash",
        action="store_true",
        help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)
    if args.selftest_crash:
        print(
            f"shard {args.shard}: selftest crash before serving",
            file=sys.stderr,
            flush=True,
        )
        return 3
    if not 0 <= args.shard < args.shards:
        parser.error(f"--shard must be in [0, {args.shards})")
    service = build_service(
        args.shard, args.shards, args.rows, args.policy, args.unit
    )
    server = DelayServer(service, host=args.host, port=0)
    server.start()
    print(f"PORT {server.address[1]}", flush=True)
    try:
        # Serve until the parent closes our stdin (or we are killed).
        sys.stdin.read()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
