"""Replica groups: journal-shipped followers with priced-safe failover.

Each shard becomes a *replica group* — one primary plus N followers.
The primary's write-ahead journal is the commit record, so replication
is journal shipping: a :class:`~repro.engine.journal.JournalFollower`
tails the primary's journal file and the group forwards every newly
committed frame to each follower over a length-prefixed, crc-framed
stream (the same framing the journal itself uses). Followers replay
each entry through :func:`repro.engine.durability.replay_entry`,
re-feed tracked mutations into their guard's update trackers, persist
the frame *verbatim* into their own replica journal (preserving the
primary's ``seq``, so the follower journal is byte-identical to the
replicated prefix), and acknowledge a replicated high-water mark.

**Why promotion is price-safe.** Every shipment piggybacks a tracker
digest (the same versioned delta-state CRDT gossip exchanges), and the
follower's ack carries its version vector back, so a follower's
popularity view equals the primary's *as of its last acknowledged
shipment* — the committed prefix of the defense state, exactly
parallel to the committed prefix of the data. The CRDT merge is
stale-HIGH: mirrored mass is pinned at adoption while live origins
decay, and raw request totals are monotone max-merged, so a promoted
follower can only *overstate* the recorded mass, never understate the
totals that scale every delay (``tests/cluster/
test_promotion_properties.py`` asserts both directions; see also
``tests/core/test_merge_properties.py``).

**Fencing.** Promotion bumps the group ``term``. A deposed primary
that comes back and tries to ship under its old term gets a ``nack``
from every follower and is fenced — its unreplicated suffix is
discarded rather than spliced into the promoted timeline.

Fault points: ``replication.ship`` fires before each follower
shipment, ``replication.ack`` before each ack is processed, and
``group.primary`` inside the monitor's primary liveness probe — the
chaos suite drops frames, stalls the stream, and kills primaries
through these.
"""

from __future__ import annotations

import json
import struct
import threading
import time
import zlib
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.errors import DelayDefenseError, ShardUnavailable
from ..engine.durability import replay_entry
from ..engine.journal import JournalFollower, WriteAheadJournal
from ..testing.faults import fire

PRIMARY = "primary"
FOLLOWER = "follower"
FENCED = "fenced"

#: Wire frame header: payload byte length, then crc32 of the payload —
#: deliberately the same shape as a journal frame.
_WIRE_HEADER = struct.Struct(">II")

#: Upper bound on a single wire message (a ship batch of WAL frames
#: plus a tracker digest; far above any real batch).
MAX_MESSAGE_BYTES = 128 * 1024 * 1024


class ReplicationError(DelayDefenseError):
    """Raised for malformed replication traffic or misuse."""


class StaleTermError(ReplicationError):
    """A deposed primary tried to ship under an out-of-date term."""

    def __init__(self, member_id: str, term: int, current: int):
        super().__init__(
            f"{member_id} shipped under fenced term {term} "
            f"(group is at term {current})"
        )
        self.term = term
        self.current = current


# -- the length-prefixed stream ----------------------------------------------


def encode_message(message: Dict) -> bytes:
    """Frame one JSON message for the replication stream."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _WIRE_HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


class WireDecoder:
    """Incremental decoder for the replication stream.

    Feed it byte chunks as they arrive (TCP reads split frames
    arbitrarily); it buffers partial frames and yields each complete
    message exactly once. Corruption is an error, not a truncation —
    unlike a journal tail, a live stream has no honest torn state.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict]:
        """Absorb ``data``; return every newly completed message."""
        self._buffer.extend(data)
        messages: List[Dict] = []
        while len(self._buffer) >= _WIRE_HEADER.size:
            length, checksum = _WIRE_HEADER.unpack_from(self._buffer, 0)
            if length > MAX_MESSAGE_BYTES:
                raise ReplicationError(
                    f"replication frame of {length} bytes exceeds the "
                    f"{MAX_MESSAGE_BYTES}-byte bound (corrupt stream?)"
                )
            end = _WIRE_HEADER.size + length
            if len(self._buffer) < end:
                break
            body = bytes(self._buffer[_WIRE_HEADER.size : end])
            del self._buffer[:end]
            if zlib.crc32(body) & 0xFFFFFFFF != checksum:
                raise ReplicationError(
                    "replication frame checksum mismatch (corrupt stream)"
                )
            messages.append(json.loads(body.decode("utf-8")))
        return messages

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# -- group members ------------------------------------------------------------


class ReplicaMember:
    """One member of a replica group.

    Two flavours share this class:

    * **servable** members wrap an in-process
      :class:`~repro.service.DataProviderService` (``service`` set) —
      the primary journals locally; followers own a replica
      :class:`~repro.engine.journal.WriteAheadJournal` the apply path
      writes shipped frames into.
    * **process-backed** members (``service=None``) stand in for a
      primary served by another OS process; only liveness (via
      ``probe``) and fencing state are tracked here — the SIGKILL
      failover harness uses one.

    Args:
        member_id: stable identity, e.g. ``"shard-2-r1"``.
        service: the in-process service, when this member is local.
        journal: a follower's replica journal (``None`` for a primary
            whose service journals on its own, and for process-backed
            members).
        role: starting role.
        probe: optional liveness callable; ``None`` means the in-
            process ``alive`` flag is authoritative.
    """

    def __init__(
        self,
        member_id: str,
        service=None,
        journal: Optional[WriteAheadJournal] = None,
        role: str = FOLLOWER,
        probe: Optional[Callable[[], bool]] = None,
    ):
        self.member_id = member_id
        self.service = service
        self.journal = journal
        self.role = role
        self.probe = probe
        self.alive = True
        #: the term under which this member last held (or holds) the
        #: primary role; ships carry it, followers fence against it.
        self.term = 0
        #: highest seq this member has applied (follower side).
        self.applied_seq = 0
        #: highest seq this member has acknowledged (primary's view).
        self.acked_seq = 0
        #: highest term this member has witnessed (fencing floor).
        self.term_seen = 0
        #: the peer's tracker versions from its last ack, so the next
        #: shipment's digest carries exactly what it is missing.
        self.peer_versions: Optional[Dict] = None
        self._decoder = WireDecoder()
        self._lock = threading.Lock()

    # -- liveness ------------------------------------------------------------

    @property
    def servable(self) -> bool:
        """True when this member can serve queries in this process."""
        return self.service is not None

    def check_alive(self) -> bool:
        """Run the liveness probe (or read the in-process flag)."""
        if self.probe is not None:
            try:
                self.alive = bool(self.probe())
            except Exception:
                self.alive = False
        return self.alive

    def kill(self) -> None:
        """Mark this member dead (test/ops hook simulating a crash)."""
        self.alive = False

    @property
    def guard(self):
        if self.service is None:
            raise ReplicationError(
                f"{self.member_id} is process-backed; no local guard"
            )
        return self.service.guard

    # -- the follower apply path ---------------------------------------------

    def feed(self, data: bytes) -> bytes:
        """Absorb replication stream bytes; return framed replies.

        The transport glue on both sides is this one call: the group
        ships by feeding a follower the encoded batch and processing
        the returned ack bytes; a socket harness pumps recv/send
        through it unchanged.
        """
        replies = b""
        for message in self._decoder.feed(data):
            replies += encode_message(self.apply_ship(message))
        return replies

    def apply_ship(self, message: Dict) -> Dict:
        """Apply one ship message; return the ack (or fencing nack)."""
        if message.get("t") != "ship":
            raise ReplicationError(
                f"unexpected replication message {message.get('t')!r}"
            )
        if self.service is None:
            raise ReplicationError(
                f"{self.member_id} is process-backed and cannot apply"
            )
        term = int(message.get("term", 0))
        with self._lock:
            if term < self.term_seen:
                return {
                    "t": "nack",
                    "reason": "stale_term",
                    "term": self.term_seen,
                    "seq": self.applied_seq,
                }
            self.term_seen = term
            for payload in message.get("entries", ()):
                seq = int(payload["seq"])
                if seq <= self.applied_seq:
                    continue  # idempotent re-delivery
                entry = replay_entry(self.service.database, payload)
                if entry.tracked and entry.table and entry.rowids:
                    self.service.guard.record_replayed_updates(
                        entry.table, entry.rowids, entry.ts
                    )
                if self.journal is not None:
                    self.journal.append_replica(payload)
                self.applied_seq = seq
            digest = message.get("digest")
            if digest:
                self.service.guard.gossip_merge(digest)
            return {
                "t": "ack",
                "term": term,
                "seq": self.applied_seq,
                "versions": self.service.guard.gossip_versions(),
            }

    def health(self, committed_seq: int) -> Dict:
        """One row of the group's replication health table."""
        return {
            "member": self.member_id,
            "role": self.role,
            "alive": self.alive,
            "servable": self.servable,
            "term": self.term,
            "applied_seq": self.applied_seq,
            "acked_seq": self.acked_seq,
            "lag": max(committed_seq - self.acked_seq, 0)
            if self.role == FOLLOWER and self.alive
            else 0,
        }

    def __repr__(self) -> str:
        return (
            f"ReplicaMember({self.member_id!r}, role={self.role}, "
            f"alive={self.alive}, applied={self.applied_seq})"
        )


# -- the group ----------------------------------------------------------------


class ReplicaGroup:
    """A shard served by a primary plus followers, with failover.

    Quacks like the shard service the router and cluster glue expect:
    ``guard``/``database``/``journal``/``checkpoint``/
    ``durability_health`` delegate to the *current* primary, so a
    promotion transparently redirects every caller. When no live
    servable member remains, the delegating properties raise
    :class:`~repro.core.errors.ShardUnavailable` with a ``retry_after``
    of one probe interval — the router turns that into the structured
    degraded-mode denial.

    Args:
        index: the shard index this group serves.
        members: the members; ``members[0]`` starts as primary.
        retry_after: the ``retry_after`` hint attached to denials
            while the group is down (set this to the monitor's probe
            interval).
        audit: optional audit log for failover/fencing events.
    """

    def __init__(
        self,
        index: int,
        members: Sequence[ReplicaMember],
        retry_after: float = 1.0,
        audit=None,
    ):
        if not members:
            raise ReplicationError("a replica group needs >= 1 member")
        self.index = index
        self.members = list(members)
        self.retry_after = retry_after
        self.audit = audit
        self.term = 1
        self.failovers = 0
        self.fencings = 0
        self.ship_failures = 0
        self.shipments_total = 0
        self.entries_shipped_total = 0
        self._lock = threading.Lock()
        self._primary = self.members[0]
        self._primary.role = PRIMARY
        self._primary.term = self.term
        self._primary.term_seen = self.term
        self._pending: List = []  # JournalRecords polled, not yet pruned
        self._tail: Optional[JournalFollower] = None
        if self._primary.servable and self._primary.service.journal is not None:
            self._tail = JournalFollower(
                self._primary.service.journal.path
            )

    # -- the service surface (delegates to the current primary) --------------

    @property
    def primary(self) -> ReplicaMember:
        return self._primary

    @property
    def followers(self) -> List[ReplicaMember]:
        return [m for m in self.members if m is not self._primary]

    @property
    def available(self) -> bool:
        """True when the current primary can serve queries here."""
        primary = self._primary
        return primary.servable and primary.alive and primary.role == PRIMARY

    def _require_available(self) -> ReplicaMember:
        primary = self._primary
        if not self.available:
            raise ShardUnavailable(
                [self.index], retry_after=self.retry_after
            )
        return primary

    @property
    def guard(self):
        return self._require_available().service.guard

    @property
    def database(self):
        return self._require_available().service.database

    @property
    def journal(self):
        if not self.available:
            return None
        return self._primary.service.journal

    def checkpoint(self, *args, **kwargs) -> int:
        # Ship first: checkpointing truncates the primary journal, and
        # frames must reach every follower before they are cut away.
        self.ship()
        return self._require_available().service.checkpoint(*args, **kwargs)

    def durability_health(self) -> Dict:
        if not self.available:
            return {"journal_attached": False, "available": False}
        return self._primary.service.durability_health()

    @property
    def member_guards(self) -> List:
        """Every local member's guard (for the gossip mesh)."""
        return [m.service.guard for m in self.members if m.servable]

    # -- shipping ------------------------------------------------------------

    @property
    def committed_seq(self) -> int:
        """The primary's committed high-water mark, best known."""
        primary = self._primary
        if primary.servable and primary.service.journal is not None:
            return primary.service.journal.last_seq
        if self._tail is not None:
            return self._tail.last_seq
        return max((m.acked_seq for m in self.members), default=0)

    def ship(self) -> int:
        """Ship newly committed frames (plus a tracker digest) to
        followers; process their acks. Returns entries delivered."""
        return self._ship_from(self._primary)

    def _ship_from(self, shipper: ReplicaMember) -> int:
        """Ship as ``shipper`` — the monitor ships as the current
        primary; the fencing tests ship as a deposed one."""
        with self._lock:
            if shipper is self._primary and self._tail is not None:
                self._pending.extend(self._tail.poll())
            if not (shipper.servable and shipper.alive):
                return 0
            delivered = 0
            # Target every member the shipper believes follows it. For
            # the real primary that is exactly `followers`; for a
            # deposed zombie it includes the promoted primary — whose
            # nack is what fences the zombie.
            for member in self.members:
                if member is shipper:
                    continue
                if not (member.servable and member.alive):
                    continue
                if member.role == FENCED:
                    continue
                entries = [
                    record.payload
                    for record in self._pending
                    if record.seq > member.acked_seq
                ]
                digest = shipper.service.guard.gossip_digest(
                    member.peer_versions
                )
                if not entries and not any(digest.values()):
                    continue
                message = {
                    "t": "ship",
                    "group": self.index,
                    "term": shipper.term,
                    "entries": entries,
                    "digest": digest,
                }
                blob = encode_message(message)
                try:
                    fire("replication.ship")
                    replies = member.feed(blob)
                    fire("replication.ack")
                except Exception:
                    self.ship_failures += 1
                    continue
                acks = WireDecoder().feed(replies)
                if not acks:
                    self.ship_failures += 1
                    continue
                ack = acks[-1]
                if ack.get("t") == "nack":
                    self._fence(shipper, int(ack.get("term", 0)))
                    raise StaleTermError(
                        shipper.member_id, shipper.term, self.term
                    )
                member.acked_seq = int(ack.get("seq", member.acked_seq))
                member.peer_versions = ack.get("versions")
                delivered += len(entries)
                self.shipments_total += 1
            self.entries_shipped_total += delivered
            self._prune_pending()
            return delivered

    def _prune_pending(self) -> None:
        live_acks = [
            m.acked_seq
            for m in self.followers
            if m.servable and m.alive and m.role != FENCED
        ]
        if not live_acks:
            return
        floor = min(live_acks)
        self._pending = [r for r in self._pending if r.seq > floor]

    def _fence(self, member: ReplicaMember, term_seen: int) -> None:
        member.role = FENCED
        self.fencings += 1
        self._emit(
            "replication_fenced",
            group=self.index,
            member=member.member_id,
            stale_term=member.term,
            current_term=max(self.term, term_seen),
        )

    # -- failover ------------------------------------------------------------

    def promote(self, reason: str = "primary_dead") -> Optional[ReplicaMember]:
        """Promote the most-caught-up live follower; fence the old
        primary's term. Returns the new primary, or None when no
        follower can serve."""
        with self._lock:
            old = self._primary
            candidates = [
                m
                for m in self.followers
                if m.servable and m.alive and m.role == FOLLOWER
            ]
            if not candidates:
                return None
            best = max(candidates, key=lambda m: m.applied_seq)
            old.alive = False
            # Fence the deposed primary immediately: if it comes back
            # it must not ship (its unreplicated suffix diverged) and
            # must not receive ships (its journal can conflict with the
            # promoted timeline) until an operator re-seeds it.
            old.role = FENCED
            self.term += 1
            best.term = self.term
            best.term_seen = self.term
            best.role = PRIMARY
            for member in self.members:
                if member.servable and member is not old:
                    # The promotion is authoritative for every local
                    # member: raising their fencing floor now means a
                    # deposed primary's stale-term ship is nacked even
                    # before the new primary's first shipment.
                    member.term_seen = max(member.term_seen, self.term)
            if (
                best.journal is not None
                and best.service.database.journal is None
            ):
                # The replica journal becomes the live one: new commits
                # continue the replicated sequence numbering.
                best.service.database.attach_journal(best.journal)
            self._primary = best
            # Future ships read the promoted journal; rewind far enough
            # to refill frames any surviving follower still lacks.
            floor = min(
                [
                    m.applied_seq
                    for m in self.members
                    if m is not best and m.servable and m.alive
                ]
                + [best.applied_seq]
            )
            if best.service.journal is not None:
                self._tail = JournalFollower(
                    best.service.journal.path, after_seq=floor
                )
            else:
                self._tail = None
            self._pending = []
            for member in self.followers:
                if member.servable:
                    member.acked_seq = min(
                        member.acked_seq, member.applied_seq
                    )
            self.failovers += 1
            self._emit(
                "replication_failover",
                group=self.index,
                reason=reason,
                old_primary=old.member_id,
                new_primary=best.member_id,
                term=self.term,
                promoted_at_seq=best.applied_seq,
            )
            return best

    # -- observability -------------------------------------------------------

    def replication_health(self) -> Dict:
        committed = self.committed_seq
        members = [m.health(committed) for m in self.members]
        lags = [
            row["lag"]
            for row in members
            if row["role"] == FOLLOWER and row["alive"]
        ]
        return {
            "group": self.index,
            "term": self.term,
            "available": self.available,
            "primary": self._primary.member_id,
            "committed_seq": committed,
            "replication_lag": max(lags, default=0),
            "failovers": self.failovers,
            "fencings": self.fencings,
            "ship_failures": self.ship_failures,
            "entries_shipped_total": self.entries_shipped_total,
            "members": members,
        }

    def _emit(self, event: str, **fields) -> None:
        if self.audit is not None:
            self.audit.emit(event, **fields)

    def __repr__(self) -> str:
        return (
            f"ReplicaGroup({self.index}, term={self.term}, "
            f"primary={self._primary.member_id!r}, "
            f"members={len(self.members)})"
        )


# -- the monitor --------------------------------------------------------------


class GroupMonitor:
    """Health-probes replica groups; ships and fails over.

    One probe pass per group: check the current primary's liveness
    (fault point ``group.primary`` fires here), promote the most
    caught-up follower when the primary is gone, and ship newly
    committed frames. Run manually (:meth:`probe` — virtual-clock
    tests do) or on a daemon thread every ``interval`` seconds, like
    the gossip coordinator.
    """

    def __init__(
        self,
        groups: Sequence[ReplicaGroup],
        interval: Optional[float] = None,
    ):
        if interval is not None and interval <= 0:
            raise ValueError(
                f"probe interval must be positive, got {interval}"
            )
        self.groups = list(groups)
        self.interval = interval
        self.probes_total = 0
        self.probe_failures_total = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        if interval is not None:
            for group in self.groups:
                group.retry_after = interval

    # -- one pass ------------------------------------------------------------

    def probe(self) -> List[Dict]:
        """Probe every group once; returns per-group reports."""
        reports = []
        for group in self.groups:
            report: Dict = {"group": group.index}
            primary = group.primary
            primary_ok = False
            try:
                fire("group.primary")
                primary_ok = primary.check_alive() and (
                    primary.role == PRIMARY
                )
            except Exception:
                primary_ok = False
            if not primary_ok:
                self.probe_failures_total += 1
                primary.alive = False
                promoted = group.promote(reason="probe_failed")
                report["promoted"] = (
                    promoted.member_id if promoted is not None else None
                )
            try:
                report["shipped"] = group.ship()
            except StaleTermError as error:
                report["fenced"] = str(error)
            except Exception as error:
                report["ship_error"] = repr(error)
            report["available"] = group.available
            reports.append(report)
        self.probes_total += 1
        return reports

    def ship_all(self) -> int:
        """Ship every group's backlog (pre-checkpoint barrier)."""
        return sum(group.ship() for group in self.groups)

    # -- background loop -----------------------------------------------------

    def start(self) -> None:
        if self.interval is None:
            raise ValueError("no interval configured; call probe()")
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-group-monitor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.probe()
            except Exception:
                # The monitor must survive any single probe blowing up
                # (an injected fault, a racing teardown): skipping one
                # pass costs staleness, dying costs failover entirely.
                self.probe_failures_total += 1

    # -- observability -------------------------------------------------------

    @property
    def failovers_total(self) -> int:
        return sum(group.failovers for group in self.groups)

    def stats(self) -> Dict:
        return {
            "probes_total": self.probes_total,
            "probe_failures_total": self.probe_failures_total,
            "failovers_total": self.failovers_total,
            "interval": self.interval,
            "running": self.running,
            "groups": [group.replication_health() for group in self.groups],
        }
