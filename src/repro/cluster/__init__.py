"""Horizontal sharding for the delay defense.

The cluster layer splits the protected dataset across M shards — each a
full :class:`~repro.service.DataProviderService` with its own engine,
journal, and snapshot — while keeping the *defense* globally coherent:

- :mod:`repro.cluster.sharding` — the hash partitioner mapping
  (table, partition key) and rowids to owning shards.
- :mod:`repro.cluster.gossip` — anti-entropy rounds exchanging
  versioned tracker deltas so every shard converges on the same
  popularity and update-rate view (the counts merge commutatively and
  idempotently, so rounds can repeat or reorder freely).
- :mod:`repro.cluster.router` — scatter-gather statement routing with
  one globally-priced delay per query (never per-shard sleeps).
- :mod:`repro.cluster.service` — :class:`ClusterService`, the
  deployable composition quacking like a single
  :class:`~repro.service.DataProviderService` so the TCP server and
  CLI work unchanged.

Why gossip matters here: the paper's §2.3 delays are priced from
*global* popularity. If each shard priced from only its local counts,
an adversary spraying queries across shards would see each tuple's
count — and the raw request total — divided by M, cutting every warm
delay by roughly the shard count. The attack test in
``tests/attacks/test_shard_spray.py`` demonstrates exactly that
failure with gossip disabled.

- :mod:`repro.cluster.replication` — replica groups: each shard as a
  journal-shipping primary plus followers, with price-safe failover
  (a promoted follower's CRDT trackers can only overstate popularity,
  never undercharge) and term-based fencing of deposed primaries.
"""

from .gossip import GossipCoordinator
from .replication import (
    GroupMonitor,
    ReplicaGroup,
    ReplicaMember,
    ReplicationError,
    StaleTermError,
)
from .router import ClusterRouter
from .service import ClusterService
from .sharding import ShardMap

__all__ = [
    "ClusterRouter",
    "ClusterService",
    "GossipCoordinator",
    "GroupMonitor",
    "ReplicaGroup",
    "ReplicaMember",
    "ReplicationError",
    "ShardMap",
    "StaleTermError",
]
