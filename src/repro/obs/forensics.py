"""Live extraction-risk scoring over an injected coverage monitor.

The paper argues in two places that the operator can win by *watching*:
§2.4 ("we will notice the increased traffic") and §2.2, whose cost
model says an extraction of N tuples at per-tuple delay d takes N·d
seconds. This module evaluates both online, per identity:

* **coverage / novelty** come from the injected monitor (the guard's
  :class:`repro.core.detection.CoverageMonitor` in practice — but this
  module is duck-typed over ``record``/``evaluate``/``summaries``/
  ``population`` so it never imports ``repro.core``).
* **extraction ETA** is the §2.2 model priced from observed behaviour:
  ``remaining population × (delay paid / tuples charged)`` — how many
  seconds of mandated delay stand between this identity and the rest
  of the database *at the price the defense is currently charging
  them*. A browser's ETA stays astronomically high (cheap per-tuple
  price, but no progress); a robot's ETA is exactly the paper's
  deterrent, counting down.
* **risk** ranks identities for the server's ``forensics`` op:
  ``coverage + novelty × min(requests / min_requests, 1)`` — coverage
  dominates (it is the ground truth of extraction progress), novelty
  breaks ties once an identity has enough history to trust it.

Flag transitions (monitor verdict appearing or clearing) emit audit
events and update bounded-cardinality per-identity gauges — only
*flagged* identities get label series, so 10k browsing identities cost
zero label cardinality.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["ForensicsMonitor"]


class ForensicsMonitor:
    """Risk-scores identities and audits threshold crossings.

    Args:
        monitor: any object with ``record(identity, keys, delay)``,
            ``evaluate(identity) -> suspect | None`` (suspect carries
            ``coverage``/``novelty_rate``/``requests``/``reasons``),
            ``summaries() -> [dict]``, and a ``population`` property.
        audit: optional :class:`repro.obs.audit.AuditLog` receiving
            ``forensic_flag`` / ``forensic_flag_cleared`` events.
        max_flagged_series: label-cardinality cap for the per-identity
            gauges (flagged identities only; overflow folds into the
            registry's ``_other`` series).
    """

    def __init__(self, monitor, audit=None, max_flagged_series: int = 64):
        self.monitor = monitor
        self.audit = audit
        self.max_flagged_series = max_flagged_series
        self._lock = threading.Lock()
        #: identity -> reasons currently flagged for
        self._flagged: Dict[str, Tuple[str, ...]] = {}
        self.flags_raised_total = 0
        self.flags_cleared_total = 0
        self._m_flags = None
        self._m_coverage = None
        self._m_novelty = None
        self._m_eta = None

    # -- recording (the guard's ForensicsStage calls this) ------------------

    def observe(
        self,
        identity: str,
        keys,
        delay: float = 0.0,
        trace_id: Optional[str] = None,
    ) -> None:
        """Feed one served query and re-evaluate the identity's flag."""
        self.monitor.record(identity, keys, delay=delay)
        suspect = self.monitor.evaluate(identity)
        with self._lock:
            previous = self._flagged.get(identity)
            if suspect is not None:
                current = tuple(suspect.reasons)
                self._flagged[identity] = current
                if previous == current:
                    return
                self.flags_raised_total += previous is None
            else:
                if previous is None:
                    return
                del self._flagged[identity]
                self.flags_cleared_total += 1
        if suspect is not None:
            self._on_flag(identity, suspect, previous=previous,
                          trace_id=trace_id)
        else:
            self._on_clear(identity, trace_id=trace_id)

    def _on_flag(self, identity, suspect, previous, trace_id):
        if self._m_flags is not None:
            seen = previous or ()
            for reason in suspect.reasons:
                if reason not in seen:
                    self._m_flags.inc(reason=reason)
        if self._m_coverage is not None:
            self._m_coverage.set(suspect.coverage, identity=identity)
            self._m_novelty.set(suspect.novelty_rate, identity=identity)
            self._m_eta.set(
                self._eta_for(identity), identity=identity
            )
        if self.audit is not None:
            self.audit.emit(
                "forensic_flag",
                trace_id=trace_id,
                identity=identity,
                reasons=list(suspect.reasons),
                coverage=suspect.coverage,
                novelty=suspect.novelty_rate,
                requests=suspect.requests,
                eta_seconds=self._eta_for(identity),
            )

    def _on_clear(self, identity, trace_id):
        if self._m_coverage is not None:
            self._m_coverage.set(0.0, identity=identity)
            self._m_novelty.set(0.0, identity=identity)
            self._m_eta.set(0.0, identity=identity)
        if self.audit is not None:
            self.audit.emit(
                "forensic_flag_cleared",
                trace_id=trace_id,
                identity=identity,
            )

    # -- reading -------------------------------------------------------------

    def _eta_for(self, identity: str) -> float:
        for entry in self.monitor.summaries():
            if entry["identity"] == identity:
                return self._eta(entry)
        return 0.0

    def _eta(self, entry: Dict) -> float:
        """§2.2 online: remaining tuples × observed per-tuple price."""
        if entry["tuples"] <= 0:
            return 0.0
        per_tuple = entry["delay_paid"] / entry["tuples"]
        remaining = max(
            self.monitor.population - entry["distinct_keys"], 0
        )
        return remaining * per_tuple

    def _risk(self, entry: Dict) -> float:
        maturity = min(
            entry["requests"] / max(self.min_requests, 1), 1.0
        )
        return entry["coverage"] + entry["novelty"] * maturity

    @property
    def min_requests(self) -> int:
        return getattr(self.monitor, "min_requests", 1)

    def flagged(self) -> Dict[str, Tuple[str, ...]]:
        """Currently flagged identities and their reasons."""
        with self._lock:
            return dict(self._flagged)

    def top(self, k: int = 10) -> List[Dict]:
        """The k highest-risk identities, risk-ranked, as plain dicts."""
        with self._lock:
            flagged = dict(self._flagged)
        entries = []
        for entry in self.monitor.summaries():
            identity = entry["identity"]
            entries.append(
                {
                    "identity": identity,
                    "coverage": entry["coverage"],
                    "novelty": entry["novelty"],
                    "requests": entry["requests"],
                    "tuples": entry["tuples"],
                    "delay_paid_seconds": entry["delay_paid"],
                    "eta_seconds": self._eta(entry),
                    "risk": self._risk(entry),
                    "flagged": identity in flagged,
                    "reasons": list(flagged.get(identity, ())),
                }
            )
        entries.sort(key=lambda item: item["risk"], reverse=True)
        return entries[:k]

    def summary(self) -> Dict:
        """Aggregate counts for the ``health`` op."""
        with self._lock:
            flagged = len(self._flagged)
        return {
            "population": self.monitor.population,
            "tracked_identities": len(self.monitor.summaries()),
            "flagged_identities": flagged,
            "flags_raised_total": self.flags_raised_total,
            "flags_cleared_total": self.flags_cleared_total,
        }

    # -- metrics -------------------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Export forensics state with bounded label cardinality."""
        registry.gauge(
            "forensics_tracked_identities",
            "Identities with individual coverage profiles",
        ).set_function(lambda: len(self.monitor.summaries()))
        registry.gauge(
            "forensics_flagged_identities",
            "Identities currently flagged as extraction suspects",
        ).set_function(lambda: len(self._flagged))
        self._m_flags = registry.counter(
            "forensics_flags_total",
            "Forensic flags raised, by tripping signal",
            ("reason",),
        )
        self._m_coverage = registry.gauge(
            "forensics_identity_coverage",
            "Population coverage of flagged identities",
            ("identity",),
            max_series=self.max_flagged_series,
        )
        self._m_novelty = registry.gauge(
            "forensics_identity_novelty",
            "Recent-window novelty rate of flagged identities",
            ("identity",),
            max_series=self.max_flagged_series,
        )
        self._m_eta = registry.gauge(
            "forensics_identity_extraction_eta_seconds",
            "§2.2 online extraction ETA of flagged identities "
            "(remaining population x observed per-tuple delay)",
            ("identity",),
            max_series=self.max_flagged_series,
        )
