"""A thread-safe metrics registry: counters, gauges, and histograms.

The paper's whole argument is quantitative — median user delay stays in
milliseconds while full-extraction cost climbs to hours — so a running
service must be able to *show* those numbers continuously, not as a
one-shot report. This module is the storage layer for that: a small,
dependency-free metrics registry in the Prometheus data model.

Three metric types:

* :class:`Counter` — a monotonically increasing total, optionally split
  by labels (e.g. denials by reason). Labelled series are bounded: past
  ``max_series`` distinct label sets, further increments fold into a
  catch-all ``_other`` series so totals stay exact while memory stays
  bounded (important for per-identity metrics under adversarial churn).
* :class:`Gauge` — a point-in-time value, either set explicitly or read
  from a callback at collection time (e.g. tracked-key population).
* :class:`Histogram` — a streaming distribution with fixed log-spaced
  buckets, per-bucket sums, and exact min/max. Memory is O(buckets)
  regardless of how many values are observed — this replaces the
  unbounded raw-delay lists the evaluation harness used to keep.

Quantile estimation uses nearest-rank over the buckets and answers with
the matched bucket's *mean* (its sum over its count). When a bucket
holds a single distinct value — the common case for delay distributions,
where many queries are charged exactly the cap — the estimate is exact;
otherwise the error is bounded by the bucket width (~26% relative with
the default ten-buckets-per-decade layout, usually far less).

Every metric takes its own lock, so updates from many server threads
never tear, and collection (`snapshot` / Prometheus text) reads a
consistent per-metric view without stopping traffic.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricError",
    "MetricsRegistry",
    "delay_buckets",
]


class MetricError(ValueError):
    """Raised for invalid metric names, labels, or values."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Label-set overflow sentinel: increments past ``max_series`` land here.
OVERFLOW_LABEL = "_other"


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise MetricError(
            f"metric name {name!r} is not a valid identifier "
            "([a-zA-Z_:][a-zA-Z0-9_:]*)"
        )
    return name


def delay_buckets(
    low: float = 1e-4, high: float = 1e5, per_decade: int = 10
) -> List[float]:
    """Log-spaced histogram bounds suited to delays in seconds.

    Spans ``low``..``high`` with ``per_decade`` buckets per decade, and
    leads with a 0.0 bound so zero-delay queries (the overwhelmingly
    common case for popular tuples) occupy their own exact bucket.
    """
    if low <= 0 or high <= low:
        raise MetricError(f"need 0 < low < high, got {low}..{high}")
    if per_decade < 1:
        raise MetricError(f"per_decade must be >= 1, got {per_decade}")
    decades = math.log10(high / low)
    steps = int(round(decades * per_decade))
    bounds = [0.0]
    for step in range(steps + 1):
        bounds.append(low * 10 ** (step / per_decade))
    return bounds


class Metric:
    """Common surface: a named, typed, self-locking metric."""

    type = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._lock = threading.Lock()

    def snapshot(self) -> Dict:
        """JSON-compatible view of the current state."""
        raise NotImplementedError

    def render(self) -> List[str]:
        """Prometheus exposition lines (without the HELP/TYPE header)."""
        raise NotImplementedError

    def header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.type}")
        return lines


def _label_text(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


class _LabelledValues(Metric):
    """Shared machinery for counters and gauges: values keyed by labels."""

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        max_series: int = 1024,
    ):
        super().__init__(name, help)
        self.label_names = tuple(label_names)
        for label in self.label_names:
            _check_name(label)
        if max_series < 1:
            raise MetricError(f"max_series must be >= 1, got {max_series}")
        self.max_series = max_series
        self._values: Dict[Tuple[str, ...], float] = {}
        self._overflow_key = tuple(
            OVERFLOW_LABEL for _ in self.label_names
        )
        self._callback: Optional[Callable[[], float]] = None

    def set_function(self, callback: Callable[[], float]) -> "_LabelledValues":
        """Read the metric from ``callback`` at every collection.

        Only unlabelled metrics can be callback-backed. This is how
        hot-path totals stay free: the instrumented code keeps its own
        cheap bookkeeping (e.g. :class:`~repro.core.guard.GuardStats`)
        and the registry reads it only when someone scrapes. A callback
        that raises is reported as absent rather than failing the
        scrape. For counters the callback must be monotonic — it
        exposes an already-monotonic total, it does not make one.
        """
        if self.label_names:
            raise MetricError(
                f"{self.type} {self.name} has labels; "
                "callbacks must be unlabelled"
            )
        self._callback = callback
        return self

    def _evaluate(self) -> Optional[float]:
        if self._callback is None:
            return None
        try:
            return float(self._callback())
        except Exception:
            return None

    def _check_writable(self) -> None:
        if self._callback is not None:
            raise MetricError(
                f"{self.type} {self.name} is callback-backed; "
                "it cannot be written directly"
            )

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if not self.label_names and not labels:
            return ()
        try:
            key = tuple(str(labels[name]) for name in self.label_names)
        except KeyError as missing:
            raise MetricError(
                f"{self.name} requires labels {self.label_names}, "
                f"missing {missing}"
            ) from None
        if len(labels) != len(self.label_names):
            extra = set(labels) - set(self.label_names)
            raise MetricError(
                f"{self.name} does not accept labels {sorted(extra)}"
            )
        return key

    def _slot(self, key: Tuple[str, ...]) -> Tuple[str, ...]:
        """The series to charge: ``key``, or the overflow catch-all."""
        if key in self._values or len(self._values) < self.max_series:
            return key
        return self._overflow_key

    def value(self, **labels) -> float:
        """Current value of one series (0 for a series never touched)."""
        evaluated = self._evaluate()
        if evaluated is not None:
            return evaluated
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum across every series (== value() when unlabelled)."""
        evaluated = self._evaluate()
        if evaluated is not None:
            return evaluated
        with self._lock:
            return sum(self._values.values())

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        """All (labels, value) pairs, insertion-ordered."""
        with self._lock:
            items = list(self._values.items())
        return [
            (dict(zip(self.label_names, key)), value)
            for key, value in items
        ]

    def snapshot(self) -> Dict:
        evaluated = self._evaluate()
        if evaluated is not None:
            return {"type": self.type, "help": self.help, "value": evaluated}
        with self._lock:
            items = list(self._values.items())
        payload: Dict = {"type": self.type, "help": self.help}
        if self.label_names:
            payload["label_names"] = list(self.label_names)
            payload["series"] = [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in items
            ]
            payload["total"] = sum(value for _, value in items)
        else:
            payload["value"] = items[0][1] if items else 0.0
        return payload

    def render(self) -> List[str]:
        if self._callback is not None:
            evaluated = self._evaluate()
            if evaluated is None:
                return []
            return [f"{self.name} {_format(evaluated)}"]
        with self._lock:
            items = list(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        return [
            f"{self.name}{_label_text(self.label_names, key)} {_format(value)}"
            for key, value in items
        ]


def _format(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter(_LabelledValues):
    """A monotonically increasing total, optionally labelled.

    Hot paths that already maintain a monotonic total (e.g. the guard's
    :class:`~repro.core.guard.GuardStats`) should expose it with
    :meth:`~_LabelledValues.set_function` instead of paying an ``inc``
    per event.
    """

    type = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (>= 0) to the series identified by ``labels``."""
        if amount < 0:
            raise MetricError(
                f"counter {self.name} cannot decrease (got {amount})"
            )
        self._check_writable()
        key = self._key(labels)
        with self._lock:
            slot = self._slot(key)
            self._values[slot] = self._values.get(slot, 0.0) + amount


class Gauge(_LabelledValues):
    """A point-in-time value: set directly or computed by a callback."""

    type = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set one series to ``value``."""
        self._check_writable()
        key = self._key(labels)
        with self._lock:
            self._values[self._slot(key)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to one series."""
        self._check_writable()
        key = self._key(labels)
        with self._lock:
            slot = self._slot(key)
            self._values[slot] = self._values.get(slot, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract ``amount`` from one series."""
        self.inc(-amount, **labels)


class Histogram(Metric):
    """Streaming distribution over fixed buckets with bounded memory.

    Args:
        name: metric name (Prometheus identifier).
        help: one-line description.
        buckets: ascending finite upper bounds; an implicit ``+Inf``
            overflow bucket is always appended. Defaults to
            :func:`delay_buckets` (0, then 0.1 ms .. ~28 h, ten buckets
            per decade).

    Tracks per-bucket counts *and sums* plus exact global count, sum,
    min, and max, so quantile estimates can answer with bucket means
    (exact whenever a bucket holds one distinct value) and the extremes
    are always exact.
    """

    type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help)
        bounds = list(buckets) if buckets is not None else delay_buckets()
        if not bounds:
            raise MetricError("histogram needs at least one bucket bound")
        if any(b != b or b == math.inf for b in bounds):
            raise MetricError("bucket bounds must be finite")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise MetricError("bucket bounds must be strictly ascending")
        self._bounds = bounds  # finite upper bounds; overflow is implicit
        size = len(bounds) + 1
        self._counts = [0] * size
        self._sums = [0.0] * size
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ---------------------------------------------------------

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        if value != value:
            raise MetricError(f"cannot observe NaN in {self.name}")
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sums[index] += value
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record several observations."""
        for value in values:
            self.observe(value)

    # -- reading -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        with self._lock:
            return self._sum

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        with self._lock:
            return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        with self._lock:
            return self._max if self._count else 0.0

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1].

        Nearest-rank over the buckets: find the bucket holding the
        ``ceil(q * count)``-th smallest observation and answer with that
        bucket's mean, clamped into [min, max]. ``q=0`` returns the
        exact minimum and ``q=1`` the exact maximum.
        """
        if not 0 <= q <= 1:
            raise MetricError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._count:
                return 0.0
            if q == 0:
                return self._min
            if q == 1:
                return self._max
            target = max(1, math.ceil(q * self._count))
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= target:
                    estimate = self._sums[index] / bucket_count
                    return min(max(estimate, self._min), self._max)
            return self._max  # pragma: no cover - counts always cover

    def bucket_bounds(self) -> List[float]:
        """The finite upper bounds (the +Inf overflow is implicit)."""
        return list(self._bounds)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds + [math.inf], counts):
            running += count
            cumulative.append((bound, running))
        return cumulative

    def snapshot(self) -> Dict:
        """JSON view; only non-empty buckets are materialised."""
        with self._lock:
            counts = list(self._counts)
            sums = list(self._sums)
            count, total = self._count, self._sum
            low = self._min if count else 0.0
            high = self._max if count else 0.0
        buckets = [
            {
                "le": bound,
                "count": bucket_count,
                "sum": bucket_sum,
            }
            for bound, bucket_count, bucket_sum in zip(
                self._bounds + [math.inf], counts, sums
            )
            if bucket_count
        ]
        for bucket in buckets:
            if bucket["le"] == math.inf:
                bucket["le"] = "+Inf"
        payload = {
            "type": self.type,
            "help": self.help,
            "count": count,
            "sum": total,
            "min": low,
            "max": high,
            "mean": total / count if count else 0.0,
            "buckets": buckets,
        }
        if count:
            payload["quantiles"] = {
                "p50": self.quantile(0.5),
                "p90": self.quantile(0.9),
                "p99": self.quantile(0.99),
            }
        return payload

    def render(self) -> List[str]:
        # One lock acquisition for buckets, sum, and count together:
        # a concurrent observe between two acquisitions would make the
        # +Inf bucket disagree with _count in the same exposition.
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        lines = []
        running = 0
        for bound, bucket_count in zip(self._bounds + [math.inf], counts):
            running += bucket_count
            lines.append(
                f'{self.name}_bucket{{le="{_format(bound)}"}} {running}'
            )
        lines.append(f"{self.name}_sum {_format(total)}")
        lines.append(f"{self.name}_count {count}")
        return lines


class MetricsRegistry:
    """A named collection of metrics with JSON and Prometheus exposition.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object, and asking with a
    conflicting type or label set raises :class:`MetricError`. Existing
    metric objects (e.g. the guard's canonical delay histogram) can be
    adopted with :meth:`register` so one distribution is never tracked
    twice.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: "Dict[str, Metric]" = {}

    # -- creation ----------------------------------------------------------

    def counter(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        max_series: int = 1024,
    ) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(
            Counter, name, help, label_names, max_series
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        label_names: Sequence[str] = (),
        max_series: int = 1024,
    ) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, name, help, label_names, max_series)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get or create a histogram."""
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise MetricError(
                        f"{name} already registered as {existing.type}"
                    )
                return existing
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
            return metric

    def _get_or_create(self, cls, name, help, label_names, max_series):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"{name} already registered as {existing.type}"
                    )
                if existing.label_names != tuple(label_names):
                    raise MetricError(
                        f"{name} registered with labels "
                        f"{existing.label_names}, not {tuple(label_names)}"
                    )
                return existing
            metric = cls(name, help, label_names, max_series)
            self._metrics[name] = metric
            return metric

    def register(self, metric: Metric) -> Metric:
        """Adopt an externally created metric under its own name."""
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is metric:
                return metric
            if existing is not None:
                raise MetricError(
                    f"{metric.name} already registered"
                )
            self._metrics[metric.name] = metric
            return metric

    # -- reading -----------------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        """Look up a metric by name (None when absent)."""
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, insertion-ordered."""
        with self._lock:
            return list(self._metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def to_json(self) -> Dict[str, Dict]:
        """``{name: snapshot}`` for every metric — the ``metrics`` op."""
        with self._lock:
            metrics = list(self._metrics.values())
        return {metric.name: metric.snapshot() for metric in metrics}

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            body = metric.render()
            if not body:
                continue
            lines.extend(metric.header())
            lines.extend(body)
        return "\n".join(lines) + "\n"
