"""Query-lifecycle tracing: per-stage spans with a bounded trace buffer.

Every statement served by the guard passes through the same lifecycle —
parse, account check, engine execution, delay computation, accounting,
sleep — and the paper's claims live in the *ratios* between those
stages: accounting must stay a small fraction of engine time (Table 5)
while the sleep stage is where the defense actually bites. A
:class:`QueryTrace` records one such lifecycle as a list of
:class:`Span` (name, offset, duration); the :class:`Tracer` keeps a ring
buffer of the most recent traces (bounded memory — a long-running server
never accumulates them) and can mirror every finished trace to a
JSON-lines sink for offline analysis.

Traces are cheap: the guard adds spans from ``perf_counter`` readings it
already takes for its timing buckets, so tracing adds a handful of
clock reads and one small object per query. Span recording is
deliberately allocation-lean — stages are kept as plain tuples of
atomics (which the cyclic GC untracks) and only materialised into
:class:`Span` objects when read. The dominant cost of tracing every
query is not the instruction path but garbage-collector pressure from
objects retained in the ring; keeping the retained graph GC-invisible
is what keeps the overhead benchmark inside its budget.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque
from typing import Dict, IO, List, Optional, Union

from .audit import BackgroundJsonlWriter

__all__ = ["Span", "QueryTrace", "Tracer"]

#: SQL stored on a trace is truncated to this many characters.
SQL_LIMIT = 200

# Correlation ids: "<pid hex>-<counter hex>" is unique within a process
# tree and cheap to mint (one atomic counter bump, no RNG, no clock).
# Audit events carry the same id, so one query's trace and its audit
# records can be joined offline.
_TRACE_ID_PREFIX = f"{os.getpid():x}"
_trace_counter = itertools.count(1)


def _next_trace_id() -> str:
    return f"{_TRACE_ID_PREFIX}-{next(_trace_counter):x}"


class Span:
    """One lifecycle stage: name, offset from trace start, duration."""

    __slots__ = ("name", "offset", "duration")

    def __init__(self, name: str, offset: float, duration: float):
        self.name = name
        self.offset = offset
        self.duration = duration

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "offset": self.offset,
            "duration": self.duration,
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms)"


class QueryTrace:
    """The recorded lifecycle of one statement through the guard.

    Attributes:
        kind: trace kind (``"query"``).
        trace_id: process-unique correlation id; audit events carry the
            same id so the trace and its audit records can be joined.
        identity: the requesting identity, when known.
        sql: the statement text (truncated), when given as text.
        started_at: wall-clock UNIX time when the trace began.
        spans: per-stage :class:`Span` list, in execution order.
        status: ``"ok"``, ``"denied"``, or ``"error"``.
        reason: denial reason or error text, when not ok.
        delay: the delay charged (seconds of simulated or real sleep).
        rows: result rows returned (SELECT only).
        duration: total wall-clock seconds from start to finish.
    """

    __slots__ = (
        "kind",
        "trace_id",
        "identity",
        "sql",
        "started_at",
        "_events",
        "status",
        "reason",
        "delay",
        "rows",
        "duration",
        "_perf_start",
    )

    def __init__(
        self,
        kind: str = "query",
        identity: Optional[str] = None,
        sql: Optional[str] = None,
    ):
        self.kind = kind
        self.trace_id = _next_trace_id()
        self.identity = identity
        if sql is not None and len(sql) > SQL_LIMIT:
            sql = sql[:SQL_LIMIT]
        self.sql = sql or None
        self.started_at = time.time()
        # (name, perf_start, perf_end) tuples. Tuples of atomics get
        # untracked by the cyclic GC, so a ring full of finished traces
        # costs the collector almost nothing to traverse.
        self._events: List[tuple] = []
        self.status = "ok"
        self.reason: Optional[str] = None
        self.delay = 0.0
        self.rows = 0
        self.duration = 0.0
        self._perf_start = time.perf_counter()

    # -- recording ---------------------------------------------------------

    def add_span(self, name: str, start: float, end: float) -> None:
        """Record one stage from two ``perf_counter`` readings."""
        self._events.append((name, start, end))

    @property
    def spans(self) -> List[Span]:
        """Per-stage :class:`Span` list, materialised from the raw events."""
        base = self._perf_start
        return [
            Span(name, start - base, end - start)
            for name, start, end in self._events
        ]

    def finish(
        self,
        status: str = "ok",
        reason: Optional[str] = None,
        delay: float = 0.0,
        rows: int = 0,
    ) -> "QueryTrace":
        """Close the trace, stamping totals and outcome."""
        self.status = status
        self.reason = reason
        self.delay = delay
        self.rows = rows
        self.duration = time.perf_counter() - self._perf_start
        return self

    def extend(self, name: str, start: float, end: float) -> None:
        """Append a span after :meth:`finish` and stretch the duration.

        For lifecycle work served by an outer layer after the traced
        body returned — the canonical case is :class:`DelayServer`
        serving the sleep outside its statement lock: the guard's trace
        is already finished and retained, and the server appends the
        observed sleep so the recorded lifecycle still covers the full
        wall-clock the client experienced.
        """
        self._events.append((name, start, end))
        self.duration = end - self._perf_start

    # -- reading -----------------------------------------------------------

    def stage_seconds(self) -> Dict[str, float]:
        """Total duration per stage name (stages can repeat)."""
        stages: Dict[str, float] = {}
        for name, start, end in self._events:
            stages[name] = stages.get(name, 0.0) + (end - start)
        return stages

    def span_total(self) -> float:
        """Sum of all span durations (~= duration; gaps are untraced)."""
        return sum(end - start for _, start, end in self._events)

    def to_dict(self) -> Dict:
        payload: Dict = {
            "kind": self.kind,
            "trace_id": self.trace_id,
            "status": self.status,
            "started_at": self.started_at,
            "duration": self.duration,
            "delay": self.delay,
            "rows": self.rows,
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.identity is not None:
            payload["identity"] = self.identity
        if self.sql is not None:
            payload["sql"] = self.sql
        if self.reason is not None:
            payload["reason"] = self.reason
        return payload

    def __repr__(self) -> str:
        return (
            f"QueryTrace({self.status}, {len(self._events)} spans, "
            f"delay={self.delay:.4g})"
        )


class Tracer:
    """Collects finished traces into a bounded ring buffer.

    Args:
        capacity: how many recent traces to retain (older ones fall off
            the ring — memory stays bounded on a long-running server).
        sink: optional JSON-lines destination — a path or any writable
            text file object. Every finished trace is written as one
            JSON line. A *path* sink is served by a
            :class:`~repro.obs.audit.BackgroundJsonlWriter`: the
            serving thread only enqueues (bounded, non-blocking — a
            slow or full disk drops traces and counts the drop instead
            of stalling queries), and the file is size-rotated. A
            *file-object* sink stays synchronous and unrotated — the
            caller owns its lifecycle and flushing discipline (tests
            pass ``io.StringIO``).
        sink_max_bytes / sink_max_files / sink_max_queue: rotation and
            queue bounds for a path sink (ignored for file objects).
    """

    def __init__(
        self,
        capacity: int = 256,
        sink: Optional[Union[str, IO[str]]] = None,
        sink_max_bytes: int = 32 * 1024 * 1024,
        sink_max_files: int = 4,
        sink_max_queue: int = 4096,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: "deque[QueryTrace]" = deque(maxlen=capacity)
        self._finished = 0
        self._sink_file: Optional[IO[str]] = (
            sink if sink is not None and not isinstance(sink, str) else None
        )
        self.sink_writer: Optional[BackgroundJsonlWriter] = (
            BackgroundJsonlWriter(
                sink,
                max_bytes=sink_max_bytes,
                max_files=sink_max_files,
                max_queue=sink_max_queue,
            )
            if isinstance(sink, str)
            else None
        )

    # -- recording ---------------------------------------------------------

    def start(
        self,
        kind: str = "query",
        identity: Optional[str] = None,
        sql: Optional[str] = None,
    ) -> QueryTrace:
        """Begin a trace (not retained until :meth:`finish`)."""
        return QueryTrace(kind=kind, identity=identity, sql=sql)

    def finish(self, trace: QueryTrace) -> None:
        """Retain a finished trace and mirror it to the sink, if any."""
        with self._lock:
            self._ring.append(trace)
            self._finished += 1
            if self._sink_file is not None:
                self._sink_file.write(json.dumps(trace.to_dict()) + "\n")
                self._sink_file.flush()
        # Outside the lock: submit is its own synchronisation and never
        # blocks, so a stalled disk cannot hold the trace lock either.
        if self.sink_writer is not None:
            self.sink_writer.submit(trace.to_dict())

    def close(self) -> None:
        """Flush and stop a path sink (file-object sinks are the caller's)."""
        if self.sink_writer is not None:
            self.sink_writer.close()

    # -- reading -----------------------------------------------------------

    @property
    def finished_total(self) -> int:
        """Traces finished over the tracer's lifetime (not just retained)."""
        with self._lock:
            return self._finished

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def recent(self, limit: int = 20) -> List[QueryTrace]:
        """The most recent traces, newest first."""
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        with self._lock:
            items = list(self._ring)
        return list(reversed(items))[:limit]

    def to_json(self, limit: int = 20) -> List[Dict]:
        """Recent traces as JSON-compatible dicts, newest first."""
        return [trace.to_dict() for trace in self.recent(limit)]

    def clear(self) -> None:
        """Drop retained traces (the lifetime counter is kept)."""
        with self._lock:
            self._ring.clear()
