"""Build info and rolling SLO accounting for the ``health`` op.

Two small pieces of operability plumbing:

* :func:`build_info` — the ``repro_build_info``-style identity labels
  (library version, python version) every scrape and health payload
  should carry, so a dashboard can correlate a regression with a
  deploy.
* :class:`SloTracker` — per-second ring-buffer accounting of request
  outcomes and latencies, summarised over sliding windows (5 min and
  1 h by default) into goodput, availability, and **burn rate**: how
  fast the deployment is spending its error budget, where 1.0 means
  "exactly on target" and N means "budget gone in 1/N of the period".

Outcome taxonomy matters for this defense: a *denial* (result limit,
unknown identity) is the defense working as specified, and a priced
delay is the product, not latency — so availability only debits
*sheds* (overload) and *errors* (bugs), and the latency fed to
``note`` must exclude the mandated delay. The server records latency
up to the moment the response is ready to park, precisely so the
paper's multi-hour adversary delays never look like an SLO violation.
"""

from __future__ import annotations

import platform
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["SloTracker", "build_info", "replication_summary"]

#: Outcomes note() accepts; anything else raises ValueError.
OUTCOMES = ("ok", "denied", "shed", "error")


def build_info() -> Dict[str, str]:
    """Identity labels for ``repro_build_info`` and the health op."""
    try:
        # Imported lazily: repro/__init__ pulls in heavier modules, and
        # obs must stay importable on its own.
        from .. import __version__ as version
    except Exception:
        version = "unknown"
    return {"version": version, "python": platform.python_version()}


def replication_summary(groups: Sequence) -> Dict:
    """Fold per-group replication health into one operator line.

    Accepts anything exposing ``replication_health()`` (duck-typed so
    obs keeps its no-inward-imports rule). The roll-up the health op
    and ``repro top`` lead with: how many groups can serve, the worst
    follower lag, and cumulative failover/fencing counts.
    """
    rows = [group.replication_health() for group in groups]
    return {
        "groups": len(rows),
        "groups_available": sum(1 for row in rows if row["available"]),
        "max_replication_lag": max(
            (row["replication_lag"] for row in rows), default=0
        ),
        "failovers_total": sum(row["failovers"] for row in rows),
        "fencings_total": sum(row["fencings"] for row in rows),
        "ship_failures_total": sum(row["ship_failures"] for row in rows),
    }


class _Slot:
    """One second of outcome counts."""

    __slots__ = (
        "second",
        "ok",
        "denied",
        "shed",
        "error",
        "latency_sum",
        "latency_count",
        "slow",
    )

    def __init__(self, second: int):
        self.second = second
        self.ok = 0
        self.denied = 0
        self.shed = 0
        self.error = 0
        self.latency_sum = 0.0
        self.latency_count = 0
        self.slow = 0


class SloTracker:
    """Sliding-window availability, goodput, and latency accounting.

    Args:
        horizon: seconds of history retained (ring size).
        latency_threshold: seconds above which an ``ok`` response
            counts as *slow* (``slow_fraction`` in summaries). The
            mandated delay must NOT be included in the latency the
            caller passes — the defense's sleep is the product.
        availability_target: the SLO (e.g. 0.999); burn rate is
            ``(1 - availability) / (1 - target)``.
        clock: monotonic seconds source, injectable for tests.
    """

    def __init__(
        self,
        horizon: int = 3600,
        latency_threshold: float = 0.25,
        availability_target: float = 0.999,
        clock: Callable[[], float] = time.monotonic,
    ):
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if not 0 < availability_target < 1:
            raise ValueError(
                "availability_target must be in (0, 1), got "
                f"{availability_target}"
            )
        if latency_threshold <= 0:
            raise ValueError(
                f"latency_threshold must be > 0, got {latency_threshold}"
            )
        self.horizon = horizon
        self.latency_threshold = latency_threshold
        self.availability_target = availability_target
        self._clock = clock
        self._lock = threading.Lock()
        self._slots: List[Optional[_Slot]] = [None] * horizon
        self.noted_total = 0

    def note(self, outcome: str, latency: Optional[float] = None) -> None:
        """Record one request outcome (latency for ``ok`` responses)."""
        if outcome not in OUTCOMES:
            raise ValueError(
                f"outcome must be one of {OUTCOMES}, got {outcome!r}"
            )
        second = int(self._clock())
        with self._lock:
            slot = self._slots[second % self.horizon]
            if slot is None or slot.second != second:
                slot = _Slot(second)
                self._slots[second % self.horizon] = slot
            setattr(slot, outcome, getattr(slot, outcome) + 1)
            if latency is not None and outcome == "ok":
                slot.latency_sum += latency
                slot.latency_count += 1
                slot.slow += latency > self.latency_threshold
            self.noted_total += 1

    def summary(self, window: int) -> Dict:
        """Aggregate the most recent ``window`` seconds."""
        window = min(max(int(window), 1), self.horizon)
        now = int(self._clock())
        floor = now - window
        ok = denied = shed = error = slow = latency_count = 0
        latency_sum = 0.0
        with self._lock:
            for slot in self._slots:
                if slot is None or slot.second <= floor or slot.second > now:
                    continue
                ok += slot.ok
                denied += slot.denied
                shed += slot.shed
                error += slot.error
                slow += slot.slow
                latency_sum += slot.latency_sum
                latency_count += slot.latency_count
        requests = ok + denied + shed + error
        # Denials are the defense saying "no" as designed; only sheds
        # (overload) and errors (bugs) burn the error budget.
        availability = (
            1.0 - (shed + error) / requests if requests else 1.0
        )
        burn_rate = (1.0 - availability) / (1.0 - self.availability_target)
        return {
            "window_seconds": window,
            "requests": requests,
            "ok": ok,
            "denied": denied,
            "shed": shed,
            "errors": error,
            "goodput_per_second": ok / window,
            "availability": availability,
            "burn_rate": burn_rate,
            "mean_latency_seconds": (
                latency_sum / latency_count if latency_count else 0.0
            ),
            "slow_fraction": (
                slow / latency_count if latency_count else 0.0
            ),
        }

    def report(self, windows: Sequence[int] = (300, 3600)) -> Dict:
        """Per-window summaries plus the SLO parameters."""
        return {
            "availability_target": self.availability_target,
            "latency_threshold_seconds": self.latency_threshold,
            "windows": {
                str(window): self.summary(window) for window in windows
            },
        }
