"""repro.obs — the observability layer: metrics, tracing, exposition.

The paper's defense is an argument about *measured time*: median user
delay in milliseconds against extraction cost in hours. This package
makes a running deployment show those numbers continuously:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges, and bounded streaming histograms, with JSON and
  Prometheus-text exposition.
* :mod:`repro.obs.tracing` — per-stage query-lifecycle spans collected
  into a bounded ring buffer, optionally mirrored to a JSON-lines sink.
* :class:`Observability` — the bundle a guard/service/server shares:
  one registry + one tracer + an enable switch, so instrumentation can
  be turned off wholesale for overhead-sensitive runs (the
  ``benchmarks/test_metrics_overhead.py`` acceptance is < 5%
  single-threaded cost when enabled).

Everything here is dependency-free and imports nothing from the rest of
the library, so any layer can depend on it without cycles.
"""

from __future__ import annotations

from typing import Optional

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricError,
    MetricsRegistry,
    delay_buckets,
)
from .tracing import QueryTrace, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricError",
    "MetricsRegistry",
    "Observability",
    "QueryTrace",
    "Span",
    "Tracer",
    "delay_buckets",
]


class Observability:
    """One registry + one tracer, shared by every instrumented layer.

    Args:
        registry: metrics registry (a fresh one by default).
        tracer: lifecycle tracer (a fresh ring of 256 by default).
        enabled: when False, instrumented code paths skip all metric
            and trace work (the registry/tracer stay usable directly).

    The guard, service, and server all accept an ``Observability`` and
    default to sharing the one owned by the service, so a server scrape
    sees guard counters and server counters in a single exposition.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        enabled: bool = True,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.enabled = enabled

    @classmethod
    def disabled(cls) -> "Observability":
        """An inert bundle: registry and tracer exist but are not fed."""
        return cls(enabled=False)

    def __repr__(self) -> str:
        return (
            f"Observability(enabled={self.enabled}, "
            f"metrics={len(self.registry)}, traces={len(self.tracer)})"
        )
