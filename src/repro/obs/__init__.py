"""repro.obs — the observability layer: metrics, tracing, audit, health.

The paper's defense is an argument about *measured time*: median user
delay in milliseconds against extraction cost in hours. This package
makes a running deployment show those numbers continuously:

* :mod:`repro.obs.metrics` — a thread-safe registry of counters,
  gauges, and bounded streaming histograms, with JSON and
  Prometheus-text exposition (histograms in native cumulative
  ``_bucket``/``le`` form).
* :mod:`repro.obs.tracing` — per-stage query-lifecycle spans collected
  into a bounded ring buffer, optionally mirrored to a JSON-lines sink
  through a non-blocking background writer.
* :mod:`repro.obs.audit` — schema-versioned structured audit events
  (served/denied/shed/cached, delays priced, checkpoints, forensic
  flags) with correlation ids, a bounded-queue rotating background
  writer, and replayable readers.
* :mod:`repro.obs.forensics` — live extraction-risk scoring over an
  injected coverage monitor: per-identity coverage/novelty/delay-paid,
  extraction-ETA from the paper's §2.2 cost model evaluated online,
  flag-transition audit events, bounded-cardinality metrics.
* :mod:`repro.obs.health` — build info and a rolling per-second SLO
  tracker (goodput, availability, burn rate, latency) feeding the
  server's ``health`` op.
* :class:`Observability` — the bundle a guard/service/server shares:
  one registry + one tracer + an optional audit log + an enable
  switch, so instrumentation can be turned off wholesale for
  overhead-sensitive runs.

This package never imports ``repro.core``/``repro.engine`` (they import
*it*); its only inward dependency is the stdlib-only fault-injection
seam ``repro.testing.faults``, so any layer can depend on it without
cycles. Domain objects such as the coverage monitor are injected, not
imported.
"""

from __future__ import annotations

from typing import Optional

from .audit import (
    AUDIT_SCHEMA_VERSION,
    AuditLog,
    BackgroundJsonlWriter,
    iter_audit_events,
)
from .forensics import ForensicsMonitor
from .health import SloTracker, build_info
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricError,
    MetricsRegistry,
    delay_buckets,
)
from .tracing import QueryTrace, Span, Tracer

__all__ = [
    "AUDIT_SCHEMA_VERSION",
    "AuditLog",
    "BackgroundJsonlWriter",
    "Counter",
    "ForensicsMonitor",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricError",
    "MetricsRegistry",
    "Observability",
    "QueryTrace",
    "SloTracker",
    "Span",
    "Tracer",
    "build_info",
    "delay_buckets",
    "iter_audit_events",
]


class Observability:
    """One registry + one tracer (+ optional audit log), shared by all.

    Args:
        registry: metrics registry (a fresh one by default).
        tracer: lifecycle tracer (a fresh ring of 256 by default).
        audit: optional :class:`AuditLog`; when present, the guard and
            server emit structured events for every defense decision.
        enabled: when False, instrumented code paths skip all metric,
            trace, and audit work (the objects stay usable directly).

    The guard, service, and server all accept an ``Observability`` and
    default to sharing the one owned by the service, so a server scrape
    sees guard counters and server counters in a single exposition.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        audit: Optional[AuditLog] = None,
        enabled: bool = True,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.audit = audit
        self.enabled = enabled

    @classmethod
    def disabled(cls) -> "Observability":
        """An inert bundle: registry and tracer exist but are not fed."""
        return cls(enabled=False)

    def __repr__(self) -> str:
        return (
            f"Observability(enabled={self.enabled}, "
            f"metrics={len(self.registry)}, traces={len(self.tracer)}, "
            f"audit={'on' if self.audit is not None else 'off'})"
        )
