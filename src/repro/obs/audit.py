"""Structured audit events with a non-blocking background JSONL writer.

The paper's §2.4 storefront argument assumes the operator can *see*
what the defense did — which queries were served, what each one was
charged, who was refused, when a forensic flag tripped. This module is
the durable record of those decisions: schema-versioned JSON events,
one per line, written by a background thread so the serving path never
waits on a disk.

Three pieces:

* :class:`BackgroundJsonlWriter` — a bounded queue drained by one
  daemon thread into a size-rotated JSONL file. ``submit`` never
  blocks: a full queue drops the record and counts the drop (audit
  completeness is sacrificed before serving latency, and the loss is
  visible in ``dropped_total``). The write path fires the
  ``audit.write`` fault point so chaos tests can model a slow or
  failing disk.
* :class:`AuditLog` — the event-level API: ``emit(kind, **fields)``
  stamps schema version, wall-clock time, and an optional correlation
  ``trace_id`` linking the event to its
  :class:`~repro.obs.tracing.QueryTrace`.
* :func:`iter_audit_events` — the replayable reader: yields events
  oldest-first across the rotated file set, skipping torn or corrupt
  lines (a crash mid-write must not make the whole log unreadable).

Event kinds currently emitted by the stack: ``query_served``,
``query_cached``, ``query_denied``, ``query_deadline_aborted``,
``query_shed``, ``delay_priced``, ``checkpoint``, ``recovery``,
``forensic_flag``, ``forensic_flag_cleared``.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional

from ..testing.faults import fire

__all__ = [
    "AUDIT_SCHEMA_VERSION",
    "AuditLog",
    "BackgroundJsonlWriter",
    "iter_audit_events",
]

#: Version stamped into every record as ``"v"``; bump on breaking
#: changes to the envelope (``ts``/``event``/``trace_id`` semantics).
AUDIT_SCHEMA_VERSION = 1

#: Sentinel instructing the writer thread to exit.
_STOP = object()


class BackgroundJsonlWriter:
    """Writes dict records as JSON lines from a background thread.

    Args:
        path: target file. Rotation renames it to ``path.1``,
            ``path.2``, ... (newest first) once ``max_bytes`` is
            reached; at most ``max_files`` files are kept in total.
        max_bytes: size threshold that triggers a rotation.
        max_files: total files retained (active + rotated); the oldest
            is deleted when rotation would exceed it.
        max_queue: bounded submission queue. ``submit`` on a full
            queue drops the record, increments ``dropped_total``, and
            returns False — it never blocks the caller.

    Counters (read without a lock; single-writer-thread updated):
        ``written_total`` — records durably handed to the OS.
        ``dropped_total`` — records sacrificed to the queue bound.
        ``write_errors_total`` — records lost to I/O failures.
        ``rotations_total`` — completed rotations.
        ``bytes_written_total`` — bytes appended across rotations.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 32 * 1024 * 1024,
        max_files: int = 4,
        max_queue: int = 4096,
    ):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if max_files < 1:
            raise ValueError(f"max_files must be >= 1, got {max_files}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.path = str(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue)
        self.written_total = 0
        self.dropped_total = 0
        self.write_errors_total = 0
        self.rotations_total = 0
        self.bytes_written_total = 0
        self._file = None
        self._file_bytes = 0
        self._closed = False
        # submitted/completed drive flush(): completed counts records
        # the worker fully processed (written, errored, or skipped).
        self._submitted = 0
        self._completed = 0
        self._done = threading.Condition()
        self._thread = threading.Thread(
            target=self._run, name="repro-audit-writer", daemon=True
        )
        self._thread.start()

    # -- producer side (any thread, never blocks) ---------------------------

    def submit(self, record: Dict) -> bool:
        """Enqueue one record; False when the queue bound dropped it."""
        if self._closed:
            return False
        with self._done:
            try:
                self._queue.put_nowait(record)
            except queue.Full:
                self.dropped_total += 1
                return False
            self._submitted += 1
            return True

    @property
    def queue_depth(self) -> int:
        """Records accepted but not yet written."""
        return self._queue.qsize()

    def flush(self, timeout: float = 10.0) -> bool:
        """Wait until everything submitted so far has been processed."""
        with self._done:
            target = self._submitted
            deadline = time.monotonic() + timeout
            while self._completed < target:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._done.wait(remaining)
            return True

    def close(self, timeout: float = 10.0) -> None:
        """Flush pending records, stop the thread, close the file."""
        if self._closed:
            return
        self._closed = True
        self.flush(timeout)
        self._queue.put(_STOP)
        self._thread.join(timeout=timeout)

    # -- worker side (the one background thread) ----------------------------

    def _run(self) -> None:
        while True:
            record = self._queue.get()
            if record is _STOP:
                break
            self._write(record)
            if self._queue.empty():
                self._flush_file()
            with self._done:
                self._completed += 1
                self._done.notify_all()
        self._flush_file()
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    def _write(self, record: Dict) -> None:
        try:
            fire("audit.write")
            line = json.dumps(record, separators=(",", ":")) + "\n"
            handle = self._open()
            handle.write(line)
            self._file_bytes += len(line)
            self.bytes_written_total += len(line)
            self.written_total += 1
            if self._file_bytes >= self.max_bytes:
                self._rotate()
        except Exception:
            # A failing disk loses this record, never the server: the
            # loss is counted, and the next record tries again.
            self.write_errors_total += 1
            self._file = None

    def _open(self):
        if self._file is None:
            self._file = open(self.path, "a", encoding="utf-8")
            self._file_bytes = self._file.tell()
        return self._file

    def _flush_file(self) -> None:
        if self._file is not None:
            try:
                self._file.flush()
            except OSError:
                self.write_errors_total += 1
                self._file = None

    def _rotate(self) -> None:
        """path -> path.1 -> path.2 ... dropping the oldest."""
        try:
            self._file.close()
        except OSError:
            pass
        self._file = None
        self._file_bytes = 0
        oldest = f"{self.path}.{self.max_files - 1}"
        if os.path.exists(oldest):
            os.unlink(oldest)
        for index in range(self.max_files - 2, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        if self.max_files > 1 and os.path.exists(self.path):
            os.replace(self.path, f"{self.path}.1")
        elif os.path.exists(self.path):
            os.unlink(self.path)
        self.rotations_total += 1

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for metrics and tests."""
        return {
            "written": self.written_total,
            "dropped": self.dropped_total,
            "write_errors": self.write_errors_total,
            "rotations": self.rotations_total,
            "bytes_written": self.bytes_written_total,
            "queue_depth": self.queue_depth,
        }


class AuditLog:
    """Schema-versioned audit events over a background JSONL writer.

    Args:
        path: JSONL destination (rotated; see
            :class:`BackgroundJsonlWriter`).
        max_bytes / max_files / max_queue: writer bounds.
        clock: wall-clock source for the ``ts`` stamp (``time.time``
            by default; injectable for deterministic tests).
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 32 * 1024 * 1024,
        max_files: int = 4,
        max_queue: int = 4096,
        clock: Callable[[], float] = time.time,
    ):
        self.writer = BackgroundJsonlWriter(
            path,
            max_bytes=max_bytes,
            max_files=max_files,
            max_queue=max_queue,
        )
        self.path = self.writer.path
        self._clock = clock
        self._lock = threading.Lock()
        self.emitted_by_kind: Dict[str, int] = {}
        self._m_events = None

    def emit(
        self, kind: str, trace_id: Optional[str] = None, **fields
    ) -> bool:
        """Emit one event; returns False when the queue bound dropped it.

        The envelope is ``{"v": 1, "ts": <unix time>, "event": kind}``
        plus ``trace_id`` when given; ``fields`` are merged in after,
        so an event can never clobber the envelope keys.
        """
        record: Dict = dict(fields)
        record["v"] = AUDIT_SCHEMA_VERSION
        record["ts"] = self._clock()
        record["event"] = kind
        if trace_id is not None:
            record["trace_id"] = trace_id
        with self._lock:
            self.emitted_by_kind[kind] = (
                self.emitted_by_kind.get(kind, 0) + 1
            )
        if self._m_events is not None:
            self._m_events.inc(kind=kind)
        return self.writer.submit(record)

    def register_metrics(self, registry) -> None:
        """Expose writer health through a shared metrics registry."""
        writer = self.writer
        self._m_events = registry.counter(
            "audit_events_total",
            "Audit events emitted, by kind (includes dropped)",
            ("kind",),
        )
        registry.counter(
            "audit_records_written_total",
            "Audit records durably handed to the OS",
        ).set_function(lambda: writer.written_total)
        registry.counter(
            "audit_records_dropped_total",
            "Audit records dropped by the bounded queue "
            "(completeness sacrificed before serving latency)",
        ).set_function(lambda: writer.dropped_total)
        registry.counter(
            "audit_write_errors_total",
            "Audit records lost to I/O failures",
        ).set_function(lambda: writer.write_errors_total)
        registry.counter(
            "audit_rotations_total", "Audit log rotations completed"
        ).set_function(lambda: writer.rotations_total)
        registry.counter(
            "audit_bytes_written_total",
            "Bytes appended to the audit log across rotations",
        ).set_function(lambda: writer.bytes_written_total)
        registry.gauge(
            "audit_queue_depth",
            "Audit records accepted but not yet written",
        ).set_function(lambda: writer.queue_depth)

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until everything emitted so far is on disk."""
        return self.writer.flush(timeout)

    def close(self) -> None:
        """Flush and stop the background writer."""
        self.writer.close()

    def replay(self) -> Iterator[Dict]:
        """Yield this log's events oldest-first across rotations."""
        return iter_audit_events(
            self.path, max_files=self.writer.max_files
        )

    def stats(self) -> Dict[str, int]:
        """Writer counters plus per-kind emission counts."""
        payload = self.writer.stats()
        with self._lock:
            payload["by_kind"] = dict(self.emitted_by_kind)
        return payload


def iter_audit_events(
    path: str, max_files: int = 16
) -> Iterator[Dict]:
    """Replay audit events from ``path`` and its rotated siblings.

    Oldest events first: ``path.N`` (largest N) down to ``path``
    itself. Tolerant by design — a file vanishing mid-read (concurrent
    rotation) and corrupt or torn lines (crash mid-write) are skipped,
    never fatal. Only dict records are yielded.
    """
    candidates: List[str] = [
        f"{path}.{index}" for index in range(max_files - 1, 0, -1)
    ]
    candidates.append(str(path))
    for candidate in candidates:
        try:
            with open(candidate, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(record, dict):
                        yield record
        except OSError:
            continue
