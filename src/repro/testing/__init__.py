"""Testing utilities: controlled fault injection for chaos testing.

:mod:`repro.testing.faults` provides named failure points that
production code calls through a zero-cost no-op default; chaos tests
arm them to drive the serving stack through overload, partial-failure,
and recovery scenarios without any real network outage.
"""

from .faults import (
    FaultError,
    FaultInjector,
    FaultRule,
    fire,
    injector,
    injected_faults,
)

__all__ = [
    "FaultError",
    "FaultInjector",
    "FaultRule",
    "fire",
    "injector",
    "injected_faults",
]
