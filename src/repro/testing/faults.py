"""Injectable failure points for chaos testing.

Production code is sprinkled with named fault points::

    from ..testing import faults
    ...
    faults.fire("journal.fsync")

With no faults armed, :func:`fire` is a single attribute read plus a
truthiness check — cheap enough to leave in hot paths permanently.
Chaos tests arm points on the process-wide injector::

    with faults.injected_faults():
        faults.injector.fail("server.read", OSError("injected"), times=3)
        faults.injector.stall("server.handler", 0.5)
        ... drive traffic, assert degradation and recovery ...

and every armed rule is disarmed again when the context exits, so a
crashing test can never leak broken behaviour into the next one.

Fault points currently wired into the stack:

===================  =====================================================
point                where it fires
===================  =====================================================
``server.accept``    :class:`~repro.server.DelayServer` accept path, per
                     accepted socket (an ``OSError`` drops the connection)
``server.read``      per socket read in the server's I/O loop
``server.write``     per socket write in the server's I/O loop
``server.handler``   in a worker thread, before dispatching a request
``engine.execute``   :meth:`repro.engine.database.Database.execute`, before
                     the statement is classified
``journal.fsync``    :meth:`repro.engine.journal.WriteAheadJournal._fsync`
``audit.write``      :class:`repro.obs.audit.BackgroundJsonlWriter`, on the
                     writer thread before each record is written (a stall
                     models a slow disk; serving must never block on it)
``replication.ship`` :meth:`repro.cluster.replication.ReplicaGroup.ship`,
                     before each follower shipment (a fail drops the
                     batch; a stall models a slow replication link)
``replication.ack``  same path, after the follower applied but before
                     its ack is processed (the primary retries the
                     batch — idempotent re-delivery)
``group.primary``    :meth:`repro.cluster.replication.GroupMonitor.probe`,
                     inside each primary liveness probe (a callback here
                     is how the chaos suite kills primaries mid-stream)
===================  =====================================================

A rule can *raise* an exception, *stall* (sleep real time, modelling a
slow disk or a wedged handler), or run an arbitrary callback. Rules
match by exact point name and expire after ``times`` firings
(``times=None`` keeps firing until disarmed).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional


class FaultError(RuntimeError):
    """Default exception type raised by an armed ``fail`` rule."""


class FaultRule:
    """One armed fault: what happens when a matching point fires.

    Exactly one of ``error``, ``stall_seconds``, or ``callback`` is set.
    """

    def __init__(
        self,
        point: str,
        error: Optional[BaseException] = None,
        stall_seconds: float = 0.0,
        callback: Optional[Callable[[], None]] = None,
        times: Optional[int] = None,
    ):
        self.point = point
        self.error = error
        self.stall_seconds = stall_seconds
        self.callback = callback
        #: remaining firings; None means unlimited.
        self.remaining = times
        #: how many times this rule has fired.
        self.fired = 0

    def spent(self) -> bool:
        return self.remaining is not None and self.remaining <= 0

    def __repr__(self) -> str:
        action = (
            f"raise {self.error!r}"
            if self.error is not None
            else f"stall {self.stall_seconds}s"
            if self.stall_seconds
            else "callback"
        )
        return f"FaultRule({self.point!r}, {action}, fired={self.fired})"


class FaultInjector:
    """Process-wide registry of armed fault rules.

    Thread-safe: rules are armed from test threads and fired from
    server worker/IO threads. ``active`` is read without the lock as a
    fast-path gate — it only ever flips between armed states, and a
    stale read merely delays one firing by one call.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rules: List[FaultRule] = []
        #: fast-path gate: True whenever any rule is armed.
        self.active = False
        #: lifetime count of fired faults, by point name.
        self.fired_by_point: Dict[str, int] = {}
        #: lifetime count of fired faults across all points.
        self.fired_total = 0

    # -- arming --------------------------------------------------------------

    def arm(self, rule: FaultRule) -> FaultRule:
        """Register a rule; returns it for later inspection."""
        with self._lock:
            self._rules.append(rule)
            self.active = True
        return rule

    def fail(
        self,
        point: str,
        error: Optional[BaseException] = None,
        times: Optional[int] = 1,
    ) -> FaultRule:
        """Arm ``point`` to raise ``error`` (a :class:`FaultError` by
        default) for the next ``times`` firings."""
        if error is None:
            error = FaultError(f"injected fault at {point}")
        return self.arm(FaultRule(point, error=error, times=times))

    def stall(
        self, point: str, seconds: float, times: Optional[int] = 1
    ) -> FaultRule:
        """Arm ``point`` to sleep ``seconds`` of real time when fired."""
        return self.arm(FaultRule(point, stall_seconds=seconds, times=times))

    def on_fire(
        self, point: str, callback: Callable[[], None],
        times: Optional[int] = 1,
    ) -> FaultRule:
        """Arm ``point`` to invoke ``callback`` when fired."""
        return self.arm(FaultRule(point, callback=callback, times=times))

    def disarm_all(self) -> None:
        """Remove every rule; :func:`fire` becomes a no-op again."""
        with self._lock:
            self._rules.clear()
            self.active = False

    # -- firing --------------------------------------------------------------

    def fire(self, point: str) -> None:
        """Run the first live rule matching ``point``, if any.

        Raises the rule's error, sleeps its stall, or runs its
        callback. Spent rules are pruned; when the last rule goes, the
        fast-path gate closes.
        """
        with self._lock:
            rule = None
            for candidate in self._rules:
                if candidate.point == point and not candidate.spent():
                    rule = candidate
                    break
            if rule is None:
                return
            if rule.remaining is not None:
                rule.remaining -= 1
            rule.fired += 1
            self.fired_total += 1
            self.fired_by_point[point] = (
                self.fired_by_point.get(point, 0) + 1
            )
            self._rules = [r for r in self._rules if not r.spent()]
            if not self._rules:
                self.active = False
        if rule.stall_seconds:
            time.sleep(rule.stall_seconds)
        if rule.callback is not None:
            rule.callback()
        if rule.error is not None:
            raise rule.error


#: The process-wide injector every fault point fires against.
injector = FaultInjector()


def fire(point: str) -> None:
    """Fire one fault point (no-op unless a matching rule is armed)."""
    if injector.active:
        injector.fire(point)


@contextmanager
def injected_faults():
    """Scope for a chaos test: disarms every rule on exit, always."""
    try:
        yield injector
    finally:
        injector.disarm_all()
