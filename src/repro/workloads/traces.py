"""Trace representation: ordered streams of query and update events.

A :class:`Trace` is what the simulation harness replays against a
guarded database. Events reference items by 1-based *item id* (the
dataset generators map item ids to primary keys when loading tables).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.errors import ConfigError


@dataclass(frozen=True)
class TraceEvent:
    """One event in a trace.

    Attributes:
        kind: "query", "update", or "mark" (a period boundary, e.g. a
            week edge in the box-office trace — replay hooks can apply
            explicit decay there).
        item: 1-based item id ("mark" events use 0).
        think_time: simulated seconds elapsing *before* this event.
        label: free-form annotation (e.g. week number).
    """

    kind: str
    item: int
    think_time: float = 0.0
    label: Optional[str] = None


@dataclass
class Trace:
    """An ordered event stream plus its population size."""

    population: int
    events: List[TraceEvent] = field(default_factory=list)
    name: str = "trace"

    def __post_init__(self) -> None:
        if self.population < 1:
            raise ConfigError(
                f"population must be >= 1, got {self.population}"
            )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def add_query(
        self, item: int, think_time: float = 0.0, label: Optional[str] = None
    ) -> None:
        """Append a query event for ``item``."""
        self._check_item(item)
        self.events.append(TraceEvent("query", item, think_time, label))

    def add_update(
        self, item: int, think_time: float = 0.0, label: Optional[str] = None
    ) -> None:
        """Append an update event for ``item``."""
        self._check_item(item)
        self.events.append(TraceEvent("update", item, think_time, label))

    def add_mark(self, label: str, think_time: float = 0.0) -> None:
        """Append a period-boundary marker."""
        self.events.append(TraceEvent("mark", 0, think_time, label))

    def _check_item(self, item: int) -> None:
        if not 1 <= item <= self.population:
            raise ConfigError(
                f"item {item} outside population [1, {self.population}]"
            )

    # -- analysis helpers ---------------------------------------------------

    def query_count(self) -> int:
        """Number of query events."""
        return sum(1 for event in self.events if event.kind == "query")

    def update_count(self) -> int:
        """Number of update events."""
        return sum(1 for event in self.events if event.kind == "update")

    def item_frequencies(self, kind: str = "query") -> Counter:
        """Counter of item → number of events of ``kind``."""
        return Counter(
            event.item for event in self.events if event.kind == kind
        )

    def top_items(self, k: int = 10, kind: str = "query") -> List[Tuple[int, int]]:
        """The ``k`` most frequent items as (item, count), most first.

        This is exactly what the paper's Figures 1-3 plot.
        """
        return self.item_frequencies(kind).most_common(k)

    def distinct_items(self, kind: str = "query") -> int:
        """Number of distinct items with at least one ``kind`` event."""
        return len(self.item_frequencies(kind))


def interleave(traces: Iterable[Trace], name: str = "interleaved") -> Trace:
    """Round-robin merge several traces into one.

    Populations must match. Useful for mixing a query trace with an
    update trace in the §4.3 experiments.
    """
    traces = list(traces)
    if not traces:
        raise ConfigError("need at least one trace to interleave")
    population = traces[0].population
    for trace in traces[1:]:
        if trace.population != population:
            raise ConfigError("interleaved traces must share a population")
    merged = Trace(population=population, name=name)
    iterators = [iter(trace.events) for trace in traces]
    exhausted = [False] * len(iterators)
    while not all(exhausted):
        for position, iterator in enumerate(iterators):
            if exhausted[position]:
                continue
            try:
                merged.events.append(next(iterator))
            except StopIteration:
                exhausted[position] = True
    return merged
