"""Synthetic stand-in for the Calgary web-server trace (§4.1).

The paper replays a year-long web-client trace (Arlitt & Williamson,
SIGMETRICS 1996): 725,091 requests over 12,179 objects with a static
power-law popularity distribution of α ≈ 1.5. The original trace is not
redistributable, so this module generates a seeded synthetic trace with
the same request count, object count, and skew. §4.1's results depend
only on those properties (the distribution is static, so the decay sweep
of Table 3 exercises the estimator, not trace micro-structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.errors import ConfigError
from ..engine.database import Database
from .generators import load_items_table
from .traces import Trace
from .zipf import ZipfSampler

#: The published trace parameters.
CALGARY_OBJECTS = 12_179
CALGARY_REQUESTS = 725_091
CALGARY_ALPHA = 1.5


@dataclass
class CalgaryDataset:
    """A generated Calgary-like workload.

    Attributes:
        trace: the request trace (query events only, zero think time —
            the paper replays requests back-to-back).
        rank_by_item: item id → popularity rank (1 = most popular).
        item_by_rank: inverse mapping.
        alpha: the skew the trace was generated with.
    """

    trace: Trace
    rank_by_item: Dict[int, int]
    item_by_rank: Dict[int, int]
    alpha: float

    @property
    def population(self) -> int:
        """Number of objects in the dataset."""
        return self.trace.population

    def load_into(self, database: Database, table: str = "web_objects") -> None:
        """Create and fill the table of web objects in ``database``."""
        load_items_table(database, self.population, table=table,
                         payload_prefix="page")


def generate_calgary(
    num_objects: int = CALGARY_OBJECTS,
    num_requests: int = CALGARY_REQUESTS,
    alpha: float = CALGARY_ALPHA,
    seed: Optional[int] = 2004,
) -> CalgaryDataset:
    """Generate a Calgary-like trace.

    Defaults reproduce the published trace's scale exactly; tests pass
    smaller values. Popularity ranks are scattered over item ids with a
    seeded permutation.
    """
    if num_objects < 1:
        raise ConfigError(f"num_objects must be >= 1, got {num_objects}")
    if num_requests < 0:
        raise ConfigError(f"num_requests must be >= 0, got {num_requests}")
    sampler = ZipfSampler(num_objects, alpha, seed)
    ranks = sampler.sample_many(num_requests)
    rng = np.random.default_rng(None if seed is None else seed + 7919)
    permutation = rng.permutation(num_objects) + 1  # rank -> item id
    items = permutation[ranks - 1]
    trace = Trace(population=num_objects, name="calgary-synthetic")
    for item in items:
        trace.add_query(int(item))
    rank_by_item = {
        int(permutation[rank - 1]): rank for rank in range(1, num_objects + 1)
    }
    item_by_rank = {rank: item for item, rank in rank_by_item.items()}
    return CalgaryDataset(
        trace=trace,
        rank_by_item=rank_by_item,
        item_by_rank=item_by_rank,
        alpha=alpha,
    )
