"""Workload substrates: samplers, traces, and dataset generators.

Includes seeded synthetic stand-ins for the paper's two real datasets —
the Calgary web trace (§4.1) and 2002 box-office sales (§4.2) — plus
generic Zipf/uniform query and update generators for the synthetic
experiments (Table 1, Figures 4-6).
"""

from .boxoffice import (
    BOXOFFICE_FILMS,
    BOXOFFICE_WEEKS,
    DOLLARS_PER_REQUEST,
    BoxOfficeDataset,
    generate_boxoffice,
)
from .calgary import (
    CALGARY_ALPHA,
    CALGARY_OBJECTS,
    CALGARY_REQUESTS,
    CalgaryDataset,
    generate_calgary,
)
from .generators import (
    load_items_table,
    make_uniform_query_trace,
    make_zipf_query_trace,
    make_zipf_update_trace,
    select_sql,
    update_sql,
)
from .traces import Trace, TraceEvent, interleave
from .updates import UpdateProcess
from .zipf import UniformSampler, WeightedSampler, ZipfSampler

__all__ = [
    "BOXOFFICE_FILMS",
    "BOXOFFICE_WEEKS",
    "BoxOfficeDataset",
    "CALGARY_ALPHA",
    "CALGARY_OBJECTS",
    "CALGARY_REQUESTS",
    "CalgaryDataset",
    "DOLLARS_PER_REQUEST",
    "Trace",
    "TraceEvent",
    "UniformSampler",
    "UpdateProcess",
    "WeightedSampler",
    "ZipfSampler",
    "generate_boxoffice",
    "generate_calgary",
    "interleave",
    "load_items_table",
    "make_uniform_query_trace",
    "make_zipf_query_trace",
    "make_zipf_update_trace",
    "select_sql",
    "update_sql",
]
