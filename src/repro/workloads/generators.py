"""Generic workload generation and dataset loading helpers."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.errors import ConfigError
from ..engine.database import Database
from .traces import Trace
from .zipf import UniformSampler, WeightedSampler, ZipfSampler


def make_zipf_query_trace(
    population: int,
    num_queries: int,
    alpha: float,
    seed: Optional[int] = None,
    think_time: float = 0.0,
    permute_ranks: bool = True,
    name: str = "zipf-queries",
) -> Trace:
    """A query trace whose item popularity follows Zipf(α).

    With ``permute_ranks`` (default) the popularity ranking is scattered
    over item ids by a seeded permutation, so item id carries no
    popularity information — as in a real table, where hot rows are not
    the first rows.
    """
    if num_queries < 0:
        raise ConfigError(f"num_queries must be >= 0, got {num_queries}")
    sampler = ZipfSampler(population, alpha, seed)
    ranks = sampler.sample_many(num_queries)
    items = _map_ranks_to_items(ranks, population, seed, permute_ranks)
    trace = Trace(population=population, name=name)
    for item in items:
        trace.add_query(int(item), think_time=think_time)
    return trace


def make_uniform_query_trace(
    population: int,
    num_queries: int,
    seed: Optional[int] = None,
    think_time: float = 0.0,
    name: str = "uniform-queries",
) -> Trace:
    """A query trace with uniform item popularity (the §3 scenario)."""
    if num_queries < 0:
        raise ConfigError(f"num_queries must be >= 0, got {num_queries}")
    sampler = UniformSampler(population, seed)
    items = sampler.sample_many(num_queries)
    trace = Trace(population=population, name=name)
    for item in items:
        trace.add_query(int(item), think_time=think_time)
    return trace


def make_zipf_update_trace(
    population: int,
    num_updates: int,
    alpha: float,
    seed: Optional[int] = None,
    total_rate: float = 1.0,
    permute_ranks: bool = True,
    name: str = "zipf-updates",
) -> Trace:
    """An update trace with Zipf(α)-skewed update frequency.

    Inter-arrival times are exponential with aggregate rate
    ``total_rate`` updates/second, so replaying the trace on a virtual
    clock produces per-item update rates ``r_i ≈ total_rate · p_i``.
    """
    if num_updates < 0:
        raise ConfigError(f"num_updates must be >= 0, got {num_updates}")
    if total_rate <= 0:
        raise ConfigError(f"total_rate must be positive, got {total_rate}")
    sampler = ZipfSampler(population, alpha, seed)
    ranks = sampler.sample_many(num_updates)
    items = _map_ranks_to_items(ranks, population, seed, permute_ranks)
    rng = np.random.default_rng(None if seed is None else seed + 1)
    gaps = rng.exponential(1.0 / total_rate, size=num_updates)
    trace = Trace(population=population, name=name)
    for item, gap in zip(items, gaps):
        trace.add_update(int(item), think_time=float(gap))
    return trace


def _map_ranks_to_items(
    ranks: np.ndarray, population: int, seed: Optional[int], permute: bool
) -> np.ndarray:
    if not permute:
        return ranks
    rng = np.random.default_rng(None if seed is None else seed + 7919)
    permutation = rng.permutation(population) + 1  # rank -> item id
    return permutation[ranks - 1]


def load_items_table(
    database: Database,
    population: int,
    table: str = "items",
    payload_prefix: str = "item",
) -> Dict[int, int]:
    """Create and fill a simple items table; returns item id → rowid.

    The table schema is ``(id INTEGER PRIMARY KEY, payload TEXT,
    version INTEGER)`` — the minimal relation the paper's selection-query
    model needs. Item ids are 1-based and equal to primary keys.
    """
    database.execute(
        f"CREATE TABLE {table} ("
        "id INTEGER PRIMARY KEY, payload TEXT, version INTEGER)"
    )
    rows = [
        (item, f"{payload_prefix}-{item}", 0)
        for item in range(1, population + 1)
    ]
    rowids = database.insert_rows(table, rows)
    return {item: rowid for item, rowid in zip(range(1, population + 1), rowids)}


def select_sql(table: str, item: int) -> str:
    """The single-tuple selection query for an item (the paper's model)."""
    return f"SELECT * FROM {table} WHERE id = {int(item)}"


def update_sql(table: str, item: int, version: int) -> str:
    """A value-changing update for an item."""
    return f"UPDATE {table} SET version = {int(version)} WHERE id = {int(item)}"
