"""Seeded samplers for the workload generators.

The paper's analysis assumes Zipf-distributed access; every synthetic
workload in this reproduction is driven by the samplers here. All
sampling is seeded and deterministic so experiments are repeatable.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.errors import ConfigError


class ZipfSampler:
    """Draws ranks 1..n with probability proportional to ``rank**-alpha``.

    Uses inverse-CDF sampling over the exact finite Zipf distribution
    (numpy's ``zipf`` samples the unbounded distribution, which is wrong
    for a fixed-size table).

    >>> sampler = ZipfSampler(100, alpha=1.0, seed=7)
    >>> 1 <= sampler.sample() <= 100
    True
    """

    def __init__(self, n: int, alpha: float, seed: Optional[int] = None):
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        if alpha < 0:
            raise ConfigError(f"alpha must be >= 0, got {alpha}")
        self.n = n
        self.alpha = float(alpha)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks ** (-self.alpha)
        self._cumulative = np.cumsum(weights / weights.sum())
        self._rng = np.random.default_rng(seed)

    def sample(self) -> int:
        """Draw a single rank (1-based)."""
        return int(self.sample_many(1)[0])

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks as an int64 array."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        uniforms = self._rng.random(count)
        return np.searchsorted(self._cumulative, uniforms).astype(np.int64) + 1

    def probability(self, rank: int) -> float:
        """Exact probability of ``rank`` under this distribution."""
        if not 1 <= rank <= self.n:
            raise ConfigError(f"rank must be in [1, {self.n}], got {rank}")
        if rank == 1:
            return float(self._cumulative[0])
        return float(self._cumulative[rank - 1] - self._cumulative[rank - 2])


class UniformSampler:
    """Draws ranks 1..n uniformly — the access pattern §3 is built for."""

    def __init__(self, n: int, seed: Optional[int] = None):
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        self.n = n
        self._rng = np.random.default_rng(seed)

    def sample(self) -> int:
        """Draw a single rank (1-based)."""
        return int(self._rng.integers(1, self.n + 1))

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks as an int64 array."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        return self._rng.integers(1, self.n + 1, size=count, dtype=np.int64)


class WeightedSampler:
    """Draws from arbitrary non-negative weights (1-based ranks).

    Used by the box-office generator, whose weekly request mix follows
    observed sales rather than an analytic form.
    """

    def __init__(self, weights: Sequence[float], seed: Optional[int] = None):
        array = np.asarray(list(weights), dtype=np.float64)
        if array.ndim != 1 or array.size == 0:
            raise ConfigError("weights must be a non-empty 1-D sequence")
        if (array < 0).any():
            raise ConfigError("weights must be non-negative")
        total = array.sum()
        if total <= 0:
            raise ConfigError("at least one weight must be positive")
        self.n = array.size
        self._cumulative = np.cumsum(array / total)
        self._rng = np.random.default_rng(seed)

    def sample(self) -> int:
        """Draw a single index (1-based)."""
        return int(self.sample_many(1)[0])

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` indices as an int64 array."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        uniforms = self._rng.random(count)
        return np.searchsorted(self._cumulative, uniforms).astype(np.int64) + 1
