"""Synthetic stand-in for the 2002 box-office workload (§4.2).

The paper generates requests to a movie database in proportion to weekly
box-office sales for the 634 films released in 2002 (one request per
$100,000 of weekly gross), with a 10-second delay cap and decay applied
at weekly boundaries. The real Variety sales data is not available, so
this module synthesises a year of weekly grosses with the properties
§4.2 exploits:

* **mild annual skew** — the year's top-10 films differ by only ~2.5×
  (paper Figure 2), modelled with a flat power law at the head;
* **sharp weekly skew** — within any single week the top film dominates
  (paper Figure 3), which falls out of the release/decay dynamics;
* **rapidly shifting popularity** — films open big and decay
  geometrically week over week, so each week's ranking is new.

Film strengths follow a piecewise power law (flat head, steep tail) so
both the head shape of Figure 2 and a realistic ~$10B annual total are
matched; each film then decays geometrically from its release week.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import ConfigError
from ..engine.database import Database
from .traces import Trace

#: Published workload parameters.
BOXOFFICE_FILMS = 634
BOXOFFICE_WEEKS = 52
DOLLARS_PER_REQUEST = 100_000.0

#: Shape constants for the synthetic sales model (see module docstring).
_TOP_ANNUAL_GROSS = 400e6
_HEAD_ALPHA = 0.45  # skew over ranks 1..HEAD_RANKS (Figure 2's shape)
_TAIL_ALPHA = 2.0  # steep tail of flops beyond the head
_HEAD_RANKS = 30
_MIN_WEEKLY_GROSS = 50_000.0


@dataclass
class BoxOfficeDataset:
    """A generated year of box-office sales and the request trace.

    Attributes:
        trace: query events grouped by week, with a "mark" event at
            every week boundary (replay applies decay there, as §4.2
            applies decay factors at weekly boundaries).
        weekly_gross: array of shape (num_films + 1, weeks + 1); entry
            [film, week] is that film's gross in that week (1-based
            indexes; row/column 0 unused).
        release_week: film id → release week.
    """

    trace: Trace
    weekly_gross: np.ndarray
    release_week: Dict[int, int]

    @property
    def num_films(self) -> int:
        """Number of films in the dataset."""
        return self.weekly_gross.shape[0] - 1

    @property
    def num_weeks(self) -> int:
        """Number of weeks simulated."""
        return self.weekly_gross.shape[1] - 1

    def annual_sales(self) -> List[Tuple[int, float]]:
        """(film, annual gross) pairs, highest-grossing first (Figure 2)."""
        totals = self.weekly_gross.sum(axis=1)
        films = np.argsort(-totals[1:]) + 1
        return [(int(film), float(totals[film])) for film in films]

    def weekly_sales(self, week: int) -> List[Tuple[int, float]]:
        """(film, gross) for one week, highest first (Figure 3 is week 1)."""
        if not 1 <= week <= self.num_weeks:
            raise ConfigError(f"week must be in [1, {self.num_weeks}]")
        column = self.weekly_gross[:, week]
        films = np.argsort(-column[1:]) + 1
        return [
            (int(film), float(column[film]))
            for film in films
            if column[film] > 0
        ]

    def top_annual(self, k: int = 10) -> List[Tuple[int, float]]:
        """Top-``k`` films by annual gross."""
        return self.annual_sales()[:k]

    def top_weekly(self, week: int, k: int = 10) -> List[Tuple[int, float]]:
        """Top-``k`` films for one week."""
        return self.weekly_sales(week)[:k]

    def load_into(self, database: Database, table: str = "films") -> None:
        """Create and fill the films table in ``database``."""
        database.execute(
            f"CREATE TABLE {table} (id INTEGER PRIMARY KEY, title TEXT, "
            "release_week INTEGER, version INTEGER)"
        )
        rows = [
            (film, f"film-{film}", self.release_week[film], 0)
            for film in range(1, self.num_films + 1)
        ]
        database.insert_rows(table, rows)


def _film_strengths(num_films: int) -> np.ndarray:
    """Annual-gross targets by strength rank (piecewise power law)."""
    ranks = np.arange(1, num_films + 1, dtype=np.float64)
    head = _TOP_ANNUAL_GROSS * ranks ** (-_HEAD_ALPHA)
    knee = _TOP_ANNUAL_GROSS * _HEAD_RANKS ** (-_HEAD_ALPHA)
    tail = knee * (ranks / _HEAD_RANKS) ** (-_TAIL_ALPHA)
    return np.where(ranks <= _HEAD_RANKS, head, tail)


def generate_boxoffice(
    num_films: int = BOXOFFICE_FILMS,
    num_weeks: int = BOXOFFICE_WEEKS,
    seed: Optional[int] = 2002,
    dollars_per_request: float = DOLLARS_PER_REQUEST,
) -> BoxOfficeDataset:
    """Generate a year of synthetic box-office sales and its trace.

    Requests are generated deterministically in proportion to weekly
    gross (``round(gross / dollars_per_request)`` per film per week) and
    shuffled within each week, exactly mirroring the paper's
    one-request-per-$100k construction.
    """
    if num_films < 1:
        raise ConfigError(f"num_films must be >= 1, got {num_films}")
    if num_weeks < 1:
        raise ConfigError(f"num_weeks must be >= 1, got {num_weeks}")
    if dollars_per_request <= 0:
        raise ConfigError(
            f"dollars_per_request must be positive, got {dollars_per_request}"
        )
    rng = np.random.default_rng(seed)

    strengths = _film_strengths(num_films)
    # Scatter strength ranks over film ids.
    film_of_rank = rng.permutation(num_films) + 1
    # Per-film geometric weekly decay ("legs").
    legs = rng.uniform(0.5, 0.78, size=num_films + 1)
    # Release weeks: uniform over the year.
    releases = rng.integers(1, num_weeks + 1, size=num_films + 1)

    weekly_gross = np.zeros((num_films + 1, num_weeks + 1), dtype=np.float64)
    release_week: Dict[int, int] = {}
    for rank in range(1, num_films + 1):
        film = int(film_of_rank[rank - 1])
        release = int(releases[film])
        release_week[film] = release
        decay = float(legs[film])
        # Opening gross such that the (untruncated, infinite-horizon)
        # annual total matches the strength target.
        opening = strengths[rank - 1] * (1.0 - decay)
        week = release
        gross = opening
        while week <= num_weeks and gross >= _MIN_WEEKLY_GROSS:
            weekly_gross[film, week] = gross
            gross *= decay
            week += 1

    trace = Trace(population=num_films, name="boxoffice-synthetic")
    for week in range(1, num_weeks + 1):
        trace.add_mark(label=f"week-{week}")
        requests: List[int] = []
        for film in range(1, num_films + 1):
            count = int(round(weekly_gross[film, week] / dollars_per_request))
            requests.extend([film] * count)
        order = rng.permutation(len(requests))
        for position in order:
            trace.add_query(requests[position], label=f"week-{week}")
    return BoxOfficeDataset(
        trace=trace, weekly_gross=weekly_gross, release_week=release_week
    )
