"""Update processes for the data-change experiments (§3, §4.3).

The §4.3 simulation poses uniform queries against a 100,000-tuple
relation while updates arrive with Zipf-skewed per-tuple rates. This
module models that update side: a vector of per-item Poisson update
rates, plus helpers to sample update events over a window and to compute
staleness probabilities exactly — so week-long extractions can be
evaluated without materialising millions of update events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigError


@dataclass
class UpdateProcess:
    """Independent per-item Poisson update processes.

    Attributes:
        rates: array of shape (n + 1,); ``rates[item]`` is the update
            rate of 1-based ``item`` in updates/second (index 0 unused).
    """

    rates: np.ndarray

    def __post_init__(self) -> None:
        self.rates = np.asarray(self.rates, dtype=np.float64)
        if self.rates.ndim != 1 or self.rates.size < 2:
            raise ConfigError("rates must be a 1-D array with index 0 unused")
        if (self.rates[1:] < 0).any():
            raise ConfigError("rates must be non-negative")

    # -- constructors ------------------------------------------------------

    @classmethod
    def zipf(cls, n: int, alpha: float, rmax: float) -> "UpdateProcess":
        """Rates ``r_i = rmax · i^-α`` with rank i equal to item id.

        Rank 1 (item 1) is the most frequently updated tuple, matching
        the paper's §3 convention.
        """
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        if rmax <= 0:
            raise ConfigError(f"rmax must be positive, got {rmax}")
        rates = np.zeros(n + 1, dtype=np.float64)
        ranks = np.arange(1, n + 1, dtype=np.float64)
        rates[1:] = rmax * ranks ** (-float(alpha))
        return cls(rates=rates)

    @classmethod
    def uniform(cls, n: int, rate: float) -> "UpdateProcess":
        """Every item updated at the same ``rate`` (no skew — the case
        where neither of the paper's schemes can help)."""
        if n < 1:
            raise ConfigError(f"n must be >= 1, got {n}")
        if rate < 0:
            raise ConfigError(f"rate must be >= 0, got {rate}")
        rates = np.full(n + 1, float(rate), dtype=np.float64)
        rates[0] = 0.0
        return cls(rates=rates)

    # -- properties ---------------------------------------------------------

    @property
    def population(self) -> int:
        """Number of items."""
        return self.rates.size - 1

    @property
    def total_rate(self) -> float:
        """Aggregate updates/second across all items."""
        return float(self.rates[1:].sum())

    @property
    def max_rate(self) -> float:
        """The fastest per-item rate (rmax)."""
        return float(self.rates[1:].max())

    def rate(self, item: int) -> float:
        """Update rate of one item."""
        if not 1 <= item <= self.population:
            raise ConfigError(f"item {item} out of range")
        return float(self.rates[item])

    # -- sampling -------------------------------------------------------------

    def sample_counts(
        self, window: float, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Per-item Poisson update counts over ``window`` seconds.

        Returns an array of shape (n + 1,) aligned with ``rates``.
        """
        if window < 0:
            raise ConfigError(f"window must be >= 0, got {window}")
        rng = rng if rng is not None else np.random.default_rng()
        counts = np.zeros_like(self.rates, dtype=np.int64)
        counts[1:] = rng.poisson(self.rates[1:] * window)
        return counts

    def sample_events(
        self,
        start: float,
        end: float,
        rng: Optional[np.random.Generator] = None,
    ) -> List[Tuple[float, int]]:
        """Materialise (time, item) update events in [start, end), sorted.

        Suitable for small windows / tests; week-scale windows should
        use the probabilistic staleness helpers instead.
        """
        if end < start:
            raise ConfigError("end must be >= start")
        rng = rng if rng is not None else np.random.default_rng()
        counts = self.sample_counts(end - start, rng)
        events: List[Tuple[float, int]] = []
        for item in range(1, self.population + 1):
            count = int(counts[item])
            if count == 0:
                continue
            times = rng.uniform(start, end, size=count)
            events.extend((float(t), item) for t in times)
        events.sort()
        return events

    # -- staleness mathematics -----------------------------------------------

    def stale_probability(self, item: int, window: float) -> float:
        """P(item updated at least once within ``window`` seconds)."""
        if window < 0:
            raise ConfigError(f"window must be >= 0, got {window}")
        return float(1.0 - np.exp(-self.rate(item) * window))

    def expected_stale_fraction(self, windows: Sequence[float]) -> float:
        """Expected stale fraction given each item's exposure window.

        ``windows[item - 1]`` is the time between the adversary's
        retrieval of ``item`` and the end of the extraction.
        """
        exposure = np.asarray(list(windows), dtype=np.float64)
        if exposure.size != self.population:
            raise ConfigError(
                f"need {self.population} windows, got {exposure.size}"
            )
        if (exposure < 0).any():
            raise ConfigError("windows must be non-negative")
        probabilities = 1.0 - np.exp(-self.rates[1:] * exposure)
        return float(probabilities.mean())

    def sample_stale_flags(
        self,
        windows: Sequence[float],
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Bernoulli staleness draw per item given exposure windows.

        Statistically equivalent to materialising every update event and
        checking which extracted tuples were overwritten — but O(n)
        regardless of how many updates the window implies.
        """
        exposure = np.asarray(list(windows), dtype=np.float64)
        if exposure.size != self.population:
            raise ConfigError(
                f"need {self.population} windows, got {exposure.size}"
            )
        rng = rng if rng is not None else np.random.default_rng()
        probabilities = 1.0 - np.exp(-self.rates[1:] * exposure)
        return rng.random(self.population) < probabilities
