"""repro — reproduction of "Using Delay to Defend Against Database
Extraction" (Jayapandian, Noble, Mickens, Jagadish; SDM@VLDB 2004).

Subpackages:

* :mod:`repro.engine` — a pure-Python relational database (the
  substrate the guard protects).
* :mod:`repro.core` — the paper's contribution: the delay guard,
  popularity/update-rate trackers, delay policies, analysis, and the
  §2.4 account-level defenses.
* :mod:`repro.workloads` — seeded synthetic workloads, including
  stand-ins for the Calgary web trace and 2002 box-office data.
* :mod:`repro.attacks` — extraction adversaries (sequential, parallel,
  storefront) and defense sizing.
* :mod:`repro.sim` — trace replay and metrics.
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro.engine import Database
    from repro.core import DelayGuard, GuardConfig

    db = Database()
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    db.execute("INSERT INTO t VALUES (1, 'hello')")
    guard = DelayGuard(db, config=GuardConfig(cap=10.0))
    result = guard.execute("SELECT * FROM t WHERE id = 1")
    print(result.rows, result.delay)
"""

from .core import DelayGuard, GuardConfig
from .engine import Database
from .service import DataProviderService

__version__ = "1.0.0"

__all__ = [
    "DataProviderService",
    "Database",
    "DelayGuard",
    "GuardConfig",
    "__version__",
]
