"""Simulation harness: trace replay, concurrent sessions, metrics."""

from .concurrent import (
    ConcurrentSimulation,
    SessionReport,
    SimStep,
    SimulationReport,
    extraction_script,
    trace_script,
)
from .experiment import GuardedFixture, ResultTable, build_guarded_items
from .metrics import DelayDistribution, format_ratio, format_seconds
from .simulator import ReplayReport, TraceReplayer

__all__ = [
    "ConcurrentSimulation",
    "DelayDistribution",
    "GuardedFixture",
    "ReplayReport",
    "ResultTable",
    "SessionReport",
    "SimStep",
    "SimulationReport",
    "TraceReplayer",
    "build_guarded_items",
    "extraction_script",
    "format_ratio",
    "format_seconds",
    "trace_script",
]
