"""Experiment scaffolding: build guarded databases and print result tables.

The benchmark modules share this machinery so each bench reads like the
paper's experiment description: build the workload, replay, extract,
report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.clock import VirtualClock
from ..core.config import GuardConfig
from ..core.guard import DelayGuard
from ..engine.database import Database
from ..workloads.generators import load_items_table


@dataclass
class GuardedFixture:
    """A database + guard + clock bundle ready for an experiment."""

    database: Database
    guard: DelayGuard
    clock: VirtualClock
    table: str


def build_guarded_items(
    population: int,
    config: Optional[GuardConfig] = None,
    table: str = "items",
) -> GuardedFixture:
    """Create a fresh items table of ``population`` rows behind a guard."""
    database = Database()
    load_items_table(database, population, table=table)
    clock = VirtualClock()
    guard = DelayGuard(database, config=config, clock=clock)
    return GuardedFixture(
        database=database, guard=guard, clock=clock, table=table
    )


@dataclass
class ResultTable:
    """A printable experiment table, in the style of the paper's tables.

    >>> table = ResultTable(
    ...     title="Demo", columns=("x", "y"))
    >>> table.add_row("1", "2")
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    Demo
    x | y
    --+--
    1 | 2
    """

    title: str
    columns: Sequence[str]
    rows: List[Sequence[str]] = field(default_factory=list)
    note: Optional[str] = None

    def add_row(self, *cells: str) -> None:
        """Append one row; cell count must match the header."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        """Render the table as aligned monospace text."""
        widths = [len(header) for header in self.columns]
        for row in self.rows:
            for position, cell in enumerate(row):
                widths[position] = max(widths[position], len(cell))
        lines = [self.title]
        header = " | ".join(
            name.ljust(widths[position])
            for position, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                " | ".join(
                    cell.ljust(widths[position])
                    for position, cell in enumerate(row)
                )
            )
        if self.note:
            lines.append(f"  note: {self.note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table."""
        print()
        print(self.render())

    def to_csv(self, path) -> None:
        """Write the table (header + rows) as CSV for external plotting."""
        import csv

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.columns)
            for row in self.rows:
                writer.writerow(row)
