"""Delay-distribution metrics and duration formatting.

The paper argues (§2.1) that quantile metrics — the median in particular
— represent user experience under skew better than means, which outliers
dominate. :class:`DelayDistribution` therefore leads with quantiles.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..core.errors import ConfigError


@dataclass
class DelayDistribution:
    """An accumulating distribution of observed delays (seconds)."""

    values: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one delay."""
        if value < 0:
            raise ConfigError(f"delays are non-negative, got {value}")
        self.values.append(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record several delays."""
        for value in values:
            self.observe(value)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def count(self) -> int:
        """Number of observations."""
        return len(self.values)

    @property
    def total(self) -> float:
        """Sum of all delays."""
        return sum(self.values)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0 when empty)."""
        if not self.values:
            return 0.0
        return self.total / len(self.values)

    @property
    def median(self) -> float:
        """Median delay — the paper's headline user metric."""
        if not self.values:
            return 0.0
        return statistics.median(self.values)

    @property
    def stdev(self) -> float:
        """Sample standard deviation (0 with < 2 observations)."""
        if len(self.values) < 2:
            return 0.0
        return statistics.stdev(self.values)

    @property
    def maximum(self) -> float:
        """Largest observed delay."""
        return max(self.values) if self.values else 0.0

    def quantile(self, q: float) -> float:
        """Delay at quantile ``q`` in [0, 1]."""
        if not 0 <= q <= 1:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        position = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[position]


#: (threshold seconds, divisor, unit) from largest to smallest. Hours
#: run up to a week (the paper's tables report 282.70 h, not days).
_UNITS = [
    (7 * 86400.0, 7 * 86400.0, "weeks"),
    (3600.0, 3600.0, "h"),
    (60.0, 60.0, "min"),
    (1.0, 1.0, "s"),
    (1e-3, 1e-3, "ms"),
    (0.0, 1e-6, "µs"),
]


def format_seconds(seconds: float, digits: int = 2) -> str:
    """Render a duration with a sensible unit.

    >>> format_seconds(0.0154)
    '15.40 ms'
    >>> format_seconds(108612)
    '30.17 h'
    """
    if seconds < 0:
        raise ConfigError(f"durations are non-negative, got {seconds}")
    if seconds == 0:
        return "0 s"
    if math.isinf(seconds):
        return "inf"
    for threshold, divisor, unit in _UNITS:
        if seconds >= threshold:
            return f"{seconds / divisor:.{digits}f} {unit}"
    return f"{seconds:.{digits}g} s"  # pragma: no cover


def format_ratio(value: float) -> str:
    """Render a dimensionless ratio compactly (scientific when large)."""
    if value == 0:
        return "0"
    if value >= 1e4 or value < 1e-2:
        return f"{value:.2e}"
    return f"{value:.2f}"
