"""Concurrent multi-session simulation.

The guard charges delay per *query stream*; §2.4's parallel attack works
precisely because concurrent sessions each serve their own delays. This
module runs many sessions against one guard on one virtual clock,
event-driven: each session's next query is scheduled at the moment its
previous delay (plus think time) elapses, so sessions genuinely overlap
in simulated time instead of serialising on the shared clock.

Every statement runs the guard's *real* staged pipeline (admit → parse
→ authorize → execute → account → price → record) via
``guard.execute(..., sleep=False)`` — only the final sleep stage is
replaced by event scheduling, because with one shared virtual clock an
inline ``clock.sleep`` would charge every session's delay to the global
timeline (see the charged-vs-makespan note on
:class:`~repro.core.clock.VirtualClock`). The simulator instead resumes
each session ``delay`` seconds later, so overlap is modelled exactly:
:attr:`SimulationReport.makespan` is the wall-style completion time
while :attr:`SimulationReport.total_charged_delay` is the per-stream
cost sum the paper's formulas reason about.

Sessions are scripts — iterables of :class:`SimStep` — and helpers build
the common ones (trace replays, key-space extractions).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.clock import VirtualClock
from ..core.errors import AccessDenied, ConfigError
from ..core.guard import DelayGuard
from ..workloads.generators import select_sql
from ..workloads.traces import Trace
from .metrics import DelayDistribution


@dataclass(frozen=True)
class SimStep:
    """One step of a session script.

    Attributes:
        sql: the statement to issue.
        think_time: simulated seconds the session idles *before*
            issuing the statement.
    """

    sql: str
    think_time: float = 0.0


def extraction_script(
    table: str, items: Iterable[int], think_time: float = 0.0
) -> Iterator[SimStep]:
    """A key-space walk: one single-tuple SELECT per item."""
    for item in items:
        yield SimStep(select_sql(table, item), think_time)


def trace_script(trace: Trace, table: str) -> Iterator[SimStep]:
    """Replay a query trace's events as a session script."""
    for event in trace:
        if event.kind == "query":
            yield SimStep(select_sql(table, event.item), event.think_time)


@dataclass
class SessionReport:
    """Outcome of one session.

    Attributes:
        name: session name.
        queries: statements successfully executed.
        denied: refusals by account-level limits.
        retries: denials that were retried.
        total_delay: delay charged across the session's queries.
        delays: per-query delay distribution.
        started_at / finished_at: simulated session lifetime.
    """

    name: str
    queries: int = 0
    denied: int = 0
    retries: int = 0
    total_delay: float = 0.0
    delays: DelayDistribution = field(default_factory=DelayDistribution)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        """Simulated seconds from session start to completion."""
        return self.finished_at - self.started_at


@dataclass
class SimulationReport:
    """Outcome of a whole simulation run."""

    sessions: Dict[str, SessionReport] = field(default_factory=dict)
    finished_at: float = 0.0

    def session(self, name: str) -> SessionReport:
        """Look up one session's report."""
        return self.sessions[name]

    @property
    def makespan(self) -> float:
        """Latest session completion time."""
        return max(
            (report.finished_at for report in self.sessions.values()),
            default=0.0,
        )

    @property
    def total_charged_delay(self) -> float:
        """Sum of delay charged across all sessions (per-stream cost).

        With k overlapping sessions this exceeds :attr:`makespan` —
        parallel streams each pay their own delay but wait them out
        simultaneously. The ratio ``total_charged_delay / makespan`` is
        the parallel speedup a §2.4 adversary extracts, which is what
        the parallel-attack ablation plots.
        """
        return sum(
            report.total_delay for report in self.sessions.values()
        )


class _Session:
    def __init__(
        self,
        name: str,
        script: Iterator[SimStep],
        identity: Optional[str],
        record: bool,
        max_retries: int,
    ):
        self.name = name
        self.script = script
        self.identity = identity
        self.record = record
        self.max_retries = max_retries
        self.pending: Optional[SimStep] = None
        self.retries_left = max_retries
        self.report = SessionReport(name=name)


class ConcurrentSimulation:
    """Runs session scripts against one guard, event-driven.

    Args:
        guard: the defended database. Its clock must be a
            :class:`VirtualClock` (the simulation drives time).
        max_retries: how many times a session retries a denied query
            (waiting the advertised ``retry_after``) before dropping it.
    """

    def __init__(self, guard: DelayGuard, max_retries: int = 50):
        if not isinstance(guard.clock, VirtualClock):
            raise ConfigError(
                "ConcurrentSimulation requires a guard on a VirtualClock"
            )
        self.guard = guard
        self.clock: VirtualClock = guard.clock
        self.max_retries = max_retries
        self._sessions: List[Tuple[float, _Session]] = []

    def add_session(
        self,
        name: str,
        script: Iterable[SimStep],
        start: float = 0.0,
        identity: Optional[str] = None,
        record: bool = True,
    ) -> None:
        """Register a session starting at simulated time ``start``."""
        if start < 0:
            raise ConfigError(f"start must be >= 0, got {start}")
        if any(name == session.name for _, session in self._sessions):
            raise ConfigError(f"duplicate session name {name!r}")
        self._sessions.append(
            (
                start,
                _Session(
                    name, iter(script), identity, record, self.max_retries
                ),
            )
        )

    def run(self, until: Optional[float] = None) -> SimulationReport:
        """Run all sessions to completion (or simulated time ``until``).

        Events are processed in time order; ties break by insertion
        order, keeping runs deterministic.
        """
        counter = itertools.count()
        queue: List[Tuple[float, int, _Session]] = []
        for start, session in self._sessions:
            session.report.started_at = max(start, self.clock.now())
            heapq.heappush(
                queue, (session.report.started_at, next(counter), session)
            )

        while queue:
            ready_at, _tie, session = heapq.heappop(queue)
            if until is not None and ready_at > until:
                session.report.finished_at = self.clock.now()
                continue
            if ready_at > self.clock.now():
                self.clock.advance(ready_at - self.clock.now())

            step = session.pending
            if step is None:
                step = next(session.script, None)
                if step is None:
                    session.report.finished_at = self.clock.now()
                    continue
                session.retries_left = session.max_retries
                if step.think_time > 0:
                    session.pending = SimStep(step.sql, 0.0)
                    heapq.heappush(
                        queue,
                        (
                            self.clock.now() + step.think_time,
                            next(counter),
                            session,
                        ),
                    )
                    continue
            session.pending = None

            try:
                result = self.guard.execute(
                    step.sql,
                    identity=session.identity,
                    record=session.record,
                    sleep=False,
                )
            except AccessDenied as denied:
                session.report.denied += 1
                if session.retries_left > 0:
                    session.retries_left -= 1
                    session.report.retries += 1
                    session.pending = step
                    retry_at = self.clock.now() + max(
                        denied.retry_after, 1e-9
                    )
                    heapq.heappush(queue, (retry_at, next(counter), session))
                # else: drop the query and move on.
                else:
                    heapq.heappush(
                        queue, (self.clock.now(), next(counter), session)
                    )
                continue

            session.report.queries += 1
            session.report.total_delay += result.delay
            session.report.delays.observe(result.delay)
            heapq.heappush(
                queue,
                (self.clock.now() + result.delay, next(counter), session),
            )

        report = SimulationReport(finished_at=self.clock.now())
        for _start, session in self._sessions:
            if session.report.finished_at == 0.0:
                session.report.finished_at = self.clock.now()
            report.sessions[session.name] = session.report
        return report
