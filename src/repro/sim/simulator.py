"""Trace replay: drive a guarded database with a workload trace.

Two replay paths produce identical guard state:

* ``mode="sql"`` pushes every event through the guard's SQL front door —
  full fidelity, used by integration tests and small experiments.
* ``mode="fast"`` performs the same accounting (policy delay, count
  recording, clock advance, update metadata) directly against the
  guard's trackers, skipping SQL parsing and execution. This is what
  makes replaying the 725,091-request Calgary trace cheap enough to
  sweep six decay rates in a benchmark run. Equivalence of the two
  paths is asserted by tests (``tests/sim/test_replay_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.errors import AccessDenied, ConfigError
from ..core.guard import DelayGuard
from ..workloads.generators import select_sql, update_sql
from ..workloads.traces import Trace
from .metrics import DelayDistribution


@dataclass
class ReplayReport:
    """What happened during a trace replay.

    Attributes:
        queries / updates / marks: events replayed by kind.
        denied: queries refused by account limits.
        user_delays: distribution of per-query delays charged to the
            legitimate workload.
        started_at / finished_at: clock times bracketing the replay.
    """

    queries: int = 0
    updates: int = 0
    marks: int = 0
    denied: int = 0
    user_delays: DelayDistribution = field(default_factory=DelayDistribution)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def median_delay(self) -> float:
        """Median per-query delay over the replay."""
        return self.user_delays.median

    @property
    def duration(self) -> float:
        """Simulated seconds the replay spanned."""
        return self.finished_at - self.started_at


class TraceReplayer:
    """Replays a :class:`~repro.workloads.traces.Trace` against a guard.

    Args:
        guard: the guarded database (table must already be loaded).
        table: the relation the trace's items live in.
        mode: "fast" (default) or "sql" — see module docstring.
        boundary_decay: decay factor applied to the popularity tracker
            at every "mark" event (the §4.2 weekly-boundary decay).
            None leaves marks as pure annotations.
        identity: account to attribute queries to (sql mode only).
    """

    def __init__(
        self,
        guard: DelayGuard,
        table: str,
        mode: str = "fast",
        boundary_decay: Optional[float] = None,
        identity: Optional[str] = None,
    ):
        if mode not in ("fast", "sql"):
            raise ConfigError(f"mode must be 'fast' or 'sql', got {mode!r}")
        if boundary_decay is not None and boundary_decay < 1.0:
            raise ConfigError(
                f"boundary_decay must be >= 1.0, got {boundary_decay}"
            )
        self.guard = guard
        self.table = table
        self.mode = mode
        self.boundary_decay = boundary_decay
        self.identity = identity
        self._item_to_rowid: Optional[Dict[int, int]] = None
        self._versions: Dict[int, int] = {}

    # -- mapping -------------------------------------------------------------

    def _rowid_of(self, item: int) -> int:
        if self._item_to_rowid is None:
            heap = self.guard.database.catalog.table(self.table)
            position = heap.schema.position("id")
            self._item_to_rowid = {
                row[position]: rowid for rowid, row in heap.scan()
            }
        try:
            return self._item_to_rowid[item]
        except KeyError:
            raise ConfigError(
                f"trace item {item} not present in table {self.table!r}"
            ) from None

    # -- replay ----------------------------------------------------------------

    def replay(self, trace: Trace, limit: Optional[int] = None) -> ReplayReport:
        """Replay ``trace`` (optionally only its first ``limit`` events)."""
        report = ReplayReport(started_at=self.guard.clock.now())
        for position, event in enumerate(trace):
            if limit is not None and position >= limit:
                break
            if event.think_time:
                self.guard.clock.advance(event.think_time)
            if event.kind == "mark":
                report.marks += 1
                if self.boundary_decay is not None:
                    self.guard.popularity.apply_decay(self.boundary_decay)
                continue
            if event.kind == "query":
                self._replay_query(event.item, report)
            elif event.kind == "update":
                self._replay_update(event.item, report)
            else:  # pragma: no cover - Trace prevents this
                raise ConfigError(f"unknown event kind {event.kind!r}")
        report.finished_at = self.guard.clock.now()
        return report

    def _replay_query(self, item: int, report: ReplayReport) -> None:
        if self.mode == "sql":
            try:
                guarded = self.guard.execute(
                    select_sql(self.table, item), identity=self.identity
                )
            except AccessDenied:
                report.denied += 1
                return
            report.queries += 1
            report.user_delays.observe(guarded.delay)
            return
        # fast path: same accounting as DelayGuard.execute for a
        # single-tuple SELECT, without SQL.
        guard = self.guard
        key = (self.table.lower(), self._rowid_of(item))
        delay = guard.policy.delay_for(key)
        if guard.config.record_accesses:
            guard.popularity.record(key)
        guard.stats.note_select(delay, 1)
        guard.stats.note_query(delay, 0.0, 0.0)
        if delay > 0:
            guard.clock.sleep(delay)
        report.queries += 1
        report.user_delays.observe(delay)

    def _replay_update(self, item: int, report: ReplayReport) -> None:
        if self.mode == "sql":
            version = self._versions.get(item, 0) + 1
            self._versions[item] = version
            self.guard.execute(
                update_sql(self.table, item, version), identity=self.identity
            )
            report.updates += 1
            return
        guard = self.guard
        key = (self.table.lower(), self._rowid_of(item))
        now = guard.clock.now()
        if guard.config.record_updates:
            guard.update_rates.record_update(key)
            guard.last_update_times[key] = now
        guard.stats.note_query(0.0, 0.0, 0.0)
        report.updates += 1
