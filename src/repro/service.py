"""The complete data-provider service: database + guard + accounts.

:class:`DataProviderService` is the deployable composition of every
layer in this library — what the paper's information provider would
actually run. It owns the engine, the delay guard, and the account
manager; exposes user-facing ``register``/``query``; and gives the
operator an admin report plus full state save/load (schema, data, *and*
learned popularity, so delays survive restarts).

Thread-safe without external serialisation: queries run the guard's
staged pipeline, data access is arbitrated by the engine's read/write
lock (concurrent readers, exclusive writers), and ``save``/``load``
take the write side so a snapshot is a consistent point in time.
Callers — including :class:`~repro.server.DelayServer` — need no
statement-level lock of their own.

>>> from repro.core import AccountPolicy
>>> service = DataProviderService(account_policy=AccountPolicy())
>>> _ = service.database.execute(
...     "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
>>> _ = service.database.execute("INSERT INTO t VALUES (1, 'x')")
>>> _ = service.register("alice")
>>> service.query("alice", "SELECT * FROM t WHERE id = 1").rows
[(1, 'x')]
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .core.accounts import Account, AccountManager, AccountPolicy
from .core.clock import Clock, VirtualClock
from .core.config import GuardConfig
from .core.errors import ConfigError
from .core.guard import DelayGuard, GuardedResult
from .engine.database import Database
from .engine.persistence import (
    PersistenceError,
    dump_database,
    load_database,
)
from .obs import Observability
from .sim.metrics import format_seconds

#: Format identifier for full-service save files.
SERVICE_FORMAT = "repro-service-v1"


@dataclass
class ServiceReport:
    """Operator-facing snapshot of a running service.

    Attributes:
        users: registered identities.
        queries: queries served (including denials).
        denied: queries refused by account limits.
        median_user_delay: median per-SELECT delay so far.
        total_delay_charged: cumulative delay charged.
        extraction_cost: what a full extraction would cost right now.
        max_extraction_cost: the N·d_max bound (None without a cap).
        protection_ratio: extraction cost over median delay.
        top_tuples: the currently most popular (table, rowid, share).
    """

    users: int
    queries: int
    denied: int
    median_user_delay: float
    total_delay_charged: float
    extraction_cost: float
    max_extraction_cost: Optional[float]
    top_tuples: List[Tuple[str, int, float]] = field(default_factory=list)

    @property
    def protection_ratio(self) -> float:
        """Adversary cost relative to the median legitimate delay."""
        if self.median_user_delay <= 0:
            return float("inf")
        return self.extraction_cost / self.median_user_delay

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"users               : {self.users}",
            f"queries served      : {self.queries} "
            f"({self.denied} denied)",
            f"median user delay   : "
            f"{format_seconds(self.median_user_delay)}",
            f"delay charged total : "
            f"{format_seconds(self.total_delay_charged)}",
            f"extraction cost now : {format_seconds(self.extraction_cost)}",
        ]
        if self.max_extraction_cost is not None:
            fraction = (
                self.extraction_cost / self.max_extraction_cost
                if self.max_extraction_cost
                else 0.0
            )
            lines.append(
                f"vs N*d_max bound    : "
                f"{format_seconds(self.max_extraction_cost)} "
                f"({fraction:.0%} reached)"
            )
        for table, rowid, share in self.top_tuples:
            lines.append(
                f"  hot tuple {table}#{rowid}: {share:.1%} of requests"
            )
        return "\n".join(lines)


class DataProviderService:
    """Database + delay guard + accounts, wired together.

    Args:
        database: an existing engine (a fresh one by default).
        guard_config: delay policy configuration (§2 defaults).
        account_policy: §2.4 defenses; None disables account
            enforcement entirely (anonymous queries allowed).
        clock: time source (virtual by default; pass
            :class:`~repro.core.clock.RealClock` to actually delay).
        obs: observability bundle shared with the guard (and, when the
            service is wrapped in a :class:`~repro.server.DelayServer`,
            with the server), so one scrape covers every layer. A fresh
            enabled bundle by default.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        guard_config: Optional[GuardConfig] = None,
        account_policy: Optional[AccountPolicy] = None,
        clock: Optional[Clock] = None,
        obs: Optional[Observability] = None,
    ):
        self.database = database if database is not None else Database()
        self.clock = clock if clock is not None else VirtualClock()
        self.obs = obs if obs is not None else Observability()
        self.accounts = (
            AccountManager(policy=account_policy, clock=self.clock)
            if account_policy is not None
            else None
        )
        self.guard = DelayGuard(
            self.database,
            config=guard_config,
            clock=self.clock,
            accounts=self.accounts,
            obs=self.obs,
        )

    # -- user-facing ---------------------------------------------------------

    def register(self, identity: str, subnet: str = "0.0.0.0/0") -> Account:
        """Register an identity (subject to the registration gate)."""
        if self.accounts is None:
            raise ConfigError(
                "this service runs without accounts; queries are anonymous"
            )
        return self.accounts.register(identity, subnet=subnet)

    def query(
        self, identity: Optional[str], sql: str, record: bool = True
    ) -> GuardedResult:
        """Serve one query through the guard."""
        return self.guard.execute(sql, identity=identity, record=record)

    # -- operator-facing ---------------------------------------------------------

    def report(self, top_k: int = 3) -> ServiceReport:
        """Build an operator report of current protection posture."""
        stats = self.guard.stats
        snapshot = self.guard.popularity.snapshot()[:top_k]
        # Snapshot weights are decayed, so their shares must be taken
        # against the decayed total; dividing by the raw request count
        # mixes scales and misreports "% of requests" whenever
        # decay_rate > 1 or apply_decay has run. Equal to total_requests
        # when decay is off.
        total = max(self.guard.popularity.decayed_total, 1.0)
        top = [
            (table, rowid, count / total)
            for (table, rowid), count in snapshot
        ]
        max_cost = (
            self.guard.max_extraction_cost()
            if self.guard.config.cap is not None
            else None
        )
        return ServiceReport(
            users=len(self.accounts.accounts) if self.accounts else 0,
            queries=stats.queries,
            denied=stats.denied,
            median_user_delay=stats.median_delay(),
            total_delay_charged=stats.total_delay,
            extraction_cost=self.guard.extraction_cost(),
            max_extraction_cost=max_cost,
            top_tuples=top,
        )

    # -- state persistence ----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Persist database *and* learned guard state to one file."""
        payload = {
            "format": SERVICE_FORMAT,
            "database": dump_database(self.database),
            "guard": self.guard.dump_state(),
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        guard_config: Optional[GuardConfig] = None,
        account_policy: Optional[AccountPolicy] = None,
        clock: Optional[Clock] = None,
    ) -> "DataProviderService":
        """Restore a service saved with :meth:`save`.

        The guard configuration is supplied by the caller (policy knobs
        are deployment configuration, not data); its decay rate must
        match the saved state.
        """
        file_path = Path(path)
        if not file_path.exists():
            raise PersistenceError(f"no service save at {file_path}")
        try:
            payload = json.loads(file_path.read_text())
        except json.JSONDecodeError as error:
            raise PersistenceError(f"corrupt service save: {error}") from error
        if payload.get("format") != SERVICE_FORMAT:
            raise PersistenceError(
                f"unsupported service format {payload.get('format')!r}"
            )
        database = load_database(payload["database"])
        service = cls(
            database=database,
            guard_config=guard_config,
            account_policy=account_policy,
            clock=clock,
        )
        service.guard.load_state(payload["guard"])
        return service
