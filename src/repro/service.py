"""The complete data-provider service: database + guard + accounts.

:class:`DataProviderService` is the deployable composition of every
layer in this library — what the paper's information provider would
actually run. It owns the engine, the delay guard, and the account
manager; exposes user-facing ``register``/``query``; and gives the
operator an admin report plus full state save/load (schema, data, *and*
learned popularity, so delays survive restarts).

Thread-safe without external serialisation: queries run the guard's
staged pipeline, data access is arbitrated by the engine's read/write
lock (concurrent readers, exclusive writers), and ``save``/``load``
take the write side so a snapshot is a consistent point in time.
Callers — including :class:`~repro.server.DelayServer` — need no
statement-level lock of their own.

>>> from repro.core import AccountPolicy
>>> service = DataProviderService(account_policy=AccountPolicy())
>>> _ = service.database.execute(
...     "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
>>> _ = service.database.execute("INSERT INTO t VALUES (1, 'x')")
>>> _ = service.register("alice")
>>> service.query("alice", "SELECT * FROM t WHERE id = 1").rows
[(1, 'x')]
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

from .core.accounts import Account, AccountManager, AccountPolicy
from .core.clock import Clock, VirtualClock
from .core.config import GuardConfig
from .core.errors import ConfigError
from .core.guard import DelayGuard, GuardedResult
from .engine.database import Database
from .engine.durability import RecoveryReport, replay_journal
from .engine.journal import WriteAheadJournal
from .engine.persistence import (
    PersistenceError,
    atomic_write_json,
    dump_database,
    load_database,
)
from .obs import AuditLog, Observability
from .sim.metrics import format_seconds

#: Format identifier for full-service save files. v2 adds account state
#: and the journal high-water mark (``journal_seq``); v1 files are still
#: loadable.
SERVICE_FORMAT = "repro-service-v2"
_LEGACY_FORMATS = ("repro-service-v1",)


@dataclass
class ServiceReport:
    """Operator-facing snapshot of a running service.

    Attributes:
        users: registered identities.
        queries: queries served (including denials).
        denied: queries refused by account limits.
        median_user_delay: median per-SELECT delay so far.
        total_delay_charged: cumulative delay charged.
        extraction_cost: what a full extraction would cost right now.
        max_extraction_cost: the N·d_max bound (None without a cap).
        protection_ratio: extraction cost over median delay.
        top_tuples: the currently most popular (table, rowid, share).
    """

    users: int
    queries: int
    denied: int
    median_user_delay: float
    total_delay_charged: float
    extraction_cost: float
    max_extraction_cost: Optional[float]
    top_tuples: List[Tuple[str, int, float]] = field(default_factory=list)

    @property
    def protection_ratio(self) -> float:
        """Adversary cost relative to the median legitimate delay."""
        if self.median_user_delay <= 0:
            return float("inf")
        return self.extraction_cost / self.median_user_delay

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"users               : {self.users}",
            f"queries served      : {self.queries} "
            f"({self.denied} denied)",
            f"median user delay   : "
            f"{format_seconds(self.median_user_delay)}",
            f"delay charged total : "
            f"{format_seconds(self.total_delay_charged)}",
            f"extraction cost now : {format_seconds(self.extraction_cost)}",
        ]
        if self.max_extraction_cost is not None:
            fraction = (
                self.extraction_cost / self.max_extraction_cost
                if self.max_extraction_cost
                else 0.0
            )
            lines.append(
                f"vs N*d_max bound    : "
                f"{format_seconds(self.max_extraction_cost)} "
                f"({fraction:.0%} reached)"
            )
        for table, rowid, share in self.top_tuples:
            lines.append(
                f"  hot tuple {table}#{rowid}: {share:.1%} of requests"
            )
        return "\n".join(lines)


class DataProviderService:
    """Database + delay guard + accounts, wired together.

    Args:
        database: an existing engine (a fresh one by default).
        guard_config: delay policy configuration (§2 defaults).
        account_policy: §2.4 defenses; None disables account
            enforcement entirely (anonymous queries allowed).
        clock: time source (virtual by default; pass
            :class:`~repro.core.clock.RealClock` to actually delay).
        obs: observability bundle shared with the guard (and, when the
            service is wrapped in a :class:`~repro.server.DelayServer`,
            with the server), so one scrape covers every layer. A fresh
            enabled bundle by default.
        snapshot_path: default file for :meth:`checkpoint` and the
            recovery entry point. Optional; :meth:`save` still takes an
            explicit path.
        journal_path: when set, a write-ahead journal is opened there
            and attached to the engine — every committed mutation is
            fsync'd before its caller is told it succeeded. On a fresh
            start this is correct on its own; after a crash use
            :meth:`recover`, which replays the journal *before*
            re-attaching it.
        journal_sync: fsync the journal on every commit (default).
            Turning it off trades the durability of the newest commits
            for write throughput.
        audit_path: when set, an :class:`~repro.obs.AuditLog` is opened
            there and attached to the observability bundle — the guard
            and server emit structured defense events (served, denied,
            shed, priced, checkpoint, recovery, forensic flags) through
            a non-blocking background writer with size rotation. Only
            attached when the bundle doesn't already carry one.
    """

    def __init__(
        self,
        database: Optional[Database] = None,
        guard_config: Optional[GuardConfig] = None,
        account_policy: Optional[AccountPolicy] = None,
        clock: Optional[Clock] = None,
        obs: Optional[Observability] = None,
        snapshot_path: Optional[Union[str, Path]] = None,
        journal_path: Optional[Union[str, Path]] = None,
        journal_sync: bool = True,
        audit_path: Optional[Union[str, Path]] = None,
        account_manager: Optional[AccountManager] = None,
    ):
        self.database = database if database is not None else Database()
        self.clock = clock if clock is not None else VirtualClock()
        self.obs = obs if obs is not None else Observability()
        if audit_path is not None and self.obs.audit is None:
            self.obs.audit = AuditLog(str(audit_path))
            if self.obs.enabled:
                self.obs.audit.register_metrics(self.obs.registry)
        if account_manager is not None:
            # Cluster shards share one AccountManager so per-identity
            # budgets are global, not per-shard (otherwise an adversary
            # gets M times the query budget by spraying shards).
            self.accounts: Optional[AccountManager] = account_manager
        else:
            self.accounts = (
                AccountManager(policy=account_policy, clock=self.clock)
                if account_policy is not None
                else None
            )
        self.guard = DelayGuard(
            self.database,
            config=guard_config,
            clock=self.clock,
            accounts=self.accounts,
            obs=self.obs,
        )
        self.snapshot_path = Path(snapshot_path) if snapshot_path else None
        #: report of the recovery pass that produced this service, when
        #: it was built by :meth:`recover`.
        self.last_recovery: Optional[RecoveryReport] = None
        self.checkpoints_completed = 0
        #: journal seq covered by the newest checkpoint — the journal
        #: lag reported by :meth:`durability_health` is measured from it.
        self.last_checkpoint_seq = 0
        self._durability_metrics_registered = False
        if journal_path is not None:
            self.enable_journal(journal_path, sync=journal_sync)

    # -- durability ----------------------------------------------------------

    @property
    def journal(self) -> Optional[WriteAheadJournal]:
        """The engine's attached write-ahead journal, if any."""
        return self.database.journal

    def enable_journal(
        self, path: Union[str, Path], sync: bool = True
    ) -> WriteAheadJournal:
        """Open a write-ahead journal at ``path`` and attach it.

        Opening truncates any torn tail durably and continues sequence
        numbering after the last surviving record. Statements committed
        from here on are journalled (stamped with the service clock, so
        recovery can rebuild update-rate state with original
        timestamps). Call only on a state that already reflects the
        journal's contents — a fresh service, or one built by
        :meth:`recover`.
        """
        if self.database.journal is not None:
            raise ConfigError("a journal is already attached")
        journal = WriteAheadJournal(path, clock=self.clock, sync=sync)
        self.database.attach_journal(journal)
        if self.obs.enabled:
            self._register_durability_metrics()
        return journal

    def checkpoint(self, path: Optional[Union[str, Path]] = None) -> int:
        """Snapshot full service state, then truncate the journal.

        Runs under one exclusive write lock: the snapshot, the
        ``journal_seq`` it records, and the truncation are a single
        point in time. A crash anywhere in between is safe — recovery
        skips journal records the snapshot already covers. Returns the
        journal sequence number the snapshot covers.
        """
        target = Path(path) if path is not None else self.snapshot_path
        if target is None:
            raise ConfigError(
                "no checkpoint path: pass one or construct the service "
                "with snapshot_path="
            )
        with self.database.write_txn():
            journal = self.database.journal
            payload = self._dump_service()
            atomic_write_json(target, payload)
            if journal is not None:
                journal.truncate()
            self.checkpoints_completed += 1
            self.last_checkpoint_seq = payload["journal_seq"]
        if self.obs.audit is not None:
            self.obs.audit.emit(
                "checkpoint",
                path=str(target),
                journal_seq=self.last_checkpoint_seq,
                checkpoints_completed=self.checkpoints_completed,
            )
        return self.last_checkpoint_seq

    def _dump_service(self) -> Dict:
        """Full service state as one JSON document (holds the write lock)."""
        with self.database.write_txn():
            journal = self.database.journal
            return {
                "format": SERVICE_FORMAT,
                "database": dump_database(self.database),
                "guard": self.guard.dump_state(),
                "accounts": (
                    self.accounts.dump_state()
                    if self.accounts is not None
                    else None
                ),
                "journal_seq": journal.last_seq if journal is not None else 0,
                "mutation_epoch": self.database.mutation_epoch,
                "clock": self.clock.now(),
            }

    def _register_durability_metrics(self) -> None:
        """Expose journal and recovery health through the shared registry."""
        if self._durability_metrics_registered:
            return
        self._durability_metrics_registered = True
        registry = self.obs.registry
        database = self.database

        def journal_stat(attribute: str):
            def read() -> float:
                journal = database.journal
                return getattr(journal, attribute) if journal else 0

            return read

        registry.counter(
            "durability_journal_records_total",
            "Statements appended to the write-ahead journal",
        ).set_function(journal_stat("records_written"))
        registry.counter(
            "durability_journal_bytes_total",
            "Bytes appended to the write-ahead journal",
        ).set_function(journal_stat("bytes_written"))
        registry.counter(
            "durability_journal_fsyncs_total",
            "fsync calls issued by the journal",
        ).set_function(journal_stat("fsyncs"))
        registry.gauge(
            "durability_journal_size_bytes",
            "Current journal file size (shrinks at checkpoints)",
        ).set_function(journal_stat("size_bytes"))
        registry.gauge(
            "durability_journal_last_seq",
            "Sequence number of the newest journalled statement",
        ).set_function(journal_stat("last_seq"))
        registry.counter(
            "durability_checkpoints_total",
            "Snapshots completed (journal truncations)",
        ).set_function(lambda: self.checkpoints_completed)
        registry.gauge(
            "durability_recovery_seconds",
            "Wall-clock duration of the last crash recovery",
        ).set_function(
            lambda: (
                self.last_recovery.duration_seconds
                if self.last_recovery
                else 0.0
            )
        )
        registry.gauge(
            "durability_recovery_replayed_statements",
            "Journal records re-applied by the last crash recovery",
        ).set_function(
            lambda: (
                self.last_recovery.replayed_statements
                if self.last_recovery
                else 0
            )
        )
        registry.gauge(
            "durability_recovery_torn_bytes",
            "Invalid trailing journal bytes dropped by the last recovery",
        ).set_function(
            lambda: (
                self.last_recovery.torn_bytes_truncated
                if self.last_recovery
                else 0
            )
        )

    # -- user-facing ---------------------------------------------------------

    def register(self, identity: str, subnet: str = "0.0.0.0/0") -> Account:
        """Register an identity (subject to the registration gate)."""
        if self.accounts is None:
            raise ConfigError(
                "this service runs without accounts; queries are anonymous"
            )
        return self.accounts.register(identity, subnet=subnet)

    def query(
        self, identity: Optional[str], sql: str, record: bool = True
    ) -> GuardedResult:
        """Serve one query through the guard."""
        return self.guard.execute(sql, identity=identity, record=record)

    # -- operator-facing ---------------------------------------------------------

    def report(self, top_k: int = 3) -> ServiceReport:
        """Build an operator report of current protection posture."""
        stats = self.guard.stats
        snapshot = self.guard.popularity.snapshot()[:top_k]
        # Snapshot weights are decayed, so their shares must be taken
        # against the decayed total; dividing by the raw request count
        # mixes scales and misreports "% of requests" whenever
        # decay_rate > 1 or apply_decay has run. Equal to total_requests
        # when decay is off.
        total = max(self.guard.popularity.decayed_total, 1.0)
        top = [
            (table, rowid, count / total)
            for (table, rowid), count in snapshot
        ]
        max_cost = (
            self.guard.max_extraction_cost()
            if self.guard.config.cap is not None
            else None
        )
        return ServiceReport(
            users=len(self.accounts.accounts) if self.accounts else 0,
            queries=stats.queries,
            denied=stats.denied,
            median_user_delay=stats.median_delay(),
            total_delay_charged=stats.total_delay,
            extraction_cost=self.guard.extraction_cost(),
            max_extraction_cost=max_cost,
            top_tuples=top,
        )

    def durability_health(self) -> Dict:
        """Journal/checkpoint posture for the server's ``health`` op.

        ``journal_lag`` is the number of committed statements the
        newest checkpoint does *not* cover — what a crash right now
        would have to replay.
        """
        journal = self.database.journal
        payload: Dict = {
            "journal_attached": journal is not None,
            "checkpoints_completed": self.checkpoints_completed,
            "last_checkpoint_seq": self.last_checkpoint_seq,
        }
        if journal is not None:
            payload["journal_last_seq"] = journal.last_seq
            payload["journal_size_bytes"] = journal.size_bytes
            payload["journal_lag"] = max(
                journal.last_seq - self.last_checkpoint_seq, 0
            )
        recovery = self.last_recovery
        payload["last_recovery"] = (
            {
                "snapshot_loaded": recovery.snapshot_loaded,
                "replayed_statements": recovery.replayed_statements,
                "torn_bytes_truncated": recovery.torn_bytes_truncated,
                "duration_seconds": recovery.duration_seconds,
            }
            if recovery is not None
            else None
        )
        return payload

    def close(self) -> None:
        """Release process-level engine resources (scan worker pool).

        Idempotent, and deliberately leaves the journal attached: a
        service may be closed and its database re-wrapped, but a
        journal close is a durability decision the owner makes
        explicitly.
        """
        self.database.close()

    # -- state persistence ----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Persist database, learned guard state, and accounts, atomically.

        Unlike :meth:`checkpoint` this does not touch the journal — it
        is a portable export, safe to point anywhere.
        """
        atomic_write_json(path, self._dump_service())

    @staticmethod
    def _read_service_payload(path: Union[str, Path]) -> Dict:
        file_path = Path(path)
        if not file_path.exists():
            raise PersistenceError(f"no service save at {file_path}")
        try:
            payload = json.loads(file_path.read_text())
        except json.JSONDecodeError as error:
            raise PersistenceError(f"corrupt service save: {error}") from error
        if (
            payload.get("format") != SERVICE_FORMAT
            and payload.get("format") not in _LEGACY_FORMATS
        ):
            raise PersistenceError(
                f"unsupported service format {payload.get('format')!r}"
            )
        return payload

    def _load_state_payload(self, payload: Dict) -> None:
        """Restore guard and account state from a service payload."""
        self.guard.load_state(payload["guard"])
        accounts_state = payload.get("accounts")
        if accounts_state is not None and self.accounts is not None:
            self.accounts.load_state(accounts_state)
        # Restore the snapshot epoch so nothing cached against the
        # previous run's epochs (result-cache entries, or any persisted
        # derivative of them) can ever be current again: the epoch
        # resumes at the snapshot's high-water mark instead of zero.
        self.database.bump_mutation_epoch(
            max(
                int(payload.get("journal_seq") or 0),
                int(payload.get("mutation_epoch") or 0),
            )
        )
        self._advance_clock_to(payload.get("clock"))

    def _advance_clock_to(self, target: Optional[float]) -> None:
        """Move a virtual clock forward to ``target``, never backward.

        Restored tracker state carries timestamps from the previous
        run's timeline; a virtual clock restarted at zero would sit
        *before* them and mis-decay everything. Real clocks
        (``time.monotonic``) are system-wide and need no restoration.
        """
        if target is None or not hasattr(self.clock, "advance"):
            return
        delta = target - self.clock.now()
        if delta > 0:
            self.clock.advance(delta)

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        guard_config: Optional[GuardConfig] = None,
        account_policy: Optional[AccountPolicy] = None,
        clock: Optional[Clock] = None,
    ) -> "DataProviderService":
        """Restore a service saved with :meth:`save`.

        The guard configuration is supplied by the caller (policy knobs
        are deployment configuration, not data); its decay rate must
        match the saved state. Both current (v2) and v1 save files are
        accepted; v1 predates account persistence, so accounts start
        empty.
        """
        payload = cls._read_service_payload(path)
        service = cls(
            database=load_database(payload["database"]),
            guard_config=guard_config,
            account_policy=account_policy,
            clock=clock,
        )
        service._load_state_payload(payload)
        return service

    @classmethod
    def recover(
        cls,
        snapshot_path: Optional[Union[str, Path]] = None,
        journal_path: Optional[Union[str, Path]] = None,
        guard_config: Optional[GuardConfig] = None,
        account_policy: Optional[AccountPolicy] = None,
        clock: Optional[Clock] = None,
        obs: Optional[Observability] = None,
        journal_sync: bool = True,
        audit_path: Optional[Union[str, Path]] = None,
        account_manager: Optional[AccountManager] = None,
        database_setup: Optional[Callable[[Database], None]] = None,
    ) -> "DataProviderService":
        """Rebuild a service after a crash: snapshot + journal replay.

        Loads the latest snapshot if one exists (a missing file means
        "never checkpointed" and is fine), replays journal records past
        the snapshot's ``journal_seq`` — re-applying each statement to
        the engine *and* re-recording its updates into the guard's
        trackers with the timestamps they originally committed at — then
        re-attaches the journal so new commits keep being logged. Torn
        journal tails are truncated, not fatal. The result is stored in
        :attr:`last_recovery`.

        ``database_setup``, when given, runs against the engine after the
        snapshot is loaded but *before* journal replay — cluster shards
        use it to configure strided rowid allocation so replayed INSERTs
        re-allocate exactly the rowids they held before the crash.
        """
        started = time.perf_counter()
        payload = None
        if snapshot_path is not None and Path(snapshot_path).exists():
            payload = cls._read_service_payload(snapshot_path)
        service = cls(
            database=(
                load_database(payload["database"])
                if payload is not None
                else None
            ),
            guard_config=guard_config,
            account_policy=account_policy,
            clock=clock,
            obs=obs,
            snapshot_path=snapshot_path,
            audit_path=audit_path,
            account_manager=account_manager,
        )
        if database_setup is not None:
            database_setup(service.database)
        report = RecoveryReport()
        if payload is not None:
            service._load_state_payload(payload)
            report.snapshot_loaded = True
            report.snapshot_seq = int(payload.get("journal_seq", 0))
        if journal_path is not None:
            entries, scan = replay_journal(
                service.database, journal_path, after_seq=report.snapshot_seq
            )
            for entry in entries:
                if entry.tracked and entry.table is not None and entry.rowids:
                    service.guard.record_replayed_updates(
                        entry.table, entry.rowids, entry.ts
                    )
                if entry.ts is not None:
                    service._advance_clock_to(entry.ts)
            report.entries = entries
            report.replayed_statements = len(entries)
            report.skipped_records = len(scan.records) - len(entries)
            report.last_seq = max(scan.last_seq, report.snapshot_seq)
            if scan.torn:
                report.torn_bytes_truncated = (
                    scan.total_bytes - scan.valid_bytes
                )
            service.enable_journal(journal_path, sync=journal_sync)
        else:
            report.last_seq = report.snapshot_seq
        # Re-anchor the mutation epoch at the journal high-water mark so
        # it is never behind where the pre-crash process left it: any
        # result cached against a pre-crash epoch stays invisible.
        service.database.bump_mutation_epoch(report.last_seq)
        report.duration_seconds = time.perf_counter() - started
        service.last_recovery = report
        service.last_checkpoint_seq = report.snapshot_seq
        if service.obs.audit is not None:
            service.obs.audit.emit(
                "recovery",
                snapshot_loaded=report.snapshot_loaded,
                snapshot_seq=report.snapshot_seq,
                replayed_statements=report.replayed_statements,
                torn_bytes_truncated=report.torn_bytes_truncated,
                duration_seconds=report.duration_seconds,
            )
        return service
