"""Shared plumbing for the per-table / per-figure experiment modules.

Every experiment follows the same pattern: build a workload, replay it
through a guarded database on a virtual clock, evaluate an adversary,
and report paper-style rows. Each module exposes a ``run_*`` function
returning a structured result with a ``to_table()`` renderer; the CLI
(:mod:`repro.experiments.runner`) and the benchmark suite both consume
these functions.

Experiments default to the paper's full scale; pass ``scale`` (in
(0, 1]) to shrink populations and request counts proportionally — the
test suite runs at small scales, the benchmark suite at full scale.
"""

from __future__ import annotations

from typing import Optional

from ..core.errors import ConfigError


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an experiment size, keeping at least ``minimum``."""
    if not 0 < scale <= 1:
        raise ConfigError(f"scale must be in (0, 1], got {scale}")
    return max(minimum, int(round(value * scale)))
