"""Figures 4-6: the data-change defense across update skews (§4.3).

A 100,000-tuple relation receives uniform queries while updates arrive
with Zipf(α) per-tuple rates, α swept from 0.25 to 2.5. Delays are
assigned inversely to update rate (most-updated → minimum delay,
least-updated → cap). Three series are reported, one per paper figure:

* **Figure 4** — median user delay (log y): grows with skew, reaching
  the cap once most tuples are rarely updated.
* **Figure 5** — total adversary delay (log y): grows with skew toward
  the N·d_max bound ("at these levels of skew, the adversary will
  always incur the maximum possible delay").
* **Figure 6** — stale fraction of the extracted snapshot: ~100% at
  modest skew, falling once updates concentrate on few tuples.

The constant c is chosen via equation (12) so that full staleness is
guaranteed at α ≤ 1 — the regime the paper calls "modest skew".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..attacks.adversary import ExtractionAdversary
from ..core.analysis import staleness_fraction
from ..core.config import GuardConfig
from ..sim.experiment import ResultTable, build_guarded_items
from ..sim.metrics import format_seconds
from ..workloads.updates import UpdateProcess
from .common import scaled

PAPER_SKEWS = tuple(round(0.25 * step, 2) for step in range(1, 11))
PAPER_POPULATION = 100_000


@dataclass
class SkewPoint:
    """Measurements at one update-skew value.

    ``stale_fraction`` follows the paper's model exactly (eq. 10): an
    item is stale iff the total extraction delay covers its update
    period, i.e. ``d_total >= 1/r_i``. The two ``poisson_*`` fields are
    a more conservative model — Poisson updates over each item's
    *remaining* exposure window (retrieval to completion) — reported as
    an ablation.
    """

    alpha: float
    median_user_delay: float  # Figure 4
    adversary_delay: float  # Figure 5
    stale_fraction: float  # Figure 6, paper model (eq. 10)
    poisson_stale_fraction: float  # expected, remaining-window Poisson
    poisson_stale_sampled: float  # one Bernoulli draw of the same
    predicted_staleness: float  # equation (12), uncapped prediction


@dataclass
class Fig456Result:
    """The three series of Figures 4-6."""

    points: List[SkewPoint]
    population: int
    cap: float
    c: float

    @property
    def max_extraction_delay(self) -> float:
        """The N·d_max bound."""
        return self.population * self.cap

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Figures 4-6 — Update-Rate Delay Assignment vs Skew",
            columns=(
                "skew (alpha)",
                "median delay (Fig 4)",
                "adversary delay (Fig 5)",
                "stale % (Fig 6)",
                "eq.12 predicts",
                "poisson model",
            ),
            note=(
                f"N={self.population:,}, cap={self.cap:g}s, c={self.c:g}; "
                f"N*d_max = "
                f"{format_seconds(self.max_extraction_delay)}"
            ),
        )
        for point in self.points:
            table.add_row(
                f"{point.alpha:.2f}",
                format_seconds(point.median_user_delay),
                format_seconds(point.adversary_delay),
                f"{100 * point.stale_fraction:.1f}%",
                f"{100 * point.predicted_staleness:.1f}%",
                f"{100 * point.poisson_stale_fraction:.1f}%",
            )
        return table


def run_fig456(
    scale: float = 1.0,
    skews: Sequence[float] = PAPER_SKEWS,
    cap: float = 10.0,
    c: float = 2.0,
    rmax: float = 1.0,
    seed: int = 4356,
) -> Fig456Result:
    """Sweep update skew; measure user delay, adversary delay, staleness.

    Update-rate knowledge is primed to steady state (burn-in shortcut;
    equivalence with event replay is covered by tests), then the
    adversary extracts with the background update process running.
    """
    population = scaled(PAPER_POPULATION, scale, minimum=100)
    rng = np.random.default_rng(seed)
    points: List[SkewPoint] = []
    for alpha in skews:
        process = UpdateProcess.zipf(population, alpha, rmax)
        fixture = build_guarded_items(
            population,
            config=GuardConfig(policy="update", update_c=c, cap=cap),
        )
        heap = fixture.database.catalog.table(fixture.table)
        prefix = fixture.table.lower()
        id_position = heap.schema.position("id")
        rates: Dict = {}
        for rowid, row in heap.scan():
            item = row[id_position]
            rates[(prefix, rowid)] = process.rate(item)
        fixture.guard.update_rates.prime(rates, window=1e9)

        # Figure 4: uniform queries => per-query delay distribution is
        # the per-item delay distribution; take its exact median.
        delays = np.array(
            [
                fixture.guard.policy.delay_for((prefix, rowid))
                for rowid in heap.rowids()
            ]
        )
        median_delay = float(np.median(delays))

        adversary = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        )
        extraction = adversary.estimate(update_process=process, rng=rng)
        assert extraction.staleness is not None

        # Paper model (eq. 10): item i is stale iff the whole-extraction
        # delay reaches its update period.
        d_total = extraction.total_delay
        paper_stale = float(
            (process.rates[1:] >= 1.0 / d_total).mean()
        ) if d_total > 0 else 0.0

        # Conservative Poisson model over remaining exposure windows.
        completed = extraction.snapshot.completed_at
        windows = np.zeros(population, dtype=np.float64)
        for item, extracted in extraction.snapshot.tuples.items():
            windows[item - 1] = max(0.0, completed - extracted.extracted_at)
        expected = process.expected_stale_fraction(windows)

        points.append(
            SkewPoint(
                alpha=alpha,
                median_user_delay=median_delay,
                adversary_delay=extraction.total_delay,
                stale_fraction=paper_stale,
                poisson_stale_fraction=expected,
                poisson_stale_sampled=extraction.staleness.fraction,
                predicted_staleness=staleness_fraction(c, alpha),
            )
        )
    return Fig456Result(points=points, population=population, cap=cap, c=c)
