"""Table 1: delays in synthetic traces of increasing size.

The paper scales the Calgary scenario to larger synthetic datasets
(100k, 500k, 1M tuples; same access pattern and delay computation, cap
10 s) and reports median user delay (≈ 0 ms) against total adversary
delay (2, 8, 17 weeks). The adversary delay is dominated by the capped
tail — nearly every tuple in a big table is cold — so it scales
linearly with N while the median stays pinned at zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..attacks.adversary import ExtractionAdversary
from ..core.config import GuardConfig
from ..sim.experiment import ResultTable, build_guarded_items
from ..sim.metrics import format_seconds
from ..sim.simulator import TraceReplayer
from ..workloads.calgary import CALGARY_ALPHA, CALGARY_REQUESTS
from ..workloads.generators import make_zipf_query_trace
from .common import scaled

#: The paper's table rows.
PAPER_SIZES = (100_000, 500_000, 1_000_000)
PAPER_ADVERSARY_WEEKS = (2.0, 8.0, 17.0)
WEEK_SECONDS = 7 * 86400.0


@dataclass
class Table1Row:
    """One dataset size's outcome."""

    size: int
    median_user_delay: float  # seconds
    adversary_delay: float  # seconds

    @property
    def adversary_weeks(self) -> float:
        """Adversary delay in weeks (the paper's unit)."""
        return self.adversary_delay / WEEK_SECONDS


@dataclass
class Table1Result:
    """All rows of Table 1."""

    rows: List[Table1Row]
    cap: float

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Table 1 — Delays in Synthetic Traces",
            columns=(
                "database size (tuples)",
                "median user delay",
                "adversary delay",
            ),
            note=f"cap={self.cap:g}s; paper rows: "
            + ", ".join(
                f"{size}→{weeks:g} weeks"
                for size, weeks in zip(PAPER_SIZES, PAPER_ADVERSARY_WEEKS)
            ),
        )
        for row in self.rows:
            table.add_row(
                f"{row.size:,}",
                format_seconds(row.median_user_delay),
                f"{row.adversary_weeks:.1f} weeks",
            )
        return table


def run_table1(
    scale: float = 1.0,
    sizes: Sequence[int] = PAPER_SIZES,
    cap: float = 10.0,
    alpha: float = CALGARY_ALPHA,
    seed: int = 41,
) -> Table1Result:
    """Replay a Calgary-like workload per size, then extract.

    Each size uses the same request count as the Calgary trace (scaled),
    learning from scratch; the adversary is evaluated post-trace from
    the learned counts, as in §4.1.
    """
    rows: List[Table1Row] = []
    num_requests = scaled(CALGARY_REQUESTS, scale)
    for size in sizes:
        population = scaled(size, scale)
        fixture = build_guarded_items(
            population, config=GuardConfig(cap=cap)
        )
        trace = make_zipf_query_trace(
            population, num_requests, alpha=alpha, seed=seed
        )
        report = TraceReplayer(fixture.guard, fixture.table).replay(trace)
        adversary = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        )
        extraction = adversary.estimate()
        rows.append(
            Table1Row(
                size=population,
                median_user_delay=report.median_delay,
                adversary_delay=extraction.total_delay,
            )
        )
    return Table1Result(rows=rows, cap=cap)
