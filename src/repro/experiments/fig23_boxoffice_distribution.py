"""Figures 2 and 3: box-office sales distributions (§4.2).

Figure 2 plots annual sales of the year's top-10 films — a *mild* skew
(the paper's point: viewed whole-year, the box-office data is much less
skewed than Calgary). Figure 3 plots one week's top-10 — *sharp* skew.
The contrast is what makes the decay sweep of Table 4 interesting: only
a forgetting tracker sees the weekly skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..sim.experiment import ResultTable
from ..workloads.boxoffice import (
    BOXOFFICE_FILMS,
    BOXOFFICE_WEEKS,
    BoxOfficeDataset,
    generate_boxoffice,
)
from .common import scaled


@dataclass
class Fig23Result:
    """Annual and single-week top-10 sales."""

    annual_top10: List[Tuple[int, float]]
    week1_top10: List[Tuple[int, float]]
    total_requests: int
    week: int = 1

    @property
    def annual_skew(self) -> float:
        """Ratio of rank-1 to rank-10 (or last) annual sales (mild skew)."""
        return self.annual_top10[0][1] / self.annual_top10[-1][1]

    @property
    def weekly_skew(self) -> float:
        """Ratio of rank-1 to rank-10 (or last) week-1 sales (sharp skew)."""
        return self.week1_top10[0][1] / self.week1_top10[-1][1]

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Figures 2 & 3 — Box-Office Sales Distribution",
            columns=("rank", "annual sales ($)", "week-1 sales ($)"),
            note=(
                f"annual top1/top10 ratio={self.annual_skew:.1f} (mild), "
                f"week-1 ratio={self.weekly_skew:.1f} (sharp); "
                f"{self.total_requests} requests generated"
            ),
        )
        for position in range(10):
            annual = self.annual_top10[position][1]
            weekly = (
                self.week1_top10[position][1]
                if position < len(self.week1_top10)
                else 0.0
            )
            table.add_row(
                str(position + 1), f"{annual:,.0f}", f"{weekly:,.0f}"
            )
        return table


def run_fig23(scale: float = 1.0, seed: int = 2002) -> Fig23Result:
    """Generate the synthetic year and read off both distributions."""
    dataset = generate_boxoffice(
        num_films=scaled(BOXOFFICE_FILMS, scale, minimum=20),
        num_weeks=BOXOFFICE_WEEKS,
        seed=seed,
    )
    # At reduced scales week 1 may have no releases yet; report the
    # first week with sales (the full-scale default is week 1).
    week = 1
    while week < dataset.num_weeks and not dataset.weekly_sales(week):
        week += 1
    return Fig23Result(
        annual_top10=dataset.top_annual(10),
        week1_top10=dataset.top_weekly(week, 10),
        total_requests=dataset.trace.query_count(),
        week=week,
    )
