"""Figure 1: request distribution of the (synthetic) Calgary trace.

The paper's Figure 1 plots the request counts of the ten most popular
objects in the Calgary trace, which "loosely follows an exponential
popularity distribution with α ≈ 1.5". This experiment regenerates the
synthetic trace, reports the top-10 counts, and fits α to verify the
skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.analysis import fit_zipf_alpha
from ..sim.experiment import ResultTable
from ..workloads.calgary import (
    CALGARY_ALPHA,
    CALGARY_OBJECTS,
    CALGARY_REQUESTS,
    generate_calgary,
)
from .common import scaled


@dataclass
class Fig1Result:
    """Top-of-distribution shape of the Calgary-like trace."""

    top10: List[Tuple[int, int]]  # (rank position item, request count)
    fitted_alpha: float
    total_requests: int
    distinct_objects: int

    def to_table(self) -> ResultTable:
        """Render as the paper's Figure 1 data (rank vs frequency)."""
        table = ResultTable(
            title="Figure 1 — Request Distribution: Calgary-like Trace",
            columns=("rank", "requests"),
            note=(
                f"fitted alpha={self.fitted_alpha:.2f} "
                f"(paper: ~{CALGARY_ALPHA}), "
                f"{self.total_requests} requests over "
                f"{self.distinct_objects} objects"
            ),
        )
        for position, (_item, count) in enumerate(self.top10, start=1):
            table.add_row(str(position), str(count))
        return table


def run_fig1(scale: float = 1.0, seed: int = 2004) -> Fig1Result:
    """Generate the trace and measure its head shape."""
    dataset = generate_calgary(
        num_objects=scaled(CALGARY_OBJECTS, scale),
        num_requests=scaled(CALGARY_REQUESTS, scale),
        seed=seed,
    )
    frequencies = dataset.trace.item_frequencies()
    ranked = frequencies.most_common()
    # Fit over the top decades where the power law is clean.
    head = [count for _item, count in ranked[: min(len(ranked), 200)]]
    return Fig1Result(
        top10=ranked[:10],
        fitted_alpha=fit_zipf_alpha(head),
        total_requests=len(dataset.trace),
        distinct_objects=len(ranked),
    )
