"""Table 5: implementation overhead of counts + delay computation (§4.4).

The paper measures 100 random single-tuple selection queries with and
without the delay machinery (counts held in a small write-behind cache)
and reports ~20% overhead (55.17 ms base vs 66.20 ms total on their
2004 commercial DBMS). Absolute times on our pure-Python engine are
microseconds, not milliseconds; the claim under test is the *relative*
overhead of authorization + delay computation + count maintenance.

Intentional delay is excluded by running on a virtual clock (sleeps are
simulated); what is measured is real CPU time per query.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.config import GuardConfig
from ..sim.experiment import ResultTable, build_guarded_items
from ..workloads.generators import select_sql
from .common import scaled

PAPER_BASE_MS = 55.17
PAPER_TOTAL_MS = 66.20
PAPER_OVERHEAD_FRACTION = 0.20


@dataclass
class Table5Result:
    """Overhead measurement for single-tuple selections.

    Times are per-query wall seconds on this machine.
    """

    base_mean: float
    base_stdev: float
    total_mean: float
    total_stdev: float
    queries: int

    @property
    def overhead(self) -> float:
        """Absolute added seconds per query."""
        return self.total_mean - self.base_mean

    @property
    def overhead_fraction(self) -> float:
        """Relative overhead (the paper's ~20% figure)."""
        if self.base_mean == 0:
            return 0.0
        return self.overhead / self.base_mean

    def to_table(self) -> ResultTable:
        def ms(value: float) -> str:
            return f"{value * 1000:.3f}"

        table = ResultTable(
            title="Table 5 — Overheads in Simple Selection Queries",
            columns=(
                "base avg (ms)",
                "base stdev",
                "total avg (ms)",
                "total stdev",
                "overhead (ms)",
                "overhead (%)",
            ),
            note=(
                f"paper: {PAPER_BASE_MS} -> {PAPER_TOTAL_MS} ms "
                f"(~{PAPER_OVERHEAD_FRACTION:.0%}) on a 2004 commercial "
                "DBMS; ours is relative to this engine"
            ),
        )
        table.add_row(
            ms(self.base_mean),
            ms(self.base_stdev),
            ms(self.total_mean),
            ms(self.total_stdev),
            ms(self.overhead),
            f"{self.overhead_fraction:.1%}",
        )
        return table


def run_table5(
    scale: float = 1.0,
    queries: int = 100,
    population: int = 10_000,
    repeats: int = 20,
    seed: int = 5,
) -> Table5Result:
    """Time random selections bare vs guarded (write-behind counts).

    Mirrors the paper's design: batches of ``queries`` *distinct*
    random single-tuple selections (each statement text runs once per
    batch, so the engine's statement cache gives no unrealistic
    advantage), timed bare and guarded; ``repeats`` batches are
    averaged and each batch yields a per-query time sample.
    """
    population = scaled(population, scale, minimum=100)
    fixture = build_guarded_items(
        population,
        config=GuardConfig(cap=10.0, count_store="write_behind"),
    )
    rng = np.random.default_rng(seed)
    database = fixture.database
    guard = fixture.guard

    def fresh_batch() -> List[str]:
        items = rng.choice(population, size=queries, replace=False) + 1
        return [select_sql(fixture.table, int(item)) for item in items]

    # Warm both code paths once.
    for sql in fresh_batch()[:20]:
        database.execute(sql)
        guard.execute(sql)

    base_times: List[float] = []
    total_times: List[float] = []
    for _round in range(repeats):
        batch = fresh_batch()
        started = time.perf_counter()
        for sql in batch:
            database.execute(sql)
        base_times.append((time.perf_counter() - started) / queries)

        batch = fresh_batch()
        started = time.perf_counter()
        for sql in batch:
            guard.execute(sql)
        total_times.append((time.perf_counter() - started) / queries)

    return Table5Result(
        base_mean=statistics.mean(base_times),
        base_stdev=statistics.stdev(base_times) if len(base_times) > 1 else 0.0,
        total_mean=statistics.mean(total_times),
        total_stdev=(
            statistics.stdev(total_times) if len(total_times) > 1 else 0.0
        ),
        queries=queries,
    )
