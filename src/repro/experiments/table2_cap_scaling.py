"""Table 2: scaling the maximum-delay cap (§4.1).

Raising the cap d_max has no effect on the median user delay (the
median-rank tuple sits far below any reasonable cap) but scales the
adversary's total delay almost linearly, because an extraction spends
nearly all its time on capped tuples. The paper reports adversary
delays of 0.33 / 3.16 / 30.17 / 282.70 hours for caps of 0.1 / 1 / 10 /
100 seconds on the 12,179-object Calgary dataset.

Popularity learning is cap-independent, so the trace is replayed once
and each cap is evaluated against the same learned counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.config import GuardConfig
from ..core.delay_policy import PopularityDelayPolicy
from ..sim.experiment import ResultTable, build_guarded_items
from ..sim.metrics import format_seconds
from ..sim.simulator import TraceReplayer
from ..workloads.calgary import generate_calgary
from .common import scaled

PAPER_CAPS = (0.1, 1.0, 10.0, 100.0)
PAPER_ADVERSARY_HOURS = (0.33, 3.16, 30.17, 282.70)


@dataclass
class Table2Row:
    """Outcome for one cap value."""

    cap: float
    median_user_delay: float
    adversary_delay: float

    @property
    def adversary_hours(self) -> float:
        """Adversary delay in hours (the paper's unit)."""
        return self.adversary_delay / 3600.0


@dataclass
class Table2Result:
    """All rows of Table 2."""

    rows: List[Table2Row]
    population: int

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Table 2 — Scaling Maximum Delay Costs (Calgary-like)",
            columns=("cap (sec)", "median user delay", "adversary delay"),
            note="paper adversary hours: "
            + ", ".join(
                f"{cap:g}s→{hours:g}h"
                for cap, hours in zip(PAPER_CAPS, PAPER_ADVERSARY_HOURS)
            ),
        )
        for row in self.rows:
            table.add_row(
                f"{row.cap:g}",
                format_seconds(row.median_user_delay),
                f"{row.adversary_hours:.2f} h",
            )
        return table


def run_table2(
    scale: float = 1.0,
    caps: Sequence[float] = PAPER_CAPS,
    seed: int = 2004,
) -> Table2Result:
    """Replay the Calgary-like trace once and sweep the cap."""
    dataset = generate_calgary(
        num_objects=scaled(12_179, scale),
        num_requests=scaled(725_091, scale),
        seed=seed,
    )
    population = dataset.population
    fixture = build_guarded_items(population, config=GuardConfig(cap=max(caps)))
    replay = TraceReplayer(fixture.guard, fixture.table).replay(dataset.trace)

    heap = fixture.database.catalog.table(fixture.table)
    keys = [(fixture.table.lower(), rowid) for rowid in heap.rowids()]
    rows: List[Table2Row] = []
    for cap in caps:
        policy = PopularityDelayPolicy(
            tracker=fixture.guard.popularity,
            population=population,
            cap=cap,
        )
        total = sum(policy.delay_for(key) for key in keys)
        # Median user delay under this cap: re-apply the cap to the
        # replayed per-query delays (delays below every cap here are
        # unchanged; only cold-start hits move). The raw per-query
        # delays come from the replay report — guard stats now keep a
        # histogram, not a list.
        capped = sorted(
            min(delay, cap) for delay in replay.user_delays.values
        )
        median = capped[len(capped) // 2] if capped else 0.0
        rows.append(
            Table2Row(
                cap=cap, median_user_delay=median, adversary_delay=total
            )
        )
    return Table2Result(rows=rows, population=population)
