"""One module per paper table/figure; see :mod:`repro.experiments.runner`."""

from .fig1_calgary_distribution import Fig1Result, run_fig1
from .fig23_boxoffice_distribution import Fig23Result, run_fig23
from .fig456_update_skew import Fig456Result, SkewPoint, run_fig456
from .table1_synthetic_scaling import Table1Result, Table1Row, run_table1
from .table2_cap_scaling import Table2Result, Table2Row, run_table2
from .table3_calgary_decay import Table3Result, Table3Row, run_table3
from .table4_boxoffice_decay import Table4Result, Table4Row, run_table4
from .table5_overhead import Table5Result, run_table5

__all__ = [
    "Fig1Result",
    "Fig23Result",
    "Fig456Result",
    "SkewPoint",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "Table2Row",
    "Table3Result",
    "Table3Row",
    "Table4Result",
    "Table4Row",
    "Table5Result",
    "run_fig1",
    "run_fig23",
    "run_fig456",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
]
