"""Command-line experiment runner.

Run every experiment (or a subset) and print paper-style tables::

    python -m repro.experiments.runner            # everything, full scale
    python -m repro.experiments.runner --scale 0.02 table1 fig456
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Sequence

from .ablations import (
    run_adaptive_ablation,
    run_beta_ablation,
    run_policy_ablation,
    run_store_ablation,
)
from .fig1_calgary_distribution import run_fig1
from .fig23_boxoffice_distribution import run_fig23
from .fig456_update_skew import run_fig456
from .table1_synthetic_scaling import run_table1
from .table2_cap_scaling import run_table2
from .table3_calgary_decay import run_table3
from .table4_boxoffice_decay import run_table4
from .table5_overhead import run_table5

EXPERIMENTS: Dict[str, Callable] = {
    "fig1": run_fig1,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "fig23": run_fig23,
    "table4": run_table4,
    "fig456": run_fig456,
    "table5": run_table5,
    "ablation-stores": run_store_ablation,
    "ablation-policies": run_policy_ablation,
    "ablation-beta": run_beta_ablation,
    "ablation-adaptive": run_adaptive_ablation,
}


def main(argv: Sequence[str] = None) -> int:
    """Entry point: run selected experiments at the given scale."""
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures."
    )
    parser.add_argument(
        "names",
        nargs="*",
        help=(
            "which experiments to run (default: all); choices: "
            + ", ".join(EXPERIMENTS)
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink populations/request counts to this fraction (0, 1]",
    )
    parser.add_argument(
        "--csv-dir",
        default=None,
        help="also write each experiment's table as CSV into this directory",
    )
    args = parser.parse_args(argv)
    names = (
        list(EXPERIMENTS)
        if not args.names or "all" in args.names
        else args.names
    )
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choices: "
            + ", ".join(EXPERIMENTS)
        )

    if args.csv_dir:
        from pathlib import Path

        Path(args.csv_dir).mkdir(parents=True, exist_ok=True)
    for name in names:
        started = time.perf_counter()
        result = EXPERIMENTS[name](scale=args.scale)
        elapsed = time.perf_counter() - started
        table = result.to_table()
        table.show()
        if args.csv_dir:
            from pathlib import Path

            destination = Path(args.csv_dir) / f"{name}.csv"
            table.to_csv(destination)
            print(f"  [written to {destination}]")
        print(f"  [{name} completed in {elapsed:.1f}s wall time]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
