"""Table 4: decay-rate sweep on the box-office workload (§4.2).

The box-office popularity distribution shifts weekly, so — unlike the
static Calgary case — decay barely costs the median user, and every
decay rate drives the adversary to essentially 100% of the N·d_max
bound (the dataset is tiny, so nearly every film is cold at any
moment). The paper sweeps decay factors 1.00 to 5.00 applied at weekly
boundaries and reports medians of 0.03–1.26 ms with adversary delays of
1.33–1.76 hours against a 1.76-hour maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..attacks.adversary import ExtractionAdversary
from ..core.config import GuardConfig
from ..sim.experiment import ResultTable, build_guarded_items
from ..sim.metrics import format_seconds
from ..sim.simulator import TraceReplayer
from ..workloads.boxoffice import BOXOFFICE_FILMS, generate_boxoffice
from .common import scaled

PAPER_DECAYS = (1.0, 1.01, 1.02, 1.05, 1.10, 1.20, 1.50, 2.00, 5.00)
PAPER_MEDIANS_MS = (0.03, 0.04, 0.05, 0.08, 0.14, 0.26, 0.53, 0.79, 1.26)
PAPER_ADVERSARY_HOURS = (1.33, 1.51, 1.45, 1.46, 1.61, 1.70, 1.74, 1.75, 1.76)


@dataclass
class Table4Row:
    """Outcome for one weekly decay factor."""

    decay: float
    median_user_delay: float
    adversary_delay: float

    @property
    def adversary_hours(self) -> float:
        """Adversary delay in hours."""
        return self.adversary_delay / 3600.0


@dataclass
class Table4Result:
    """All rows of Table 4."""

    rows: List[Table4Row]
    max_extraction_delay: float

    @property
    def max_hours(self) -> float:
        """The N·d_max bound in hours (paper: 1.76 h)."""
        return self.max_extraction_delay / 3600.0

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Table 4 — Delays in Box-Office Data (weekly decay sweep)",
            columns=("decay rate", "median user delay", "adversary delay"),
            note=(
                f"N*d_max bound = {self.max_hours:.2f} h; paper: medians "
                f"{PAPER_MEDIANS_MS[0]}..{PAPER_MEDIANS_MS[-1]} ms, "
                f"adversary {PAPER_ADVERSARY_HOURS[0]}.."
                f"{PAPER_ADVERSARY_HOURS[-1]} h"
            ),
        )
        for row in self.rows:
            table.add_row(
                f"{row.decay:.2f}",
                format_seconds(row.median_user_delay),
                f"{row.adversary_hours:.2f} h",
            )
        return table


def run_table4(
    scale: float = 1.0,
    decays: Sequence[float] = PAPER_DECAYS,
    cap: float = 10.0,
    seed: int = 2002,
) -> Table4Result:
    """Replay the box-office year per decay, applying decay at weeks."""
    dataset = generate_boxoffice(
        num_films=scaled(BOXOFFICE_FILMS, scale, minimum=20), seed=seed
    )
    rows: List[Table4Row] = []
    max_bound = 0.0
    for decay in decays:
        fixture = build_guarded_items(
            dataset.num_films, config=GuardConfig(cap=cap)
        )
        replayer = TraceReplayer(
            fixture.guard, fixture.table, boundary_decay=decay
        )
        report = replayer.replay(dataset.trace)
        extraction = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        ).estimate()
        rows.append(
            Table4Row(
                decay=decay,
                median_user_delay=report.median_delay,
                adversary_delay=extraction.total_delay,
            )
        )
        max_bound = fixture.guard.max_extraction_cost(fixture.table)
    return Table4Result(rows=rows, max_extraction_delay=max_bound)
