"""Ablations: quantify the design choices behind the scheme.

Four studies, each isolating one knob the paper discusses:

* **Count stores (§4.4)** — exact in-memory counts vs the write-behind
  cache vs the bounded Space-Saving synopsis: what does bounding memory
  cost in delay accuracy, and what does the cache save in I/O?
* **Policies (§2 vs the naive strawman)** — no delay, uniform fixed
  delay, popularity delay, update-rate delay, and their max-combination
  on one mixed workload. The fixed baseline is calibrated to charge the
  adversary the *same* total as the popularity scheme, making the
  median-user cost of naivety directly visible.
* **Beta (eq. 1)** — the operator's extra penalty exponent: how the
  adversary/user ratio grows with β, capped and uncapped.
* **Adaptive decay (§2.3)** — on a phase-shifting workload, the
  multi-decay adaptive tracker should approach the best fixed decay
  without knowing the dynamics in advance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..attacks.adversary import ExtractionAdversary
from ..core.config import GuardConfig
from ..core.counts import InMemoryCountStore
from ..core.delay_policy import PopularityDelayPolicy
from ..core.popularity import AdaptiveTracker, PopularityTracker
from ..sim.experiment import ResultTable, build_guarded_items
from ..sim.metrics import format_ratio, format_seconds
from ..sim.simulator import TraceReplayer
from ..workloads.generators import (
    make_zipf_query_trace,
    make_zipf_update_trace,
)
from ..workloads.traces import Trace, interleave
from .common import scaled


# -- count stores ------------------------------------------------------------


@dataclass
class StoreAblationRow:
    """One count-store backend's cost/accuracy point."""

    store: str
    replay_seconds: float  # wall time to replay the workload
    median_user_delay: float
    adversary_delay: float
    adversary_error: float  # relative to the exact store
    tracked_keys: int
    backing_io: Optional[int] = None  # write-behind only


@dataclass
class StoreAblationResult:
    """All rows of the count-store ablation."""

    rows: List[StoreAblationRow]
    population: int
    requests: int

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — Count Store Backends (§4.4)",
            columns=(
                "store", "replay wall (s)", "median delay",
                "adversary delay", "adv. error", "counters", "backing I/O",
            ),
            note=f"{self.requests:,} requests over {self.population:,} tuples",
        )
        for row in self.rows:
            table.add_row(
                row.store,
                f"{row.replay_seconds:.2f}",
                format_seconds(row.median_user_delay),
                format_seconds(row.adversary_delay),
                f"{row.adversary_error:+.2%}",
                str(row.tracked_keys),
                "-" if row.backing_io is None else str(row.backing_io),
            )
        return table


def run_store_ablation(
    scale: float = 1.0,
    population: int = 10_000,
    requests: int = 200_000,
    cap: float = 10.0,
    seed: int = 71,
) -> StoreAblationResult:
    """Replay one workload under each count-store backend."""
    population = scaled(population, scale, minimum=50)
    requests = scaled(requests, scale, minimum=500)
    trace = make_zipf_query_trace(
        population, requests, alpha=1.5, seed=seed
    )
    rows: List[StoreAblationRow] = []
    exact_total: Optional[float] = None
    for store in ("memory", "write_behind", "space_saving"):
        config = GuardConfig(
            cap=cap,
            count_store=store,
            count_cache_size=max(64, population // 10),
            count_capacity=max(64, population // 10),
        )
        fixture = build_guarded_items(population, config=config)
        started = time.perf_counter()
        report = TraceReplayer(fixture.guard, fixture.table).replay(trace)
        elapsed = time.perf_counter() - started
        extraction = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        ).estimate()
        if exact_total is None:
            exact_total = extraction.total_delay
        backing = None
        count_store = fixture.guard.popularity.store
        if hasattr(count_store, "backing_reads"):
            backing = count_store.backing_reads + count_store.backing_writes
        rows.append(
            StoreAblationRow(
                store=store,
                replay_seconds=elapsed,
                median_user_delay=report.median_delay,
                adversary_delay=extraction.total_delay,
                adversary_error=(
                    (extraction.total_delay - exact_total) / exact_total
                ),
                tracked_keys=len(count_store),
                backing_io=backing,
            )
        )
    return StoreAblationResult(
        rows=rows, population=population, requests=requests
    )


# -- policies ------------------------------------------------------------------


@dataclass
class PolicyAblationRow:
    """One policy's user-cost / adversary-cost point."""

    policy: str
    median_user_delay: float
    adversary_delay: float

    @property
    def ratio(self) -> float:
        """Adversary delay over median user delay."""
        if self.median_user_delay == 0:
            return float("inf")
        return self.adversary_delay / self.median_user_delay


@dataclass
class PolicyAblationResult:
    """All rows of the policy ablation."""

    rows: List[PolicyAblationRow]
    population: int

    def row(self, policy: str) -> PolicyAblationRow:
        """Look up one policy's row."""
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(policy)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — Delay Policies vs the Naive Baseline",
            columns=(
                "policy", "median user delay", "adversary delay",
                "adversary/user ratio",
            ),
            note=(
                "fixed baseline calibrated to the popularity scheme's "
                "adversary delay"
            ),
        )
        for row in self.rows:
            table.add_row(
                row.policy,
                format_seconds(row.median_user_delay),
                format_seconds(row.adversary_delay),
                format_ratio(row.ratio),
            )
        return table


def run_policy_ablation(
    scale: float = 1.0,
    population: int = 10_000,
    requests: int = 150_000,
    updates: int = 50_000,
    cap: float = 10.0,
    seed: int = 72,
) -> PolicyAblationResult:
    """One mixed workload, five policies, one comparison table."""
    population = scaled(population, scale, minimum=50)
    requests = scaled(requests, scale, minimum=500)
    updates = scaled(updates, scale, minimum=200)
    queries = make_zipf_query_trace(
        population, requests, alpha=1.2, seed=seed
    )
    update_trace = make_zipf_update_trace(
        population, updates, alpha=1.0, seed=seed + 1, total_rate=10.0
    )
    workload = interleave([queries, update_trace])

    def measure(config: GuardConfig) -> Tuple[float, float]:
        fixture = build_guarded_items(population, config=config)
        report = TraceReplayer(fixture.guard, fixture.table).replay(workload)
        extraction = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        ).estimate()
        return report.median_delay, extraction.total_delay

    rows: List[PolicyAblationRow] = []
    median, adversary = measure(GuardConfig(policy="popularity", cap=cap))
    rows.append(PolicyAblationRow("popularity", median, adversary))
    popularity_adversary = adversary

    # Naive baseline: same adversary total, spread uniformly.
    fixed = popularity_adversary / population
    median, adversary = measure(
        GuardConfig(policy="fixed", fixed_delay=fixed, cap=cap)
    )
    rows.append(PolicyAblationRow("fixed (calibrated)", median, adversary))

    median, adversary = measure(
        GuardConfig(policy="update", update_c=2.0, cap=cap)
    )
    rows.append(PolicyAblationRow("update-rate", median, adversary))

    median, adversary = measure(
        GuardConfig(policy="both", update_c=2.0, cap=cap)
    )
    rows.append(PolicyAblationRow("both (max)", median, adversary))

    median, adversary = measure(GuardConfig(policy="none", cap=cap))
    rows.append(PolicyAblationRow("none", median, adversary))

    return PolicyAblationResult(rows=rows, population=population)


# -- beta sweep ------------------------------------------------------------------


@dataclass
class BetaAblationRow:
    """One β value's outcome (capped and uncapped)."""

    beta: float
    median_user_delay: float
    adversary_delay: float
    uncapped_adversary_delay: float

    @property
    def ratio(self) -> float:
        """Capped adversary/user ratio."""
        if self.median_user_delay == 0:
            return float("inf")
        return self.adversary_delay / self.median_user_delay


@dataclass
class BetaAblationResult:
    """All rows of the β sweep."""

    rows: List[BetaAblationRow]
    population: int

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — Penalty Exponent Beta (eq. 1)",
            columns=(
                "beta", "median delay", "adversary (capped)",
                "adversary (uncapped)", "ratio (capped)",
            ),
        )
        for row in self.rows:
            table.add_row(
                f"{row.beta:.2f}",
                format_seconds(row.median_user_delay),
                format_seconds(row.adversary_delay),
                format_seconds(row.uncapped_adversary_delay),
                format_ratio(row.ratio),
            )
        return table


def run_beta_ablation(
    scale: float = 1.0,
    population: int = 5_000,
    requests: int = 100_000,
    betas: Sequence[float] = (0.0, 0.25, 0.5, 1.0),
    cap: float = 10.0,
    seed: int = 73,
) -> BetaAblationResult:
    """Sweep β over one learned distribution."""
    population = scaled(population, scale, minimum=50)
    requests = scaled(requests, scale, minimum=500)
    trace = make_zipf_query_trace(
        population, requests, alpha=1.0, seed=seed
    )
    # Learn once; β only affects the policy arithmetic.
    fixture = build_guarded_items(population, config=GuardConfig(cap=cap))
    TraceReplayer(fixture.guard, fixture.table).replay(trace)
    tracker = fixture.guard.popularity
    heap = fixture.database.catalog.table(fixture.table)
    keys = [(fixture.table, rowid) for rowid in heap.rowids()]

    rows: List[BetaAblationRow] = []
    for beta in betas:
        capped = PopularityDelayPolicy(
            tracker, population=population, cap=cap, beta=beta
        )
        uncapped = PopularityDelayPolicy(
            tracker, population=population, cap=None, beta=beta,
            uncapped_cold=cap,
        )
        capped_delays = [capped.delay_for(key) for key in keys]
        uncapped_delays = [uncapped.delay_for(key) for key in keys]
        # Median user delay: weight per-tuple delays by popularity.
        weights = np.array(
            [max(tracker.popularity(key), 0.0) for key in keys]
        )
        order = np.argsort(capped_delays)
        cumulative = np.cumsum(weights[order])
        median_position = int(
            np.searchsorted(cumulative, cumulative[-1] / 2.0)
        )
        median = capped_delays[int(order[median_position])]
        rows.append(
            BetaAblationRow(
                beta=beta,
                median_user_delay=median,
                adversary_delay=float(np.sum(capped_delays)),
                uncapped_adversary_delay=float(np.sum(uncapped_delays)),
            )
        )
    return BetaAblationResult(rows=rows, population=population)


# -- adaptive decay -----------------------------------------------------------------


@dataclass
class AdaptiveAblationRow:
    """One tracker configuration's cost on the shifting workload."""

    tracker: str
    median_user_delay: float


@dataclass
class AdaptiveAblationResult:
    """All rows of the adaptive-decay ablation."""

    rows: List[AdaptiveAblationRow]
    selected_rate: float

    def row(self, name: str) -> AdaptiveAblationRow:
        """Look up one configuration's row."""
        for row in self.rows:
            if row.tracker == name:
                return row
        raise KeyError(name)

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Ablation — Fixed vs Adaptive Decay (§2.3)",
            columns=("tracker", "median user delay"),
            note=f"adaptive selected decay {self.selected_rate}",
        )
        for row in self.rows:
            table.add_row(
                row.tracker, format_seconds(row.median_user_delay)
            )
        return table


def _shifting_trace(
    population: int, phases: int, per_phase: int, seed: int
) -> Trace:
    """Popularity jumps to a fresh random hot set every phase."""
    rng = np.random.default_rng(seed)
    trace = Trace(population=population, name="shifting")
    hot_size = max(2, population // 50)
    for _phase in range(phases):
        hot = rng.choice(population, size=hot_size, replace=False) + 1
        draws = rng.choice(hot, size=per_phase)
        for item in draws:
            trace.add_query(int(item))
    return trace


def run_adaptive_ablation(
    scale: float = 1.0,
    population: int = 2_000,
    phases: int = 40,
    per_phase: int = 2_500,
    cap: float = 10.0,
    decay_rates: Sequence[float] = (1.0, 1.001, 1.01),
    seed: int = 74,
) -> AdaptiveAblationResult:
    """Compare fixed decay rates against the adaptive tracker."""
    population = scaled(population, scale, minimum=100)
    per_phase = scaled(per_phase, scale, minimum=50)
    trace = _shifting_trace(population, phases, per_phase, seed)

    # Popularity mode "decayed" isolates the *relevance* effect of the
    # decay term: with the paper's "raw" normalisation, any strong decay
    # uniformly deflates popularity estimates (the Table 3 mechanism),
    # which would mask what this ablation measures.
    def median_under(tracker) -> float:
        policy = PopularityDelayPolicy(
            tracker, population=population, cap=cap, mode="decayed"
        )
        delays = []
        for event in trace:
            delay = policy.delay_for(event.item)
            tracker.record(event.item)
            delays.append(delay)
        delays.sort()
        return delays[len(delays) // 2]

    rows: List[AdaptiveAblationRow] = []
    for rate in decay_rates:
        tracker = PopularityTracker(
            store=InMemoryCountStore(), decay_rate=rate
        )
        rows.append(
            AdaptiveAblationRow(
                tracker=f"fixed decay {rate}",
                median_user_delay=median_under(tracker),
            )
        )
    adaptive = AdaptiveTracker(list(decay_rates), score_smoothing=0.02)
    rows.append(
        AdaptiveAblationRow(
            tracker="adaptive",
            median_user_delay=median_under(adaptive),
        )
    )
    return AdaptiveAblationResult(
        rows=rows, selected_rate=adaptive.active_rate
    )
