"""Table 3: decay-rate sweep on the Calgary trace (§4.1).

The Calgary trace's popularity distribution is static, so history helps:
no decay (rate 1.0) yields the lowest median user delay, and increasing
the per-request decay rate inflates median delays by orders of magnitude
while the adversary's total barely moves (it is dominated by capped
cold tuples either way). The paper reports medians from 15.4 ms (decay
1.0) to 2,241.6 ms (decay 1.00002) with adversary delay pinned between
30.17 and 33.61 hours — about 90% of the N·d_max bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..attacks.adversary import ExtractionAdversary
from ..core.config import GuardConfig
from ..sim.experiment import ResultTable, build_guarded_items
from ..sim.metrics import format_seconds
from ..sim.simulator import TraceReplayer
from ..workloads.calgary import CalgaryDataset, generate_calgary
from .common import scaled

PAPER_DECAYS = (1.0, 1.000001, 1.000002, 1.000005, 1.00001, 1.00002)
PAPER_MEDIANS_MS = (15.4, 24.9, 38.3, 118.6, 421.4, 2241.6)
PAPER_ADVERSARY_HOURS = (30.17, 31.06, 31.75, 32.76, 33.27, 33.61)


@dataclass
class Table3Row:
    """Outcome for one decay rate."""

    decay: float
    median_user_delay: float
    adversary_delay: float

    @property
    def adversary_hours(self) -> float:
        """Adversary delay in hours."""
        return self.adversary_delay / 3600.0


@dataclass
class Table3Result:
    """All rows of Table 3 plus the cap bound for context."""

    rows: List[Table3Row]
    max_extraction_delay: float

    def to_table(self) -> ResultTable:
        table = ResultTable(
            title="Table 3 — Delays in Calgary-like Trace (decay sweep)",
            columns=("decay rate", "median user delay", "adversary delay"),
            note=(
                f"N*d_max bound = "
                f"{self.max_extraction_delay / 3600.0:.2f} h; paper medians "
                f"{PAPER_MEDIANS_MS[0]}..{PAPER_MEDIANS_MS[-1]} ms"
            ),
        )
        for row in self.rows:
            table.add_row(
                f"{row.decay:.6f}",
                format_seconds(row.median_user_delay),
                f"{row.adversary_hours:.2f} h",
            )
        return table


def run_table3(
    scale: float = 1.0,
    decays: Sequence[float] = PAPER_DECAYS,
    cap: float = 10.0,
    seed: int = 2004,
) -> Table3Result:
    """Replay the full trace once per decay rate; extract post-trace.

    When ``scale`` shrinks the trace, decay rates are amplified to keep
    the *effective history window in requests* proportionally matched:
    a decay of γ over the full 725k-request trace corresponds to
    γ^(1/scale) over a scale-times-shorter trace.
    """
    dataset = generate_calgary(
        num_objects=scaled(12_179, scale),
        num_requests=scaled(725_091, scale),
        seed=seed,
    )
    effective = [decay ** (1.0 / scale) for decay in decays]
    rows: List[Table3Row] = []
    max_bound = 0.0
    for shown, decay in zip(decays, effective):
        fixture = build_guarded_items(
            dataset.population,
            config=GuardConfig(cap=cap, decay_rate=decay),
        )
        report = TraceReplayer(fixture.guard, fixture.table).replay(
            dataset.trace
        )
        extraction = ExtractionAdversary(
            fixture.guard, fixture.table, record=False
        ).estimate()
        rows.append(
            Table3Row(
                decay=shown,
                median_user_delay=report.median_delay,
                adversary_delay=extraction.total_delay,
            )
        )
        max_bound = fixture.guard.max_extraction_cost(fixture.table)
    return Table3Result(rows=rows, max_extraction_delay=max_bound)
