"""Count stores: the storage backends for per-tuple access counts.

The paper (§2.3, §4.4) tracks a count per tuple but warns that a naive
count attribute turns every read into a read-modify-write. It proposes a
small *write-behind cache* of tuple counts and cites Gibbons' sampling
for synopsis as a way to shrink the overhead further. This module
provides all three storage strategies behind one interface:

* :class:`InMemoryCountStore` — exact counts in a dict (the default).
* :class:`WriteBehindCountStore` — exact counts with a bounded dirty
  cache in front of a backing store, counting simulated I/O so the
  overhead experiments (Table 5) can report cache behaviour.
* :class:`CountingSampleStore` — Gibbons & Matias counting samples:
  bounded-memory approximate counts for unit increments.
* :class:`SpaceSavingStore` — bounded-memory approximate counts that
  also accept weighted (decayed) increments, with the classic
  Space-Saving error bound ``error <= total_weight / capacity``.

All stores hold float weights: the popularity tracker layers exponential
decay on top by inflating increments (see :mod:`repro.core.popularity`).

Every store is thread-safe: an internal re-entrant lock makes each
``add``/``get``/``scale``/``clear`` atomic, and ``items()`` iterates a
snapshot taken under the lock so concurrent writers never invalidate an
in-progress iteration. Read-modify-write sequences *across* calls (e.g.
the popularity tracker's record bookkeeping) still need the caller's own
lock on top.

Replication: every store carries a monotonic *version* counter bumped on
each mutation, remembers the version at which each key last changed, and
exposes ``delta_since(version)`` / ``merge(delta)``. A delta carries the
*current* value of every key changed after the requested version, tagged
with its change version; merging adopts an entry only when its version
is newer than the local one for that key. Within a single origin's
history (versions totally ordered, value a function of version) this is
a per-key join, so merge is commutative, associative, and idempotent —
the property the cluster's anti-entropy gossip relies on.
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, Optional, Tuple

from .errors import ConfigError

Key = int  # tuple identifier (engine rowid, or any hashable id)


class CountStore:
    """Interface for count storage backends."""

    #: True if get() returns exact accumulated weights.
    exact = True

    def _init_versioning(self) -> None:
        """Set up change tracking; concrete stores call this in __init__."""
        self._version = 0
        self._changed: Dict[Key, int] = {}

    def _note_change(self, key: Key) -> None:
        """Record one mutation of ``key``; caller holds the store lock."""
        self._version += 1
        self._changed[key] = self._version

    def _note_rescale(self) -> None:
        """Every key changed at once (one version); lock held by caller."""
        self._version += 1
        for key, _ in self.items():
            self._changed[key] = self._version

    @property
    def version(self) -> int:
        """Monotonic mutation counter (grows by at least 1 per change)."""
        return self._version

    def mark_all_changed(self) -> None:
        """Re-stamp every key at a fresh version (forces re-replication).

        The popularity tracker calls this when the *interpretation* of
        every stored weight changes at once (period-boundary decay): the
        values did not move, but their present-scale masses did, so
        peers must receive them again.
        """
        with self._lock:
            self._note_rescale()

    def advance_version(self, floor: int) -> None:
        """Raise the version counter to at least ``floor`` (never lower).

        Used after restoring a snapshot: post-recovery changes must
        outrank anything a peer mirrors back from before the crash.
        """
        with self._lock:
            if floor > self._version:
                self._version = floor

    def add(self, key: Key, amount: float = 1.0) -> None:
        """Accumulate ``amount`` of weight onto ``key``."""
        raise NotImplementedError

    def get(self, key: Key) -> float:
        """Return the (possibly estimated) weight of ``key``; 0 if unseen."""
        raise NotImplementedError

    def items(self) -> Iterator[Tuple[Key, float]]:
        """Iterate over (key, weight) for every tracked key."""
        raise NotImplementedError

    def scale(self, factor: float) -> None:
        """Multiply every stored weight by ``factor`` (renormalisation)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop all counts."""
        raise NotImplementedError

    def delta_since(self, version: int = 0) -> Dict:
        """Current value + change version of every key changed after
        ``version``, plus the store's own version high-water mark."""
        with self._lock:
            return {
                "version": self._version,
                "entries": [
                    [key, self.get(key), changed_at]
                    for key, changed_at in self._changed.items()
                    if changed_at > version
                ],
            }

    def merge(self, delta: Dict) -> int:
        """Adopt every delta entry newer than the local copy of its key.

        Entries carry absolute values, not increments, so re-merging the
        same delta is a no-op (idempotent) and merge order between deltas
        of one origin cannot matter (per-key last-version-wins join).
        Returns the number of entries adopted.
        """
        adopted = 0
        with self._lock:
            for key, weight, changed_at in delta.get("entries", ()):
                if isinstance(key, list):
                    key = tuple(key)
                if changed_at <= self._changed.get(key, 0):
                    continue
                self.add(key, weight - self.get(key))
                # add() minted a fresh local version; pin the entry to the
                # delta's version instead so the join stays idempotent.
                self._changed[key] = changed_at
                adopted += 1
            self._version = max(self._version, delta.get("version", 0))
        return adopted

    def metrics(self) -> Dict[str, float]:
        """Backend statistics for observability gauges.

        Every store reports ``entries`` (tracked keys); backends add
        their own (cache sizes, simulated I/O counters, thresholds).
        Keys are stable snake_case names suitable for metric suffixes.
        """
        return {"entries": float(len(self))}

    def __len__(self) -> int:
        raise NotImplementedError


class InMemoryCountStore(CountStore):
    """Exact counts in a plain dict."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counts: Dict[Key, float] = {}
        self._init_versioning()

    def add(self, key: Key, amount: float = 1.0) -> None:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0.0) + amount
            self._note_change(key)

    def get(self, key: Key) -> float:
        with self._lock:
            return self._counts.get(key, 0.0)

    def items(self) -> Iterator[Tuple[Key, float]]:
        with self._lock:
            return iter(list(self._counts.items()))

    def scale(self, factor: float) -> None:
        with self._lock:
            for key in self._counts:
                self._counts[key] *= factor
            self._note_rescale()

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self._version += 1
            self._changed.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._counts)


class WriteBehindCountStore(CountStore):
    """Exact counts with a bounded write-behind cache (§4.4).

    Mutations land in an LRU cache of at most ``cache_size`` entries;
    when the cache overflows, the least-recently-used dirty entry is
    flushed to the backing store. The backing store here is a dict
    standing in for disk; ``backing_reads``/``backing_writes`` count the
    simulated I/O so experiments can report the cache's effectiveness.
    """

    def __init__(self, cache_size: int = 1024):
        if cache_size < 1:
            raise ConfigError(f"cache_size must be >= 1, got {cache_size}")
        self.cache_size = cache_size
        self._lock = threading.RLock()
        self._cache: "OrderedDict[Key, float]" = OrderedDict()
        self._dirty: Dict[Key, bool] = {}
        self._backing: Dict[Key, float] = {}
        self._init_versioning()
        #: simulated I/O counters
        self.backing_reads = 0
        self.backing_writes = 0

    def _load(self, key: Key) -> float:
        """Bring ``key`` into the cache, evicting if necessary."""
        if key in self._cache:
            self._cache.move_to_end(key)
            return self._cache[key]
        self.backing_reads += 1
        value = self._backing.get(key, 0.0)
        self._cache[key] = value
        self._dirty[key] = False
        self._cache.move_to_end(key)
        self._evict_if_needed()
        return value

    def _evict_if_needed(self) -> None:
        while len(self._cache) > self.cache_size:
            victim, value = self._cache.popitem(last=False)
            if self._dirty.pop(victim, False):
                self._backing[victim] = value
                self.backing_writes += 1

    def add(self, key: Key, amount: float = 1.0) -> None:
        with self._lock:
            value = self._load(key)
            self._cache[key] = value + amount
            self._dirty[key] = True
            self._note_change(key)

    def get(self, key: Key) -> float:
        with self._lock:
            return self._load(key)

    def flush(self) -> None:
        """Write every dirty cached entry through to the backing store."""
        with self._lock:
            for key, value in self._cache.items():
                if self._dirty.get(key):
                    self._backing[key] = value
                    self.backing_writes += 1
                    self._dirty[key] = False

    def items(self) -> Iterator[Tuple[Key, float]]:
        with self._lock:
            self.flush()
            if not self._cache:
                return iter(list(self._backing.items()))
            return iter(
                list({**self._backing, **dict(self._cache)}.items())
            )

    def scale(self, factor: float) -> None:
        with self._lock:
            self.flush()
            for key in self._backing:
                self._backing[key] *= factor
            for key in self._cache:
                self._cache[key] *= factor
            self._note_rescale()

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self._dirty.clear()
            self._backing.clear()
            self._version += 1
            self._changed.clear()
            # A cleared store must look factory-fresh: stale I/O counters
            # would report phantom cache traffic for the next experiment.
            self.backing_reads = 0
            self.backing_writes = 0

    def metrics(self) -> Dict[str, float]:
        with self._lock:
            dirty = sum(1 for flag in self._dirty.values() if flag)
            return {
                "entries": float(len(self)),
                "cache_entries": float(len(self._cache)),
                "dirty_entries": float(dirty),
                "backing_entries": float(len(self._backing)),
                "backing_reads": float(self.backing_reads),
                "backing_writes": float(self.backing_writes),
            }

    def __len__(self) -> int:
        with self._lock:
            keys = set(self._backing)
            keys.update(self._cache)
            return len(keys)


class CountingSampleStore(CountStore):
    """Gibbons & Matias counting samples (SIGMOD 1998), cited in §4.4.

    Keeps at most ``capacity`` counters. A key not in the sample enters
    with probability ``1/tau``; once present, every subsequent hit is
    counted exactly. When the sample overflows, the threshold ``tau`` is
    raised and existing entries are probabilistically decimated, which
    preserves the invariant that each tracked count is distributed as if
    the higher threshold had been in force all along.

    Only unit increments are supported (``amount`` must be 1); weighted
    decay does not compose with the entry-coin semantics. Use
    :class:`SpaceSavingStore` for decayed tracking under a memory bound.

    ``get`` returns the standard frequency estimate ``count + tau - 1``
    for tracked keys (the expected number of hits missed before entry).
    """

    exact = False

    def __init__(
        self,
        capacity: int = 1024,
        growth: float = 1.5,
        seed: Optional[int] = None,
    ):
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if growth <= 1.0:
            raise ConfigError(f"growth must exceed 1.0, got {growth}")
        self.capacity = capacity
        self.growth = growth
        self.tau = 1.0
        self._lock = threading.RLock()
        self._counts: Dict[Key, float] = {}
        self._rng = random.Random(seed)
        self._init_versioning()

    def add(self, key: Key, amount: float = 1.0) -> None:
        if amount != 1.0:
            raise ConfigError(
                "CountingSampleStore only supports unit increments; "
                "use SpaceSavingStore for weighted counts"
            )
        with self._lock:
            if key in self._counts:
                self._counts[key] += 1.0
                self._note_change(key)
                return
            if self._rng.random() < 1.0 / self.tau:
                self._counts[key] = 1.0
                self._note_change(key)
                if len(self._counts) > self.capacity:
                    self._raise_threshold()
                    self._note_rescale()

    def _raise_threshold(self) -> None:
        """Decimate the sample until it fits, raising ``tau`` each round."""
        while len(self._counts) > self.capacity:
            old_tau, new_tau = self.tau, self.tau * self.growth
            keep_probability = old_tau / new_tau
            for key in list(self._counts):
                count = self._counts[key]
                # Retest the entry coin: with probability old/new the
                # entry survives intact; otherwise strip hits one at a
                # time, each surviving re-entry with probability 1/new.
                if self._rng.random() < keep_probability:
                    continue
                count -= 1.0
                while count > 0 and self._rng.random() >= 1.0 / new_tau:
                    count -= 1.0
                if count > 0:
                    self._counts[key] = count
                else:
                    del self._counts[key]
            self.tau = new_tau

    def get(self, key: Key) -> float:
        with self._lock:
            count = self._counts.get(key)
            if count is None:
                return 0.0
            return count + self.tau - 1.0

    def items(self) -> Iterator[Tuple[Key, float]]:
        with self._lock:
            adjustment = self.tau - 1.0
            return iter(
                [
                    (key, count + adjustment)
                    for key, count in self._counts.items()
                ]
            )

    def scale(self, factor: float) -> None:
        raise ConfigError(
            "CountingSampleStore cannot be rescaled; it is incompatible "
            "with decayed tracking"
        )

    def merge(self, delta: Dict) -> int:
        raise ConfigError(
            "CountingSampleStore cannot merge deltas (entry coins do not "
            "compose); use an exact store for clustered deployments"
        )

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self.tau = 1.0
            self._version += 1
            self._changed.clear()

    def metrics(self) -> Dict[str, float]:
        with self._lock:
            return {
                "entries": float(len(self._counts)),
                "capacity": float(self.capacity),
                "tau": float(self.tau),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._counts)


class SpaceSavingStore(CountStore):
    """Space-Saving synopsis (Metwally et al.): bounded weighted counts.

    Tracks at most ``capacity`` keys. A new key evicts the current
    minimum, inheriting its weight as overestimation error. Guarantees
    ``true_weight <= get(key) <= true_weight + total_weight/capacity``
    for tracked keys, which preserves popularity *ranking* well for the
    skewed workloads this library targets. Supports weighted increments,
    so it composes with exponential decay.
    """

    exact = False

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._counts: Dict[Key, float] = {}
        self._init_versioning()

    def add(self, key: Key, amount: float = 1.0) -> None:
        with self._lock:
            if key in self._counts:
                self._counts[key] += amount
                self._note_change(key)
                return
            if len(self._counts) < self.capacity:
                self._counts[key] = amount
                self._note_change(key)
                return
            victim = min(self._counts, key=self._counts.get)  # type: ignore[arg-type]
            inherited = self._counts.pop(victim)
            self._counts[key] = inherited + amount
            self._note_change(victim)
            self._note_change(key)

    def get(self, key: Key) -> float:
        with self._lock:
            return self._counts.get(key, 0.0)

    def items(self) -> Iterator[Tuple[Key, float]]:
        with self._lock:
            return iter(list(self._counts.items()))

    def scale(self, factor: float) -> None:
        with self._lock:
            for key in self._counts:
                self._counts[key] *= factor
            self._note_rescale()

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self._version += 1
            self._changed.clear()

    def metrics(self) -> Dict[str, float]:
        with self._lock:
            return {
                "entries": float(len(self._counts)),
                "capacity": float(self.capacity),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._counts)
