"""The delay guard: the paper's defense as a query front door.

:class:`DelayGuard` wraps a :class:`repro.engine.Database` without
modifying it. Every query passes through the guard, which

1. authorizes the caller (registration, quotas, subnet limits — §2.4),
2. executes the statement on the engine,
3. charges a delay for each returned tuple per the configured policy
   (§2 popularity / §3 update rate), sleeping on the configured clock,
4. records the accesses and updates into the trackers that future
   delays are computed from (§2.3 learning).

Delays are computed from the counts *as they were before the query*, so
a tuple's first-ever retrieval is always charged the cold-start cap.
"""

from __future__ import annotations

import math
import statistics
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..engine.database import Database
from ..engine.executor import ResultSet
from .accounts import AccountManager
from .clock import Clock, VirtualClock
from .config import GuardConfig
from .counts import (
    CountingSampleStore,
    CountStore,
    InMemoryCountStore,
    SpaceSavingStore,
    WriteBehindCountStore,
)
from .delay_policy import (
    CompositeDelayPolicy,
    DelayPolicy,
    FixedDelayPolicy,
    NoDelayPolicy,
    PopularityDelayPolicy,
    UpdateRateDelayPolicy,
)
from .errors import AccessDenied, ConfigError
from .popularity import PopularityTracker
from .update_tracker import UpdateRateTracker

#: Guard-level tuple key: (lower-cased table name, rowid).
TupleKey = Tuple[str, int]


@dataclass
class GuardedResult:
    """A query result annotated with the delay that was charged."""

    result: ResultSet
    delay: float
    per_tuple_delays: List[float] = field(default_factory=list)
    identity: Optional[str] = None

    @property
    def rows(self):
        """The underlying result rows."""
        return self.result.rows


@dataclass
class GuardStats:
    """Aggregate guard behaviour, used by the evaluation harness.

    Thread-safe for concurrent serving: the ``note_*`` methods take an
    internal lock so each logical event (a denial, a served SELECT, a
    finished query) lands atomically even when many handler threads
    share one guard. The fields stay public for single-threaded readers
    (experiments, reports).
    """

    queries: int = 0
    selects: int = 0
    tuples_charged: int = 0
    total_delay: float = 0.0
    denied: int = 0
    select_delays: List[float] = field(default_factory=list)
    engine_seconds: float = 0.0
    accounting_seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # -- atomic recording ---------------------------------------------------

    def note_denied(self) -> None:
        """Count one refused query."""
        with self._lock:
            self.denied += 1

    def note_select(self, delay: float, tuples: int) -> None:
        """Count one served SELECT and the tuples it was charged for."""
        with self._lock:
            self.selects += 1
            self.select_delays.append(delay)
            self.tuples_charged += tuples

    def note_query(
        self,
        delay: float,
        engine_seconds: float,
        accounting_seconds: float,
    ) -> None:
        """Count one finished statement with its timing buckets."""
        with self._lock:
            self.queries += 1
            self.total_delay += delay
            self.engine_seconds += engine_seconds
            self.accounting_seconds += accounting_seconds

    # -- summaries ----------------------------------------------------------

    def median_delay(self) -> float:
        """Median per-SELECT delay (the paper's headline user metric)."""
        with self._lock:
            delays = list(self.select_delays)
        if not delays:
            return 0.0
        return statistics.median(delays)

    def quantile_delay(self, q: float) -> float:
        """Delay at quantile ``q`` in [0, 1] over SELECT queries.

        Nearest-rank: the smallest delay d such that at least ``q`` of
        the observations are <= d (q=0 gives the minimum, q=1 the max).
        """
        if not 0 <= q <= 1:
            raise ConfigError(f"quantile must be in [0,1], got {q}")
        with self._lock:
            delays = list(self.select_delays)
        if not delays:
            return 0.0
        ordered = sorted(delays)
        position = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[position]

    def overhead_fraction(self) -> float:
        """Accounting cost relative to raw engine cost (Table 5 metric)."""
        if self.engine_seconds == 0:
            return 0.0
        return self.accounting_seconds / self.engine_seconds


class DelayGuard:
    """Wraps a database so every retrieval pays its popularity price.

    Args:
        database: the engine to protect.
        config: declarative configuration (see :class:`GuardConfig`).
        clock: time source; defaults to a fresh :class:`VirtualClock`
            so tests and benchmarks never actually block.
        policy: a pre-built policy, overriding ``config.policy``.
        accounts: an :class:`AccountManager` enforcing §2.4 defenses;
            when provided, ``execute`` requires a registered identity.

    >>> from repro.engine import Database
    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    >>> guard = DelayGuard(db, config=GuardConfig(cap=5.0))
    >>> first = guard.execute("SELECT * FROM t WHERE id = 1")
    >>> first.delay  # cold start: the cap
    5.0
    """

    def __init__(
        self,
        database: Database,
        config: Optional[GuardConfig] = None,
        clock: Optional[Clock] = None,
        policy: Optional[DelayPolicy] = None,
        accounts: Optional[AccountManager] = None,
    ):
        self.database = database
        self.config = (config if config is not None else GuardConfig()).validate()
        self.clock = clock if clock is not None else VirtualClock()
        self.accounts = accounts
        self.stats = GuardStats()
        self.popularity = PopularityTracker(
            store=self._build_store(), decay_rate=self.config.decay_rate
        )
        self.update_rates = UpdateRateTracker(
            clock=self.clock, time_constant=self.config.update_time_constant
        )
        #: key -> clock time of last update (for staleness evaluation).
        self.last_update_times: Dict[TupleKey, float] = {}
        self.policy = policy if policy is not None else self._build_policy()

    # -- construction helpers ----------------------------------------------

    def _build_store(self) -> CountStore:
        kind = self.config.count_store
        if kind == "memory":
            return InMemoryCountStore()
        if kind == "write_behind":
            return WriteBehindCountStore(cache_size=self.config.count_cache_size)
        if kind == "space_saving":
            return SpaceSavingStore(capacity=self.config.count_capacity)
        if kind == "counting_sample":
            return CountingSampleStore(capacity=self.config.count_capacity)
        raise ConfigError(f"unknown count store {kind!r}")  # pragma: no cover

    def _build_policy(self) -> DelayPolicy:
        config = self.config
        if config.policy == "none":
            return NoDelayPolicy()
        if config.policy == "fixed":
            return FixedDelayPolicy(config.fixed_delay)
        popularity = PopularityDelayPolicy(
            tracker=self.popularity,
            population=self.population,
            cap=config.cap,
            beta=config.beta,
            unit=config.unit,
            mode=config.popularity_mode,
        )
        if config.policy == "popularity":
            return popularity
        update = UpdateRateDelayPolicy(
            tracker=self.update_rates,
            population=self.population,
            c=config.update_c,
            cap=config.cap,
        )
        if config.policy == "update":
            return update
        return CompositeDelayPolicy([popularity, update], combine="max")

    # -- sizing ----------------------------------------------------------------

    def population(self) -> int:
        """Total protected tuples (N in the paper's formulas)."""
        total = 0
        for name in self.database.catalog.table_names():
            total += len(self.database.catalog.table(name))
        return max(total, 1)

    # -- the front door -----------------------------------------------------

    def execute(
        self,
        sql_or_statement: Union[str, object],
        identity: Optional[str] = None,
        record: bool = True,
        sleep: bool = True,
    ) -> GuardedResult:
        """Execute a statement, charging and applying its delay.

        Args:
            sql_or_statement: SQL text or a pre-parsed statement.
            identity: registered identity, required when the guard has
                an :class:`AccountManager` attached.
            record: whether this query's accesses feed the popularity
                counts (experiments replaying an adversary against a
                frozen distribution pass False).
            sleep: whether to apply the delay on the guard's clock. The
                concurrent simulator passes False and schedules each
                session's own completion instead — with a single shared
                clock, sleeping inline would serialise the sessions.

        Raises:
            AccessDenied: if an account-level limit refuses the query.
        """
        accounting_start = time.perf_counter()
        if self.accounts is not None:
            if identity is None:
                raise ConfigError(
                    "this guard requires an identity for every query"
                )
            try:
                self.accounts.authorize_query(identity)
            except Exception:
                self.stats.note_denied()
                raise
        accounting = time.perf_counter() - accounting_start

        engine_start = time.perf_counter()
        result = self.database.execute(sql_or_statement)
        engine_elapsed = time.perf_counter() - engine_start

        accounting_start = time.perf_counter()
        delay = 0.0
        per_tuple: List[float] = []
        if result.statement_kind == "select" and result.table is not None:
            # §1.1's strawman result-size limit, kept as a baseline.
            # Enforced post-execution (the engine has already read the
            # rows) but pre-recording/charging: the caller gets nothing.
            limit = self.config.max_result_rows
            if limit is not None and len(result.rows) > limit:
                # The engine already did the work; fold its time (and the
                # accounting spent so far) into the Table 5 buckets even
                # though the caller gets nothing back.
                accounting += time.perf_counter() - accounting_start
                self.stats.note_denied()
                self.stats.note_query(0.0, engine_elapsed, accounting)
                raise AccessDenied("result_limit")
            # `touched` covers every contributing base tuple, across
            # joined tables; fall back to the driving table's rowids for
            # result sets produced without it.
            if result.touched:
                keys = list(result.touched)
            else:
                keys = [
                    (result.table.lower(), rowid) for rowid in result.rowids
                ]
            per_tuple = [self.policy.delay_for(key) for key in keys]
            if self.config.charge_returned_tuples:
                delay = sum(per_tuple)
            else:
                delay = max(per_tuple, default=0.0)
            if record and self.config.record_accesses:
                for key in keys:
                    self.popularity.record(key)
            if self.accounts is not None and identity is not None:
                self.accounts.record_retrieval(identity, len(keys))
            self.stats.note_select(delay, len(keys))
        elif result.statement_kind in ("insert", "update", "delete"):
            if self.config.record_updates and result.table is not None:
                now = self.clock.now()
                table_key = result.table.lower()
                for rowid in result.rowids:
                    key = (table_key, rowid)
                    self.update_rates.record_update(key)
                    self.last_update_times[key] = now
        accounting += time.perf_counter() - accounting_start

        self.stats.note_query(delay, engine_elapsed, accounting)

        if delay > 0 and sleep:
            self.clock.sleep(delay)
        return GuardedResult(
            result=result,
            delay=delay,
            per_tuple_delays=per_tuple,
            identity=identity,
        )

    # -- analysis hooks ----------------------------------------------------------

    def delay_for(self, table: str, rowid: int) -> float:
        """The delay the policy would charge for one tuple right now."""
        return self.policy.delay_for((table.lower(), rowid))

    def last_update_times_for(self, table: str) -> Dict:
        """Last-update times for one table, keyed by primary key value.

        Translates the guard's internal (table, rowid) keys into the
        table's primary-key domain so they can be matched against an
        adversary's extracted snapshot. Tables without a primary key
        are keyed by rowid.
        """
        heap = self.database.catalog.table(table)
        prefix = heap.name.lower()
        pk = heap.schema.primary_key
        pk_position = heap.schema.position(pk) if pk else None
        translated: Dict = {}
        for (name, rowid), when in self.last_update_times.items():
            if name != prefix:
                continue
            if pk_position is None:
                translated[rowid] = when
                continue
            row = heap.get(rowid)
            if row is not None:
                translated[row[pk_position]] = when
        return translated

    def extraction_cost(self, table: Optional[str] = None) -> float:
        """Total delay an adversary would pay to extract everything now.

        Computed statically from the current counts (the paper computes
        adversary delay this way in §4.1: "by examining the access
        counts after the trace was replayed"). Does not mutate state.
        """
        names = (
            [table]
            if table is not None
            else self.database.catalog.table_names()
        )
        total = 0.0
        for name in names:
            heap = self.database.catalog.table(name)
            key_prefix = heap.name.lower()
            for rowid in heap.rowids():
                total += self.policy.delay_for((key_prefix, rowid))
        return total

    def max_extraction_cost(self, table: Optional[str] = None) -> float:
        """The N·d_max bound: every tuple at the cap (needs a cap)."""
        if self.config.cap is None:
            raise ConfigError("max_extraction_cost requires a delay cap")
        if table is not None:
            n = len(self.database.catalog.table(table))
        else:
            n = self.population()
        return n * self.config.cap

    # -- state persistence ---------------------------------------------------

    def dump_state(self) -> Dict:
        """Serialise learned state to a JSON-compatible dictionary.

        Covers popularity counts (with their decay bookkeeping), the raw
        request totals, and last-update times — everything needed for a
        restarted guard to keep charging the same delays. Account state
        and statistics are not included.
        """
        counts = [
            [f"{table}:{rowid}", weight]
            for (table, rowid), weight in self.popularity.store.items()
        ]
        updates = [
            [f"{table}:{rowid}", when]
            for (table, rowid), when in self.last_update_times.items()
        ]
        return {
            "format": "repro-guard-v1",
            "decay_rate": self.popularity.decay_rate,
            "increment": self.popularity._increment,
            "raw_total": self.popularity._raw_total,
            "decayed_total": self.popularity._decayed_total,
            "counts": counts,
            "last_update_times": updates,
        }

    def load_state(self, payload: Dict) -> None:
        """Restore state produced by :meth:`dump_state`.

        The guard's configured decay rate must match the saved one
        (delays would silently change otherwise).
        """
        if payload.get("format") != "repro-guard-v1":
            raise ConfigError(
                f"unsupported guard state format {payload.get('format')!r}"
            )
        if payload["decay_rate"] != self.popularity.decay_rate:
            raise ConfigError(
                f"saved decay rate {payload['decay_rate']} does not match "
                f"configured {self.popularity.decay_rate}"
            )
        self.popularity.reset()
        self.popularity._increment = payload["increment"]
        self.popularity._raw_total = payload["raw_total"]
        self.popularity._decayed_total = payload["decayed_total"]
        for key_text, weight in payload["counts"]:
            table, _, rowid = key_text.partition(":")
            self.popularity.store.add((table, int(rowid)), weight)
        self.last_update_times.clear()
        for key_text, when in payload["last_update_times"]:
            table, _, rowid = key_text.partition(":")
            self.last_update_times[(table, int(rowid))] = when

    def __repr__(self) -> str:
        return (
            f"DelayGuard(policy={self.policy.describe()}, "
            f"queries={self.stats.queries})"
        )
