"""The delay guard: the paper's defense as a query front door.

:class:`DelayGuard` wraps a :class:`repro.engine.Database` without
modifying it. Every query passes through the guard, which

1. authorizes the caller (registration, quotas, subnet limits — §2.4),
2. executes the statement on the engine,
3. charges a delay for each returned tuple per the configured policy
   (§2 popularity / §3 update rate), sleeping on the configured clock,
4. records the accesses and updates into the trackers that future
   delays are computed from (§2.3 learning).

Delays are computed from the counts *as they were before the query*, so
a tuple's first-ever retrieval is always charged the cold-start cap.

The lifecycle itself runs as an explicit staged pipeline
(:mod:`repro.core.pipeline`): admit → parse → authorize → execute →
account → price → record → sleep. Only the *execute* stage touches the
engine lock (shared for reads, exclusive for writes), so concurrent
queries overlap everywhere else — there is no statement-level gate.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..engine.database import Database
from ..engine.executor import ResultSet
from ..engine.parser.parser import configure_parse_cache, parse_cache_info
from ..obs import ForensicsMonitor, Histogram, Observability, QueryTrace
from .accounts import AccountManager
from .clock import Clock, VirtualClock
from .config import GuardConfig
from .detection import CoverageMonitor
from .counts import (
    CountingSampleStore,
    CountStore,
    InMemoryCountStore,
    SpaceSavingStore,
    WriteBehindCountStore,
)
from .delay_policy import (
    CompositeDelayPolicy,
    DelayPolicy,
    FixedDelayPolicy,
    NoDelayPolicy,
    PopularityDelayPolicy,
    UpdateRateDelayPolicy,
)
from .errors import AccessDenied, ConfigError
from .pipeline import QueryContext, QueryPipeline
from .popularity import PopularityTracker
from .result_cache import ResultCache
from .update_tracker import UpdateRateTracker

#: Guard-level tuple key: (lower-cased table name, rowid).
TupleKey = Tuple[str, int]


def _stale_probability(rate: float, horizon: float) -> float:
    """P(stale) for one tuple under the paper's §3 Poisson model.

    A tuple updated at Poisson rate ``rate`` and extracted at a
    uniformly random instant of a ``horizon``-second scan is stale by
    scan end with probability ``1 - (1 - e^(-rT)) / (rT)`` (the
    integral behind eqs. 8-12). Uses ``expm1`` so tiny ``rT`` doesn't
    cancel catastrophically; limits at ``rT -> 0`` are 0.
    """
    x = rate * horizon
    if x <= 0:
        return 0.0
    return 1.0 + math.expm1(-x) / x


@dataclass
class GuardedResult:
    """A query result annotated with the delay that was charged."""

    result: ResultSet
    delay: float
    per_tuple_delays: List[float] = field(default_factory=list)
    identity: Optional[str] = None
    #: True when the result came from the guard's result cache. The
    #: delay, charges, and popularity counts are identical either way
    #: — a cached answer only skipped the engine, never the price.
    cached: bool = False
    #: The lifecycle trace recorded for this query (None when the
    #: guard's observability is disabled). Lets callers that serve the
    #: sleep themselves (the server does, outside its statement lock)
    #: extend the trace with the stage they served.
    trace: Optional[QueryTrace] = field(
        default=None, repr=False, compare=False
    )
    #: Per-shard coverage for a degraded cluster scatter served with
    #: ``partial_results=True``: which shards answered and which were
    #: down. None for complete results — a partial answer is never
    #: silent.
    coverage: Optional[Dict] = None

    @property
    def rows(self):
        """The underlying result rows."""
        return self.result.rows


def _delay_histogram() -> Histogram:
    """The canonical per-SELECT delay distribution (bounded memory)."""
    return Histogram(
        "guard_select_delay_seconds",
        "Delay charged per SELECT (seconds)",
    )


@dataclass
class GuardStats:
    """Aggregate guard behaviour, used by the evaluation harness.

    Thread-safe for concurrent serving: the ``note_*`` methods take an
    internal lock so each logical event (a denial, a served SELECT, a
    finished query) lands atomically even when many handler threads
    share one guard. The fields stay public for single-threaded readers
    (experiments, reports).

    The per-SELECT delay distribution lives in ``delay_histogram``, a
    bounded streaming histogram (the old unbounded ``select_delays``
    list would leak on a long-running server). Quantiles come from the
    histogram: exact at q=0/q=1 and whenever a bucket holds one
    distinct value, bucket-width-bounded otherwise. Callers needing raw
    per-query delays (windowed medians, cap re-sweeps) should collect
    them at the call site from :class:`GuardedResult`.
    """

    queries: int = 0
    selects: int = 0
    tuples_charged: int = 0
    total_delay: float = 0.0
    denied: int = 0
    #: denials whose cause was an exhausted ``deadline_ms`` budget —
    #: either mid-pipeline (budget ran out) or up front (the mandated
    #: delay would not fit). A subset of :attr:`denied`.
    deadline_aborts: int = 0
    #: requests sacrificed by overload shedding (admission-queue
    #: overflow or delay-parking eviction). Counted by the server's
    #: shedding machinery, not by the pipeline — a shed query may have
    #: been priced but was never answered.
    shed: int = 0
    engine_seconds: float = 0.0
    accounting_seconds: float = 0.0
    delay_histogram: Histogram = field(
        default_factory=_delay_histogram, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    # -- atomic recording ---------------------------------------------------

    def note_denied(self) -> None:
        """Count one refused query."""
        with self._lock:
            self.denied += 1

    def note_deadline_abort(self) -> None:
        """Count one refusal caused by an exhausted deadline budget."""
        with self._lock:
            self.denied += 1
            self.deadline_aborts += 1

    def note_shed(self) -> None:
        """Count one request sacrificed by overload shedding."""
        with self._lock:
            self.shed += 1

    def note_select(self, delay: float, tuples: int) -> None:
        """Count one served SELECT and the tuples it was charged for."""
        with self._lock:
            self.selects += 1
            self.tuples_charged += tuples
            self.delay_histogram.observe(delay)

    def note_query(
        self,
        delay: float,
        engine_seconds: float,
        accounting_seconds: float,
    ) -> None:
        """Count one finished statement with its timing buckets."""
        with self._lock:
            self.queries += 1
            self.total_delay += delay
            self.engine_seconds += engine_seconds
            self.accounting_seconds += accounting_seconds

    # -- summaries ----------------------------------------------------------

    def median_delay(self) -> float:
        """Median per-SELECT delay (the paper's headline user metric)."""
        return self.delay_histogram.quantile(0.5)

    def quantile_delay(self, q: float) -> float:
        """Delay at quantile ``q`` in [0, 1] over SELECT queries.

        Histogram-estimated nearest-rank: q=0 gives the exact minimum,
        q=1 the exact maximum; interior quantiles answer with the mean
        of the matched bucket (exact when the bucket holds one distinct
        value, bucket-width-bounded error otherwise).
        """
        if not 0 <= q <= 1:
            raise ConfigError(f"quantile must be in [0,1], got {q}")
        return self.delay_histogram.quantile(q)

    def overhead_fraction(self) -> float:
        """Accounting cost relative to raw engine cost (Table 5 metric).

        Both buckets are read under the lock so a concurrent
        ``note_query`` can never yield a torn pair (accounting from one
        query paired with engine time missing it).
        """
        with self._lock:
            engine = self.engine_seconds
            accounting = self.accounting_seconds
        if engine == 0:
            return 0.0
        return accounting / engine


class DelayGuard:
    """Wraps a database so every retrieval pays its popularity price.

    Args:
        database: the engine to protect.
        config: declarative configuration (see :class:`GuardConfig`).
        clock: time source; defaults to a fresh :class:`VirtualClock`
            so tests and benchmarks never actually block.
        policy: a pre-built policy, overriding ``config.policy``.
        accounts: an :class:`AccountManager` enforcing §2.4 defenses;
            when provided, ``execute`` requires a registered identity.
        obs: observability bundle (registry + tracer). A fresh enabled
            one by default; pass ``Observability.disabled()`` to skip
            all metric/trace work (overhead-sensitive replays), or the
            service's bundle so one scrape covers every layer. Each
            guard needs its own registry (metric names would collide).

    >>> from repro.engine import Database
    >>> db = Database()
    >>> _ = db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    >>> _ = db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
    >>> guard = DelayGuard(db, config=GuardConfig(cap=5.0))
    >>> first = guard.execute("SELECT * FROM t WHERE id = 1")
    >>> first.delay  # cold start: the cap
    5.0
    """

    def __init__(
        self,
        database: Database,
        config: Optional[GuardConfig] = None,
        clock: Optional[Clock] = None,
        policy: Optional[DelayPolicy] = None,
        accounts: Optional[AccountManager] = None,
        obs: Optional[Observability] = None,
        population_provider: Optional[Callable[[], int]] = None,
    ):
        self.database = database
        self.config = (config if config is not None else GuardConfig()).validate()
        self.clock = clock if clock is not None else VirtualClock()
        self.accounts = accounts
        self.stats = GuardStats()
        #: cluster hook: when set, :meth:`population` asks the provider
        #: for the *global* tuple count instead of the local engine, so
        #: a shard prices against N of the whole dataset (per-shard N
        #: would divide every delay by the shard count).
        self._population_provider = population_provider
        self._population_cache: Optional[Tuple[int, int]] = None
        self.popularity = PopularityTracker(
            store=self._build_store(),
            decay_rate=self.config.decay_rate,
            origin=self.config.node_id,
        )
        self.update_rates = UpdateRateTracker(
            clock=self.clock,
            time_constant=self.config.update_time_constant,
            origin=self.config.node_id,
        )
        #: key -> clock time of last update (for staleness evaluation).
        #: Guarded by ``_updates_lock`` — the old server statement lock
        #: used to serialise writers to this dict; without that gate the
        #: guard must protect it itself.
        self.last_update_times: Dict[TupleKey, float] = {}
        self._updates_lock = threading.Lock()
        self.policy = policy if policy is not None else self._build_policy()
        #: delay-aware result cache (None unless configured): hits skip
        #: only the execute stage; pricing and recording always run.
        self.result_cache = (
            ResultCache(
                maxsize=self.config.result_cache_size,
                ttl=self.config.result_cache_ttl,
                clock=self.clock.now,
            )
            if self.config.result_cache_size is not None
            else None
        )
        self.obs = obs if obs is not None else Observability()
        #: live extraction forensics (None unless configured): a
        #: CoverageMonitor fed by the pipeline's forensics stage,
        #: risk-scored and exported by the obs-layer ForensicsMonitor.
        self.forensics: Optional[ForensicsMonitor] = None
        if self.config.forensics:
            self.forensics = ForensicsMonitor(
                CoverageMonitor(
                    population=self.population,
                    coverage_threshold=(
                        self.config.forensics_coverage_threshold
                    ),
                    novelty_threshold=(
                        self.config.forensics_novelty_threshold
                    ),
                    window=self.config.forensics_window,
                    min_requests=self.config.forensics_min_requests,
                    max_identities=self.config.forensics_max_identities,
                    max_keys_per_identity=(
                        self.config.forensics_max_keys_per_identity
                    ),
                ),
                audit=self.obs.audit if self.obs.enabled else None,
            )
        if self.config.parse_cache_size is not None:
            configure_parse_cache(self.config.parse_cache_size)
        if (
            not self.config.vectorized_execution
            or self.config.scan_workers > 0
            or self.config.parallel_scan_min_rows != 4096
        ):
            # Only reconfigure when the config deviates from the engine
            # defaults: a Database may be shared (tests, embedding) and
            # rebuilding its executor resets the path counters.
            self.database.configure_execution(
                vectorized=self.config.vectorized_execution,
                scan_workers=self.config.scan_workers,
                parallel_scan_min_rows=self.config.parallel_scan_min_rows,
            )
        if self.obs.enabled:
            self._register_metrics()
        self.pipeline = QueryPipeline(self)

    # -- construction helpers ----------------------------------------------

    def _register_metrics(self) -> None:
        """Create the guard's metric handles and state gauges.

        The unlabelled totals are callback-backed views over
        :attr:`stats` — the hot path pays nothing for them, and a scrape
        can never disagree with the stats because they are read from the
        same fields. Only the labelled metrics (denials by reason,
        per-identity delay) are event-driven, and both sit on cold or
        delay-charged paths.
        """
        registry = self.obs.registry
        stats = self.stats
        registry.counter(
            "guard_queries_total", "Statements executed through the guard"
        ).set_function(lambda: stats.queries)
        registry.counter(
            "guard_selects_total", "SELECT statements served"
        ).set_function(lambda: stats.selects)
        self._m_denied = registry.counter(
            "guard_denied_total", "Queries refused", ("reason",)
        )
        registry.counter(
            "guard_tuples_charged_total", "Base tuples charged a delay"
        ).set_function(lambda: stats.tuples_charged)
        registry.counter(
            "guard_delay_seconds_total", "Total delay charged (seconds)"
        ).set_function(lambda: stats.total_delay)
        registry.counter(
            "guard_engine_seconds_total",
            "Time spent parsing and executing statements (seconds)",
        ).set_function(lambda: stats.engine_seconds)
        registry.counter(
            "guard_accounting_seconds_total",
            "Time spent on guard accounting (seconds)",
        ).set_function(lambda: stats.accounting_seconds)
        registry.counter(
            "guard_deadline_aborts_total",
            "Queries refused because their deadline budget ran out",
        ).set_function(lambda: stats.deadline_aborts)
        registry.counter(
            "guard_shed_total",
            "Requests sacrificed by overload shedding",
        ).set_function(lambda: stats.shed)
        self._m_execution_path = registry.counter(
            "guard_execution_path_total",
            "Statements served per engine execution path",
            ("path",),
        )
        self._m_identity_delay = registry.counter(
            "guard_identity_delay_seconds_total",
            "Delay charged per identity (seconds); extraction-detection "
            "raw material",
            ("identity",),
        )
        # The canonical delay distribution IS the stats histogram:
        # registering the same object means a scrape and GuardStats can
        # never disagree.
        registry.register(self.stats.delay_histogram)
        registry.gauge(
            "guard_population", "Protected tuples (N in the formulas)"
        ).set_function(self.population)
        popularity = self.popularity
        registry.gauge(
            "guard_popularity_tracked_keys", "Keys with a popularity count"
        ).set_function(popularity.tracked_keys)
        registry.gauge(
            "guard_popularity_requests_total",
            "Undecayed recorded accesses",
        ).set_function(lambda: popularity.total_requests)
        registry.gauge(
            "guard_popularity_decayed_total",
            "Decayed request total on the present-request scale",
        ).set_function(lambda: popularity.decayed_total)
        registry.gauge(
            "guard_popularity_rescales", "Overflow rescales performed"
        ).set_function(lambda: popularity.rescales)
        update_rates = self.update_rates
        registry.gauge(
            "guard_update_tracker_keys", "Keys with recorded updates"
        ).set_function(update_rates.tracked_keys)
        registry.gauge(
            "guard_update_tracker_updates_total", "Updates recorded"
        ).set_function(lambda: update_rates.total_updates)
        store = popularity.store
        for stat in store.metrics():
            registry.gauge(
                f"guard_count_store_{stat}",
                f"Count-store backend statistic: {stat}",
            ).set_function(lambda name=stat: store.metrics()[name])
        rwlock = self.database.rwlock
        registry.gauge(
            "engine_read_lock_waiters",
            "Threads currently waiting for the engine's shared read lock",
        ).set_function(lambda: rwlock.waiting_readers)
        registry.gauge(
            "engine_write_lock_waiters",
            "Threads currently waiting for the engine's exclusive "
            "write lock",
        ).set_function(lambda: rwlock.waiting_writers)
        registry.gauge(
            "engine_write_lock_hold_seconds",
            "Cumulative seconds the engine write lock has been held",
        ).set_function(lambda: rwlock.write_hold_seconds)
        registry.gauge(
            "guard_parse_cache_hits", "Statement parse-cache hits"
        ).set_function(lambda: parse_cache_info().hits)
        registry.gauge(
            "guard_parse_cache_misses", "Statement parse-cache misses"
        ).set_function(lambda: parse_cache_info().misses)
        registry.gauge(
            "guard_parse_cache_entries", "Statements currently cached"
        ).set_function(lambda: parse_cache_info().currsize)
        registry.gauge(
            "guard_parse_cache_capacity", "Parse-cache maximum size"
        ).set_function(lambda: parse_cache_info().maxsize or 0)
        cache = self.result_cache
        if cache is not None:
            descriptions = {
                "hits": "Result-cache hits (priced and recorded like "
                "misses; only engine CPU was saved)",
                "misses": "Result-cache misses",
                "evictions": "Result-cache LRU evictions",
                "invalidations": "Entries swept because a committed "
                "mutation advanced the snapshot epoch",
                "expirations": "Entries dropped by the TTL freshness "
                "bound",
                "entries": "Results currently cached",
                "capacity": "Result-cache maximum size",
                "epoch": "Highest engine mutation epoch the cache has "
                "observed",
            }
            for stat, help_text in descriptions.items():
                registry.gauge(
                    f"guard_result_cache_{stat}", help_text
                ).set_function(lambda name=stat: cache.info()[name])
        if self.forensics is not None:
            self.forensics.register_metrics(registry)
        # Per-table staleness-guarantee gauges. Labelled gauges cannot
        # be callback-backed, so they are refreshed on demand by
        # refresh_staleness_gauges() (the server's health op does).
        self._m_stale_extraction = registry.gauge(
            "staleness_extraction_seconds",
            "Seconds a full extraction of this table would take at "
            "today's prices (T in eqs. 8-12)",
            ("table",),
        )
        self._m_stale_rate = registry.gauge(
            "staleness_update_rate_per_second",
            "Summed estimated update rate across this table's tuples",
            ("table",),
        )
        self._m_stale_smax = registry.gauge(
            "staleness_smax_fraction",
            "Live S_max: expected stale fraction of an extraction "
            "spread over the table's current extraction time",
            ("table",),
        )

    def _build_store(self) -> CountStore:
        kind = self.config.count_store
        if kind == "memory":
            return InMemoryCountStore()
        if kind == "write_behind":
            return WriteBehindCountStore(cache_size=self.config.count_cache_size)
        if kind == "space_saving":
            return SpaceSavingStore(capacity=self.config.count_capacity)
        if kind == "counting_sample":
            return CountingSampleStore(capacity=self.config.count_capacity)
        raise ConfigError(f"unknown count store {kind!r}")  # pragma: no cover

    def _build_policy(self) -> DelayPolicy:
        config = self.config
        if config.policy == "none":
            return NoDelayPolicy()
        if config.policy == "fixed":
            return FixedDelayPolicy(config.fixed_delay)
        popularity = PopularityDelayPolicy(
            tracker=self.popularity,
            population=self.population,
            cap=config.cap,
            beta=config.beta,
            unit=config.unit,
            mode=config.popularity_mode,
        )
        if config.policy == "popularity":
            return popularity
        update = UpdateRateDelayPolicy(
            tracker=self.update_rates,
            population=self.population,
            c=config.update_c,
            cap=config.cap,
        )
        if config.policy == "update":
            return update
        return CompositeDelayPolicy([popularity, update], combine="max")

    # -- sizing ----------------------------------------------------------------

    def set_population_provider(self, provider: Callable[[], int]) -> None:
        """Price against an external (global) population count.

        Cluster shards call this so every delay formula uses the
        cluster-wide N instead of the shard's local row count — with M
        shards, pricing against N/M local rows would cut every delay by
        roughly M. Takes effect immediately: the policies hold this
        guard's bound :meth:`population` method.
        """
        self._population_provider = provider
        self._population_cache = None

    def population(self) -> int:
        """Total protected tuples (N in the paper's formulas).

        Reads the catalog under the engine's shared read lock so a
        concurrent DDL/DML writer can't change the table set mid-sum.
        The read lock is reentrant, so this is safe to call from inside
        the pipeline's price stage or another read section.

        The sum is cached per mutation epoch — the population can only
        change through a committed mutation, and every commit advances
        the epoch, so a cached value at the current epoch is exact.
        That keeps lock-free callers (the server's I/O-loop cache fast
        path) from queueing behind an engine writer. With a
        ``population_provider`` (cluster shards), the provider's global
        count is used instead.
        """
        if self._population_provider is not None:
            return max(int(self._population_provider()), 1)
        cached = self._population_cache
        if cached is not None and cached[0] == self.database.mutation_epoch:
            return cached[1]
        with self.database.read_view():
            epoch = self.database.mutation_epoch
            total = 0
            for name in self.database.catalog.table_names():
                total += len(self.database.catalog.table(name))
        value = max(total, 1)
        self._population_cache = (epoch, value)
        return value

    # -- the front door -----------------------------------------------------

    def execute(
        self,
        sql_or_statement: Union[str, object],
        identity: Optional[str] = None,
        record: bool = True,
        sleep: bool = True,
        deadline_at: Optional[float] = None,
        cache_only: bool = False,
    ) -> Optional[GuardedResult]:
        """Execute a statement, charging and applying its delay.

        Runs the staged pipeline (admit → parse → authorize → execute →
        account → price → record → sleep). When the guard's
        :class:`~repro.obs.Observability` is enabled, each query also
        emits a lifecycle trace with one span per stage and updates the
        metrics registry; both stay exactly consistent with
        :attr:`stats`.

        Thread-safe with no statement-level gate: only the execute
        stage takes the engine lock (shared for SELECT/EXPLAIN,
        exclusive for DML/DDL), so concurrent callers overlap in every
        other stage.

        Args:
            sql_or_statement: SQL text or a pre-parsed statement.
            identity: registered identity, required when the guard has
                an :class:`AccountManager` attached.
            record: whether this query's accesses feed the popularity
                counts (experiments replaying an adversary against a
                frozen distribution pass False).
            sleep: whether to apply the delay on the guard's clock. The
                server and the concurrent simulator pass False and
                serve each caller's delay themselves — per connection
                or by event scheduling — so one penalised query never
                blocks another.
            deadline_at: absolute ``time.monotonic()`` deadline for the
                caller's end-to-end budget. The pipeline aborts with
                ``deadline_exceeded`` at the first stage boundary past
                it, and rejects a mandated delay longer than the
                remaining budget *before* recording or sleeping
                (reporting the full delay as ``retry_after``).
            cache_only: probe mode for the server's I/O-loop fast
                path. The pipeline runs parse → cache lookup first; on
                a miss it returns ``None`` immediately — before the
                authorize stage, so the account is *not* charged (the
                caller re-submits through the full pipeline, which
                charges exactly once). On a hit the remaining stages
                (admit, authorize, account, price, record, forensics,
                sleep) run exactly as usual, so a fast-path hit is
                indistinguishable from a worker-pool hit in counts,
                charges, and mandated delay.

        Raises:
            AccessDenied: if an account-level limit refuses the query,
                or the deadline budget cannot be met.
        """
        ctx = QueryContext(
            sql_or_statement=sql_or_statement,
            identity=identity,
            record=record,
            sleep=sleep,
            deadline_at=deadline_at,
            cache_only=cache_only,
        )
        if not self.obs.enabled:
            self.pipeline.run(ctx)
            if cache_only and not ctx.cache_hit:
                return None
            return GuardedResult(
                result=ctx.result,
                delay=ctx.delay,
                per_tuple_delays=ctx.per_tuple,
                identity=identity,
                cached=ctx.cache_hit,
            )
        tracer = self.obs.tracer
        ctx.trace = QueryTrace(
            "query",
            identity=identity,
            sql=sql_or_statement
            if isinstance(sql_or_statement, str)
            else None,
        )
        audit = self.obs.audit
        try:
            self.pipeline.run(ctx)
        except AccessDenied as denied:
            tracer.finish(ctx.trace.finish("denied", reason=denied.reason))
            if audit is not None:
                audit.emit(
                    "query_deadline_aborted"
                    if denied.reason == "deadline_exceeded"
                    else "query_denied",
                    trace_id=ctx.trace.trace_id,
                    identity=identity,
                    reason=denied.reason,
                    retry_after=getattr(denied, "retry_after", None),
                )
            raise
        except Exception as error:
            tracer.finish(ctx.trace.finish("error", reason=str(error)))
            raise
        if cache_only and not ctx.cache_hit:
            # Fast-path probe missed: discard the probe trace (the full
            # pipeline run that follows will record its own) and hand
            # the query back unexecuted and uncharged.
            return None
        tracer.finish(
            ctx.trace.finish(
                "ok", delay=ctx.delay, rows=ctx.result.rowcount
            )
        )
        if audit is not None:
            audit.emit(
                "query_cached" if ctx.cache_hit else "query_served",
                trace_id=ctx.trace.trace_id,
                identity=identity,
                delay=ctx.delay,
                rows=ctx.result.rowcount,
                table=ctx.result.table,
            )
            if ctx.delay > 0:
                audit.emit(
                    "delay_priced",
                    trace_id=ctx.trace.trace_id,
                    identity=identity,
                    delay=ctx.delay,
                    tuples=len(ctx.keys),
                )
        return GuardedResult(
            result=ctx.result,
            delay=ctx.delay,
            per_tuple_delays=ctx.per_tuple,
            identity=identity,
            trace=ctx.trace,
            cached=ctx.cache_hit,
        )

    # -- analysis hooks ----------------------------------------------------------

    def delay_for(self, table: str, rowid: int) -> float:
        """The delay the policy would charge for one tuple right now."""
        return self.policy.delay_for((table.lower(), rowid))

    def last_update_times_for(self, table: str) -> Dict:
        """Last-update times for one table, keyed by primary key value.

        Translates the guard's internal (table, rowid) keys into the
        table's primary-key domain so they can be matched against an
        adversary's extracted snapshot. Tables without a primary key
        are keyed by rowid.
        """
        with self._updates_lock:
            updates = list(self.last_update_times.items())
        with self.database.read_view():
            heap = self.database.catalog.table(table)
            prefix = heap.name.lower()
            pk = heap.schema.primary_key
            pk_position = heap.schema.position(pk) if pk else None
            translated: Dict = {}
            for (name, rowid), when in updates:
                if name != prefix:
                    continue
                if pk_position is None:
                    translated[rowid] = when
                    continue
                row = heap.get(rowid)
                if row is not None:
                    translated[row[pk_position]] = when
            return translated

    def extraction_cost(self, table: Optional[str] = None) -> float:
        """Total delay an adversary would pay to extract everything now.

        Computed statically from the current counts (the paper computes
        adversary delay this way in §4.1: "by examining the access
        counts after the trace was replayed"). Does not mutate state.
        """
        with self.database.read_view():
            names = (
                [table]
                if table is not None
                else self.database.catalog.table_names()
            )
            keyed = []
            for name in names:
                heap = self.database.catalog.table(name)
                key_prefix = heap.name.lower()
                keyed.extend((key_prefix, rowid) for rowid in heap.rowids())
        # Price outside the read lock: the policy only reads trackers.
        return sum(self.policy.delays_for(keyed))

    def staleness_report(self) -> Dict[str, Dict]:
        """Per-table live staleness guarantee (§3, eqs. 8-12).

        For each table, prices today's full-extraction time T from the
        current counts (:meth:`extraction_cost`) and evaluates the
        paper's Poisson staleness model against the live update-rate
        estimates: a tuple updated at rate r, extracted at a uniformly
        random instant of a T-second scan, is stale with probability
        ``1 - (1 - e^(-rT)) / (rT)``. The reported ``smax_fraction``
        is the expected stale fraction of a full extraction *started
        now* — the guarantee the defense is currently delivering, live
        (tuples with no recorded updates contribute zero).
        """
        snapshot = self.update_rates.snapshot()
        per_table_rates: Dict[str, List[float]] = {}
        for (table, _rowid), rate in snapshot:
            per_table_rates.setdefault(table, []).append(rate)
        with self.database.read_view():
            tables = [
                (name, len(self.database.catalog.table(name)))
                for name in self.database.catalog.table_names()
            ]
        report: Dict[str, Dict] = {}
        for name, population in tables:
            horizon = self.extraction_cost(name)
            rates = per_table_rates.get(name.lower(), [])
            expected_stale = sum(
                _stale_probability(rate, horizon) for rate in rates
            )
            report[name.lower()] = {
                "population": population,
                "extraction_seconds": horizon,
                "update_rate_per_second": sum(rates),
                "updated_keys": len(rates),
                "smax_fraction": expected_stale / max(population, 1),
            }
        return report

    def refresh_staleness_gauges(self) -> Dict[str, Dict]:
        """Recompute :meth:`staleness_report` and push it to the gauges.

        Labelled gauges cannot be callback-backed, so something must
        pump them; the server's ``health`` op calls this on every
        request, which makes a scrape-after-health always current.
        Returns the report it pushed.
        """
        report = self.staleness_report()
        if self.obs.enabled:
            for table, entry in report.items():
                self._m_stale_extraction.set(
                    entry["extraction_seconds"], table=table
                )
                self._m_stale_rate.set(
                    entry["update_rate_per_second"], table=table
                )
                self._m_stale_smax.set(
                    entry["smax_fraction"], table=table
                )
        return report

    def max_extraction_cost(self, table: Optional[str] = None) -> float:
        """The N·d_max bound: every tuple at the cap (needs a cap)."""
        if self.config.cap is None:
            raise ConfigError("max_extraction_cost requires a delay cap")
        if table is not None:
            with self.database.read_view():
                n = len(self.database.catalog.table(table))
        else:
            n = self.population()
        return n * self.config.cap

    # -- cluster gossip -------------------------------------------------------

    def gossip_versions(self) -> Dict:
        """Per-origin version marks for both trackers (anti-entropy)."""
        return {
            "popularity": self.popularity.versions(),
            "update_rates": self.update_rates.versions(),
        }

    def gossip_digest(self, versions: Optional[Dict] = None) -> Dict:
        """Tracker deltas newer than a peer's ``versions`` marks.

        Feed a peer's :meth:`gossip_versions` in to get exactly what it
        is missing; None produces a full digest (initial sync).
        """
        versions = versions if versions is not None else {}
        return {
            "popularity": self.popularity.delta_since(
                versions.get("popularity")
            ),
            "update_rates": self.update_rates.delta_since(
                versions.get("update_rates")
            ),
        }

    def gossip_merge(self, digest: Dict) -> Dict[str, int]:
        """Fold a peer's :meth:`gossip_digest` into this guard's trackers.

        Commutative and idempotent (per-origin last-writer-wins joins),
        so rounds may repeat, reorder, or overlap without double
        counting. Returns entries adopted per tracker.
        """
        adopted = {"popularity": 0, "update_rates": 0}
        popularity = digest.get("popularity")
        if popularity is not None:
            adopted["popularity"] = self.popularity.merge(popularity)
        update_rates = digest.get("update_rates")
        if update_rates is not None:
            adopted["update_rates"] = self.update_rates.merge(update_rates)
        return adopted

    # -- state persistence ---------------------------------------------------

    def dump_state(self) -> Dict:
        """Serialise learned state to a JSON-compatible dictionary.

        Covers popularity counts (with their decay bookkeeping, origin,
        versions, and any gossip mirrors), the raw request totals, and
        last-update times — everything needed for a restarted guard to
        keep charging the same delays, and for a restarted *shard* to
        reclaim its own entries from peers via anti-entropy. Account
        state and statistics are not included.
        """
        with self._updates_lock:
            updates = [
                [f"{table}:{rowid}", when]
                for (table, rowid), when in self.last_update_times.items()
            ]
        return {
            "format": "repro-guard-v3",
            "decay_rate": self.popularity.decay_rate,
            "popularity": self.popularity.dump_state(),
            "last_update_times": updates,
            "update_rates": self.update_rates.dump_state(),
        }

    def load_state(self, payload: Dict) -> None:
        """Restore state produced by :meth:`dump_state`.

        Accepts the current ``repro-guard-v3`` format plus v2 and v1
        (which predate tracker-level persistence; v1 additionally
        leaves the update tracker empty). The guard's configured decay
        rate must match the saved one (delays would silently change
        otherwise).
        """
        fmt = payload.get("format")
        if fmt not in ("repro-guard-v1", "repro-guard-v2", "repro-guard-v3"):
            raise ConfigError(
                f"unsupported guard state format {payload.get('format')!r}"
            )
        if payload["decay_rate"] != self.popularity.decay_rate:
            raise ConfigError(
                f"saved decay rate {payload['decay_rate']} does not match "
                f"configured {self.popularity.decay_rate}"
            )
        if fmt == "repro-guard-v3" or "popularity" in payload:
            # v3 nests full tracker state; older tags carrying the
            # nested shape (re-labelled exports) load the same way.
            self.popularity.load_state(payload["popularity"])
        else:
            self.popularity.reset()
            self.popularity._increment = payload["increment"]
            self.popularity._raw_total = payload["raw_total"]
            self.popularity._decayed_total = payload["decayed_total"]
            for key_text, weight in payload["counts"]:
                table, _, rowid = key_text.partition(":")
                self.popularity.store.add((table, int(rowid)), weight)
        with self._updates_lock:
            self.last_update_times.clear()
            for key_text, when in payload["last_update_times"]:
                table, _, rowid = key_text.partition(":")
                self.last_update_times[(table, int(rowid))] = when
        if "update_rates" in payload:
            self.update_rates.load_state(payload["update_rates"])

    def record_replayed_updates(
        self, table: str, rowids, when: Optional[float] = None
    ) -> None:
        """Re-record journalled updates during crash recovery.

        Mirrors what the pipeline's execute stage does for a live DML
        statement, but stamps the tracker with ``when`` — the service
        clock time the statement originally committed at (from its
        journal record) — so recovered update rates decay from the
        right instant instead of clustering at recovery time.
        """
        if not self.config.record_updates:
            return
        table_key = table.lower()
        stamp = when if when is not None else self.clock.now()
        with self._updates_lock:
            for rowid in rowids:
                key = (table_key, rowid)
                self.update_rates.record_update(key, at=stamp)
                self.last_update_times[key] = stamp

    def __repr__(self) -> str:
        return (
            f"DelayGuard(policy={self.policy.describe()}, "
            f"queries={self.stats.queries})"
        )
