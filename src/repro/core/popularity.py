"""Popularity tracking with exponential age decay (§2.3).

The paper tracks a per-tuple count of requests, normalised by a global
request count. To track *changing* distributions it weights each request
by a factor that decays exponentially with age. Discounting every count
at every access would cost O(N); instead — exactly as §2.3 prescribes —
we inflate the value by which counts increase on each access and keep a
matching normalisation, rescaling everything when the inflated increment
approaches overflow (at a small, bounded precision loss).

Two popularity normalisations are offered:

* ``"raw"`` (paper reading of §2.3: "normalized by a global count of all
  requests"): decayed count divided by the *undecayed* total. Stronger
  decay then shrinks every popularity estimate, inflating delays — this
  is what produces the decay sweeps of Tables 3 and 4.
* ``"decayed"``: decayed count divided by the decayed total — a proper
  probability estimate over the effective window, useful as an ablation.

Replication (the cluster's anti-entropy substrate): every tracker has an
*origin* id and keeps, next to its own counts, a per-origin mirror of
the masses other trackers have gossiped to it. :meth:`delta_since` emits
versioned present-scale masses for the local origin *and* every mirrored
origin (so gossip is transitive), and :meth:`merge` folds a delta in
with per-(origin, key) last-version-wins adoption — commutative,
associative, and idempotent, because each origin's versions are totally
ordered and the shipped value is a function of the version. Effective
queries (popularity, rank, snapshot, totals) sum local and mirrored
mass; with ``decay_rate == 1.0`` the merged view is exact, and with
decay the mirrors hold each origin's mass as of its last delta — a
staleness bounded by the gossip interval, never an undercount an
adversary could mint by spraying shards.
"""

from __future__ import annotations

import itertools
import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .counts import CountStore, InMemoryCountStore, Key
from .errors import ConfigError

#: process-unique default origins for trackers built without one.
_ORIGIN_SEQ = itertools.count()


def _freeze_key(key) -> Key:
    """JSON round-trips tuple keys as lists; restore them."""
    return tuple(key) if isinstance(key, list) else key


def _thaw_key(key):
    """Make a key JSON-serialisable (tuples become lists)."""
    return list(key) if isinstance(key, tuple) else key


class PopularityTracker:
    """Decayed per-tuple request counts with popularity and rank queries.

    Args:
        store: count storage backend (defaults to exact in-memory).
        decay_rate: per-request inflation factor γ >= 1. 1.0 means no
            decay (full history); larger values forget faster. A request
            ``k`` requests old carries relative weight ``γ**-k``.
        rescale_threshold: when the internal increment exceeds this, all
            counts are rescaled to keep floats in range.
        rank_refresh: recompute cached ranks after this many records
            (ranks are only needed by policies with β > 0; the cache
            bounds the cost of repeated sorting).
        origin: replication identity for :meth:`delta_since` /
            :meth:`merge` (e.g. ``"shard-0"``). Defaults to a
            process-unique id; cluster deployments set it explicitly so
            it survives restarts.
    """

    #: version headroom added on :meth:`load_state`, so records made
    #: after a recovery outrank pre-crash entries peers mirror back.
    RECOVERY_VERSION_JUMP = 1 << 32

    def __init__(
        self,
        store: Optional[CountStore] = None,
        decay_rate: float = 1.0,
        rescale_threshold: float = 1e100,
        rank_refresh: int = 1000,
        origin: Optional[str] = None,
    ):
        if decay_rate < 1.0:
            raise ConfigError(
                f"decay_rate must be >= 1.0 (got {decay_rate}); values "
                "above 1 forget faster"
            )
        if rescale_threshold <= 1.0:
            raise ConfigError("rescale_threshold must exceed 1.0")
        if rank_refresh < 1:
            raise ConfigError("rank_refresh must be >= 1")
        self.store = store if store is not None else InMemoryCountStore()
        self.decay_rate = float(decay_rate)
        self.rescale_threshold = float(rescale_threshold)
        self.rank_refresh = rank_refresh
        # Re-entrant: record -> _rescale and rank -> store.items() nest.
        # The store has its own lock, but the multi-step bookkeeping here
        # (count + both totals + increment) must be atomic as a unit or
        # concurrent recorders would desynchronise counts from totals.
        self._lock = threading.RLock()
        self._increment = 1.0  # weight assigned to the NEXT request
        self._raw_total = 0.0
        self._decayed_total = 0.0
        self._rescales = 0
        self._rank_cache: Optional[Dict[Key, int]] = None
        self._records_since_rank = 0
        self.origin = (
            origin if origin is not None else f"tracker-{next(_ORIGIN_SEQ)}"
        )
        #: origin -> key -> (present-scale mass, version): counts other
        #: trackers have gossiped here. Empty outside cluster use, and
        #: every query path skips the mirror work when it is empty.
        self._remote: Dict[str, Dict[Key, Tuple[float, int]]] = {}
        #: origin -> {"version", "raw_total", "decayed_total"}
        self._remote_meta: Dict[str, Dict[str, float]] = {}
        #: after load_state: the snapshot's data high-water mark. While
        #: set, :meth:`versions` advertises it (not the jumped counter)
        #: for the local origin, so peers reflect back own-origin mass
        #: the crash destroyed; :meth:`_merge_self` ratchets it forward
        #: as reflections arrive, ending the resends once caught up.
        self._self_floor: Optional[int] = None

    # -- recording ---------------------------------------------------------

    def record(self, key: Key, weight: float = 1.0) -> None:
        """Record one access to ``key`` (``weight`` allows batched hits)."""
        if weight <= 0:
            raise ConfigError(f"weight must be positive, got {weight}")
        with self._lock:
            amount = self._increment * weight
            self.store.add(key, amount)
            self._decayed_total += amount
            self._raw_total += weight
            self._increment *= self.decay_rate
            self._records_since_rank += 1
            if self._records_since_rank >= self.rank_refresh:
                self._rank_cache = None
            if self._increment > self.rescale_threshold:
                self._rescale()

    def record_many(self, keys: Iterable[Key]) -> None:
        """Record a sequence of accesses in order, as one atomic batch.

        Holding the (reentrant) lock across the batch means a
        concurrent :meth:`popularity_many` snapshot sees either none or
        all of a query's recordings — never a half-recorded result set.
        """
        with self._lock:
            for key in keys:
                self.record(key)

    def _rescale(self) -> None:
        """Divide all state by the current increment (overflow guard)."""
        with self._lock:
            factor = 1.0 / self._increment
            self.store.scale(factor)
            self._decayed_total *= factor
            self._increment = 1.0
            self._rescales += 1

    def apply_decay(self, factor: float) -> None:
        """Explicitly decay all accumulated history by ``factor``.

        Used for period-boundary decay: the box-office experiment (§4.2)
        applies its decay factor at weekly boundaries rather than per
        request. Equivalent to dividing every stored count by ``factor``
        but implemented, like per-request decay, by inflating the weight
        of future requests.
        """
        if factor < 1.0:
            raise ConfigError(f"decay factor must be >= 1.0, got {factor}")
        with self._lock:
            self._increment *= factor
            # Every key's present-scale mass just changed; peers holding
            # mirrored masses must be sent all of them again.
            self.store.mark_all_changed()
            if self._increment > self.rescale_threshold:
                self._rescale()

    # -- queries ------------------------------------------------------------

    def _remote_count(self, key: Key) -> float:
        """Mirrored present-scale mass of ``key``; lock held by caller."""
        total = 0.0
        for entries in self._remote.values():
            entry = entries.get(key)
            if entry is not None:
                total += entry[0]
        return total

    def _remote_raw_total(self) -> float:
        return sum(
            meta["raw_total"] for meta in self._remote_meta.values()
        )

    def _remote_decayed_total(self) -> float:
        return sum(
            meta["decayed_total"] for meta in self._remote_meta.values()
        )

    @property
    def total_requests(self) -> float:
        """Undecayed number of recorded requests (all known origins)."""
        with self._lock:
            if not self._remote_meta:
                return self._raw_total
            return self._raw_total + self._remote_raw_total()

    @property
    def decayed_total(self) -> float:
        """Decayed request total on the present-request weight scale.

        This is the correct denominator for shares of *decayed* counts
        (e.g. ``snapshot()`` weights): with no decay it equals
        ``total_requests``, and with decay it is the effective number of
        'current' requests the surviving weight represents.
        """
        with self._lock:
            local = self._decayed_total / self._increment
            if not self._remote_meta:
                return local
            return local + self._remote_decayed_total()

    @property
    def rescales(self) -> int:
        """How many overflow rescales have occurred (diagnostic)."""
        return self._rescales

    def present_count(self, key: Key) -> float:
        """Decayed count of ``key`` on the latest-request weight scale.

        With no decay this is exactly the raw hit count; with decay it is
        the equivalent number of 'current' requests. Mirrored mass from
        other origins is included.
        """
        with self._lock:
            count = self.store.get(key) / self._increment
            if self._remote:
                count += self._remote_count(key)
            return count

    def popularity(self, key: Key, mode: str = "raw") -> float:
        """Normalised popularity estimate of ``key`` in [0, ~1].

        ``mode="raw"`` divides the decayed count by the raw request
        total (the paper's normalisation); ``mode="decayed"`` divides by
        the decayed total (a true frequency over the effective window).
        Returns 0 for unseen keys or before any requests. Both numerator
        and denominator span every known origin, so a clustered tracker
        prices against the *global* distribution.
        """
        with self._lock:
            count = self.store.get(key) / self._increment
            if self._remote:
                count += self._remote_count(key)
            if count <= 0:
                return 0.0
            if mode == "raw":
                total = self._raw_total
                if self._remote_meta:
                    total += self._remote_raw_total()
                if total <= 0:
                    return 0.0
                return count / total
            if mode == "decayed":
                total = self._decayed_total / self._increment
                if self._remote_meta:
                    total += self._remote_decayed_total()
                if total <= 0:
                    return 0.0
                return count / total
        raise ConfigError(f"unknown popularity mode {mode!r}")

    def popularity_many(
        self, keys: Sequence[Key], mode: str = "raw"
    ) -> List[float]:
        """Popularities for ``keys`` from one consistent snapshot.

        One lock acquisition covers the whole batch, so all returned
        estimates share the same counts and totals — the property the
        guard's price stage relies on for multi-tuple queries.
        """
        with self._lock:
            return [self.popularity(key, mode) for key in keys]

    def _merged_counts(self) -> Dict[Key, float]:
        """All (key -> present-scale mass) across origins; lock held."""
        merged = {
            key: count / self._increment
            for key, count in self.store.items()
        }
        for entries in self._remote.values():
            for key, (mass, _version) in entries.items():
                merged[key] = merged.get(key, 0.0) + mass
        return merged

    def max_popularity(self, mode: str = "raw") -> float:
        """Popularity of the most popular tracked key (0 if none)."""
        with self._lock:
            keys = {key for key, _count in self.store.items()}
            for entries in self._remote.values():
                keys.update(entries)
        best = 0.0
        for key in keys:
            best = max(best, self.popularity(key, mode))
        return best

    def rank(self, key: Key) -> int:
        """1-based popularity rank of ``key`` (1 = most popular).

        Unseen keys rank after every tracked key. Ranks come from a
        cache refreshed every ``rank_refresh`` records, so they may lag
        the counts slightly — acceptable for delay assignment, where the
        ranking moves slowly.
        """
        with self._lock:
            if self._rank_cache is None:
                if self._remote:
                    ordered = sorted(
                        self._merged_counts().items(),
                        key=lambda item: item[1],
                        reverse=True,
                    )
                else:
                    ordered = sorted(
                        self.store.items(),
                        key=lambda item: item[1],
                        reverse=True,
                    )
                self._rank_cache = {
                    key_: position + 1
                    for position, (key_, _) in enumerate(ordered)
                }
                self._records_since_rank = 0
            return self._rank_cache.get(key, len(self._rank_cache) + 1)

    def snapshot(self) -> List[Tuple[Key, float]]:
        """All (key, present_count) pairs, most popular first."""
        with self._lock:
            if self._remote:
                pairs = list(self._merged_counts().items())
            else:
                pairs = [
                    (key, count / self._increment)
                    for key, count in self.store.items()
                ]
        pairs.sort(key=lambda item: item[1], reverse=True)
        return pairs

    def tracked_keys(self) -> int:
        """Number of keys with a stored or mirrored count."""
        with self._lock:
            if not self._remote:
                return len(self.store)
            keys = {key for key, _count in self.store.items()}
            for entries in self._remote.values():
                keys.update(entries)
            return len(keys)

    def reset(self) -> None:
        """Forget all history (mirrored origins included)."""
        with self._lock:
            self.store.clear()
            self._increment = 1.0
            self._raw_total = 0.0
            self._decayed_total = 0.0
            self._rank_cache = None
            self._records_since_rank = 0
            self._remote = {}
            self._remote_meta = {}
            self._self_floor = None

    # -- replication ---------------------------------------------------------

    def versions(self) -> Dict[str, int]:
        """Per-origin version high-water marks this tracker holds.

        Feed a peer's :meth:`versions` into :meth:`delta_since` to get
        exactly the entries that peer is missing.

        For the local origin this is normally the store's counter; a
        freshly recovered tracker instead advertises the snapshot's
        high-water mark, because the counter was jumped far past it and
        would make peers withhold the reflected entries recovery needs.
        """
        with self._lock:
            own = (
                self._self_floor
                if self._self_floor is not None
                else self.store.version
            )
            versions = {self.origin: own}
            for origin, meta in self._remote_meta.items():
                versions[origin] = int(meta["version"])
            return versions

    def delta_since(self, versions: Optional[Dict[str, int]] = None) -> Dict:
        """Versioned present-scale masses newer than ``versions``.

        The delta carries one payload per known origin — this tracker's
        own counts *and* every mirrored origin — so gossip spreads
        state transitively without all-pairs exchange. ``versions`` maps
        origin ids to the receiver's high-water marks (missing origins
        mean "send everything").
        """
        versions = dict(versions or {})
        with self._lock:
            store_delta = self.store.delta_since(
                versions.get(self.origin, 0)
            )
            payloads = [
                {
                    "origin": self.origin,
                    "version": store_delta["version"],
                    "raw_total": self._raw_total,
                    "decayed_total": self._decayed_total / self._increment,
                    "entries": [
                        [_thaw_key(key), weight / self._increment, changed]
                        for key, weight, changed in store_delta["entries"]
                    ],
                }
            ]
            for origin, entries_map in self._remote.items():
                since = versions.get(origin, 0)
                meta = self._remote_meta[origin]
                entries = [
                    [_thaw_key(key), mass, version]
                    for key, (mass, version) in entries_map.items()
                    if version > since
                ]
                if not entries and meta["version"] <= since:
                    continue
                payloads.append(
                    {
                        "origin": origin,
                        "version": int(meta["version"]),
                        "raw_total": meta["raw_total"],
                        "decayed_total": meta["decayed_total"],
                        "entries": entries,
                    }
                )
        return {"payloads": payloads}

    def merge(self, delta: Dict) -> int:
        """Fold a :meth:`delta_since` payload in; returns entries adopted.

        Remote-origin entries land in per-origin mirrors with
        last-version-wins adoption. Entries for *this* tracker's own
        origin are reflections of its past self (a peer gossiping back
        what it learned before this tracker crashed): they are adopted
        into the local store only where the local version is older, which
        restores popularity lost since the last snapshot without ever
        clobbering post-recovery records.
        """
        payloads = delta.get("payloads", ())
        adopted = 0
        with self._lock:
            for payload in payloads:
                origin = payload.get("origin")
                if origin == self.origin:
                    adopted += self._merge_self(payload)
                else:
                    adopted += self._merge_remote(payload)
            if adopted:
                self._rank_cache = None
        return adopted

    def _merge_self(self, payload: Dict) -> int:
        """Adopt reflected own-origin entries where newer; lock held."""
        entries = [
            [_freeze_key(key), float(mass) * self._increment, int(version)]
            for key, mass, version in payload.get("entries", ())
        ]
        adopted = self.store.merge(
            {"version": int(payload.get("version", 0)), "entries": entries}
        )
        if adopted:
            # The store changed under us; the decayed total is, by
            # construction, exactly the sum of stored masses.
            self._decayed_total = sum(
                weight for _key, weight in self.store.items()
            )
        self._raw_total = max(
            self._raw_total, float(payload.get("raw_total", 0.0))
        )
        if self._self_floor is not None:
            # Everything the peer mirrors up to its payload version has
            # now been offered back; advertising past it stops the
            # re-reflection without hiding genuinely newer entries.
            self._self_floor = max(
                self._self_floor, int(payload.get("version", 0))
            )
        return adopted

    def _merge_remote(self, payload: Dict) -> int:
        """Last-version-wins adoption into one origin mirror; lock held."""
        origin = payload["origin"]
        entries_map = self._remote.setdefault(origin, {})
        meta = self._remote_meta.setdefault(
            origin, {"version": 0, "raw_total": 0.0, "decayed_total": 0.0}
        )
        adopted = 0
        for key, mass, version in payload.get("entries", ()):
            key = _freeze_key(key)
            current = entries_map.get(key)
            if current is not None and current[1] >= version:
                continue
            entries_map[key] = (float(mass), int(version))
            adopted += 1
        version = int(payload.get("version", 0))
        if version > meta["version"]:
            meta["version"] = version
            meta["raw_total"] = float(payload.get("raw_total", 0.0))
            meta["decayed_total"] = float(payload.get("decayed_total", 0.0))
        return adopted

    # -- persistence ---------------------------------------------------------

    def dump_state(self) -> Dict:
        """Serialise counts, totals, versions, and origin mirrors.

        Masses are stored on the present-request scale, so the snapshot
        is independent of the increment at dump time.
        """
        with self._lock:
            store_delta = self.store.delta_since(0)
            return {
                "format": "repro-popularity-v1",
                "origin": self.origin,
                "decay_rate": self.decay_rate,
                "raw_total": self._raw_total,
                "decayed_total": self._decayed_total / self._increment,
                "version": self.store.version,
                "counts": [
                    [_thaw_key(key), weight / self._increment, changed]
                    for key, weight, changed in store_delta["entries"]
                ],
                "remote": {
                    origin: {
                        "version": int(meta["version"]),
                        "raw_total": meta["raw_total"],
                        "decayed_total": meta["decayed_total"],
                        "entries": [
                            [_thaw_key(key), mass, version]
                            for key, (mass, version) in self._remote[
                                origin
                            ].items()
                        ],
                    }
                    for origin, meta in self._remote_meta.items()
                },
            }

    def load_state(self, payload: Dict) -> None:
        """Restore :meth:`dump_state` output, replacing current state.

        The store's version counter is advanced by
        :data:`RECOVERY_VERSION_JUMP` past the snapshot's high-water
        mark, so every record made after this load outranks any
        pre-crash entry a peer may still mirror.
        """
        if payload.get("format") != "repro-popularity-v1":
            raise ConfigError(
                f"unknown popularity state format "
                f"{payload.get('format')!r}"
            )
        decay_rate = float(payload.get("decay_rate", self.decay_rate))
        if decay_rate != self.decay_rate:
            raise ConfigError(
                f"snapshot decay_rate {decay_rate} does not match "
                f"tracker decay_rate {self.decay_rate}"
            )
        with self._lock:
            self.store.clear()
            self._increment = 1.0
            self.store.merge(
                {
                    "version": int(payload.get("version", 0)),
                    "entries": [
                        [_freeze_key(key), float(mass), int(version)]
                        for key, mass, version in payload.get("counts", ())
                    ],
                }
            )
            self.store.advance_version(
                int(payload.get("version", 0)) + self.RECOVERY_VERSION_JUMP
            )
            self._self_floor = int(payload.get("version", 0))
            self.origin = payload.get("origin", self.origin)
            self._raw_total = float(payload.get("raw_total", 0.0))
            self._decayed_total = sum(
                weight for _key, weight in self.store.items()
            )
            self._remote = {}
            self._remote_meta = {}
            for origin, mirror in payload.get("remote", {}).items():
                self._remote[origin] = {
                    _freeze_key(key): (float(mass), int(version))
                    for key, mass, version in mirror.get("entries", ())
                }
                self._remote_meta[origin] = {
                    "version": int(mirror.get("version", 0)),
                    "raw_total": float(mirror.get("raw_total", 0.0)),
                    "decayed_total": float(
                        mirror.get("decayed_total", 0.0)
                    ),
                }
            self._rank_cache = None
            self._records_since_rank = 0


class AdaptiveTracker:
    """Several trackers with different decay terms, auto-selected (§2.3).

    The paper notes that when the right decay term is unknown, one can
    "simultaneously track counts with more than one decay term,
    switching to the appropriate set as the request pattern warrants" —
    the agile/stable estimator trick from wireless networking and energy
    management. Each candidate tracker scores its one-step-ahead
    predictive log-loss for the observed key (before updating); an EWMA
    of that loss selects the active tracker.

    Args:
        decay_rates: candidate γ values (must be unique, each >= 1).
        score_smoothing: EWMA factor in (0, 1]; smaller = slower switch.
        store_factory: builds a fresh count store per candidate.
        origin: replication identity shared by every candidate tracker.
    """

    _EPSILON = 1e-12

    def __init__(
        self,
        decay_rates: Sequence[float],
        score_smoothing: float = 0.02,
        store_factory=InMemoryCountStore,
        origin: Optional[str] = None,
    ):
        if not decay_rates:
            raise ConfigError("need at least one decay rate")
        if len(set(decay_rates)) != len(decay_rates):
            raise ConfigError("decay rates must be unique")
        if not 0 < score_smoothing <= 1:
            raise ConfigError("score_smoothing must be in (0, 1]")
        if origin is None:
            origin = f"tracker-{next(_ORIGIN_SEQ)}"
        self.origin = origin
        self.trackers: Dict[float, PopularityTracker] = {
            rate: PopularityTracker(
                store=store_factory(), decay_rate=rate, origin=origin
            )
            for rate in decay_rates
        }
        self.score_smoothing = score_smoothing
        self._lock = threading.Lock()
        self._scores: Dict[float, float] = {rate: 0.0 for rate in decay_rates}
        self._seen_any = False

    def record(self, key: Key, weight: float = 1.0) -> None:
        """Score each candidate's prediction for ``key``, then update all."""
        # Scoring reads every tracker before any of them is updated; the
        # lock keeps concurrent records from interleaving the two halves.
        with self._lock:
            for rate, tracker in self.trackers.items():
                predicted = max(
                    tracker.popularity(key, "decayed"), self._EPSILON
                )
                loss = -math.log(predicted)
                previous = self._scores[rate]
                if self._seen_any:
                    self._scores[rate] = (
                        (1 - self.score_smoothing) * previous
                        + self.score_smoothing * loss
                    )
                else:
                    self._scores[rate] = loss
            self._seen_any = True
            for tracker in self.trackers.values():
                tracker.record(key, weight)

    @property
    def active_rate(self) -> float:
        """The decay rate whose tracker currently predicts best."""
        return min(self._scores, key=self._scores.get)  # type: ignore[arg-type]

    @property
    def active(self) -> PopularityTracker:
        """The currently selected tracker."""
        return self.trackers[self.active_rate]

    def scores(self) -> Dict[float, float]:
        """Current EWMA predictive losses per decay rate (lower = better)."""
        return dict(self._scores)

    # Delegate the query interface to the active tracker so an
    # AdaptiveTracker can stand in wherever a PopularityTracker is used.

    def record_many(self, keys: Iterable[Key]) -> None:
        """Record a sequence of accesses in order."""
        for key in keys:
            self.record(key)

    def popularity(self, key: Key, mode: str = "raw") -> float:
        """Popularity under the currently best decay rate."""
        return self.active.popularity(key, mode)

    def popularity_many(
        self, keys: Sequence[Key], mode: str = "raw"
    ) -> List[float]:
        """Batch popularities under the currently best decay rate."""
        return self.active.popularity_many(keys, mode)

    def rank(self, key: Key) -> int:
        """Rank under the currently best decay rate."""
        return self.active.rank(key)

    def snapshot(self) -> List[Tuple[Key, float]]:
        """Snapshot under the currently best decay rate."""
        return self.active.snapshot()

    @property
    def total_requests(self) -> float:
        """Undecayed request total (same across candidates)."""
        return self.active.total_requests

    # -- replication ---------------------------------------------------------

    def versions(self) -> Dict[str, Dict[str, int]]:
        """Per-candidate version maps, keyed by the decay rate's repr."""
        return {
            repr(rate): tracker.versions()
            for rate, tracker in self.trackers.items()
        }

    def delta_since(
        self, versions: Optional[Dict[str, Dict[str, int]]] = None
    ) -> Dict:
        """One delta per candidate tracker (matched by decay rate)."""
        versions = versions or {}
        return {
            "rates": {
                repr(rate): tracker.delta_since(versions.get(repr(rate)))
                for rate, tracker in self.trackers.items()
            }
        }

    def merge(self, delta: Dict) -> int:
        """Merge per-rate deltas into the matching candidate trackers."""
        adopted = 0
        for rate_text, payload in delta.get("rates", {}).items():
            tracker = self.trackers.get(float(rate_text))
            if tracker is not None:
                adopted += tracker.merge(payload)
        return adopted

    # -- persistence ---------------------------------------------------------

    def dump_state(self) -> Dict:
        """Serialise every candidate tracker plus the selection scores."""
        with self._lock:
            return {
                "format": "repro-adaptive-popularity-v1",
                "origin": self.origin,
                "seen_any": self._seen_any,
                "scores": {
                    repr(rate): score
                    for rate, score in self._scores.items()
                },
                "trackers": {
                    repr(rate): tracker.dump_state()
                    for rate, tracker in self.trackers.items()
                },
            }

    def load_state(self, payload: Dict) -> None:
        """Restore :meth:`dump_state` output, replacing current state."""
        if payload.get("format") != "repro-adaptive-popularity-v1":
            raise ConfigError(
                f"unknown adaptive tracker state format "
                f"{payload.get('format')!r}"
            )
        snapshot_rates = {
            float(rate_text) for rate_text in payload.get("trackers", {})
        }
        if snapshot_rates != set(self.trackers):
            raise ConfigError(
                f"snapshot decay rates {sorted(snapshot_rates)} do not "
                f"match configured rates {sorted(self.trackers)}"
            )
        with self._lock:
            self.origin = payload.get("origin", self.origin)
            self._seen_any = bool(payload.get("seen_any", False))
            for rate_text, score in payload.get("scores", {}).items():
                self._scores[float(rate_text)] = float(score)
            for rate_text, state in payload.get("trackers", {}).items():
                self.trackers[float(rate_text)].load_state(state)
