"""Popularity tracking with exponential age decay (§2.3).

The paper tracks a per-tuple count of requests, normalised by a global
request count. To track *changing* distributions it weights each request
by a factor that decays exponentially with age. Discounting every count
at every access would cost O(N); instead — exactly as §2.3 prescribes —
we inflate the value by which counts increase on each access and keep a
matching normalisation, rescaling everything when the inflated increment
approaches overflow (at a small, bounded precision loss).

Two popularity normalisations are offered:

* ``"raw"`` (paper reading of §2.3: "normalized by a global count of all
  requests"): decayed count divided by the *undecayed* total. Stronger
  decay then shrinks every popularity estimate, inflating delays — this
  is what produces the decay sweeps of Tables 3 and 4.
* ``"decayed"``: decayed count divided by the decayed total — a proper
  probability estimate over the effective window, useful as an ablation.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .counts import CountStore, InMemoryCountStore, Key
from .errors import ConfigError


class PopularityTracker:
    """Decayed per-tuple request counts with popularity and rank queries.

    Args:
        store: count storage backend (defaults to exact in-memory).
        decay_rate: per-request inflation factor γ >= 1. 1.0 means no
            decay (full history); larger values forget faster. A request
            ``k`` requests old carries relative weight ``γ**-k``.
        rescale_threshold: when the internal increment exceeds this, all
            counts are rescaled to keep floats in range.
        rank_refresh: recompute cached ranks after this many records
            (ranks are only needed by policies with β > 0; the cache
            bounds the cost of repeated sorting).
    """

    def __init__(
        self,
        store: Optional[CountStore] = None,
        decay_rate: float = 1.0,
        rescale_threshold: float = 1e100,
        rank_refresh: int = 1000,
    ):
        if decay_rate < 1.0:
            raise ConfigError(
                f"decay_rate must be >= 1.0 (got {decay_rate}); values "
                "above 1 forget faster"
            )
        if rescale_threshold <= 1.0:
            raise ConfigError("rescale_threshold must exceed 1.0")
        if rank_refresh < 1:
            raise ConfigError("rank_refresh must be >= 1")
        self.store = store if store is not None else InMemoryCountStore()
        self.decay_rate = float(decay_rate)
        self.rescale_threshold = float(rescale_threshold)
        self.rank_refresh = rank_refresh
        # Re-entrant: record -> _rescale and rank -> store.items() nest.
        # The store has its own lock, but the multi-step bookkeeping here
        # (count + both totals + increment) must be atomic as a unit or
        # concurrent recorders would desynchronise counts from totals.
        self._lock = threading.RLock()
        self._increment = 1.0  # weight assigned to the NEXT request
        self._raw_total = 0.0
        self._decayed_total = 0.0
        self._rescales = 0
        self._rank_cache: Optional[Dict[Key, int]] = None
        self._records_since_rank = 0

    # -- recording ---------------------------------------------------------

    def record(self, key: Key, weight: float = 1.0) -> None:
        """Record one access to ``key`` (``weight`` allows batched hits)."""
        if weight <= 0:
            raise ConfigError(f"weight must be positive, got {weight}")
        with self._lock:
            amount = self._increment * weight
            self.store.add(key, amount)
            self._decayed_total += amount
            self._raw_total += weight
            self._increment *= self.decay_rate
            self._records_since_rank += 1
            if self._records_since_rank >= self.rank_refresh:
                self._rank_cache = None
            if self._increment > self.rescale_threshold:
                self._rescale()

    def record_many(self, keys: Iterable[Key]) -> None:
        """Record a sequence of accesses in order, as one atomic batch.

        Holding the (reentrant) lock across the batch means a
        concurrent :meth:`popularity_many` snapshot sees either none or
        all of a query's recordings — never a half-recorded result set.
        """
        with self._lock:
            for key in keys:
                self.record(key)

    def _rescale(self) -> None:
        """Divide all state by the current increment (overflow guard)."""
        with self._lock:
            factor = 1.0 / self._increment
            self.store.scale(factor)
            self._decayed_total *= factor
            self._increment = 1.0
            self._rescales += 1

    def apply_decay(self, factor: float) -> None:
        """Explicitly decay all accumulated history by ``factor``.

        Used for period-boundary decay: the box-office experiment (§4.2)
        applies its decay factor at weekly boundaries rather than per
        request. Equivalent to dividing every stored count by ``factor``
        but implemented, like per-request decay, by inflating the weight
        of future requests.
        """
        if factor < 1.0:
            raise ConfigError(f"decay factor must be >= 1.0, got {factor}")
        with self._lock:
            self._increment *= factor
            if self._increment > self.rescale_threshold:
                self._rescale()

    # -- queries ------------------------------------------------------------

    @property
    def total_requests(self) -> float:
        """Undecayed number of recorded requests."""
        with self._lock:
            return self._raw_total

    @property
    def decayed_total(self) -> float:
        """Decayed request total on the present-request weight scale.

        This is the correct denominator for shares of *decayed* counts
        (e.g. ``snapshot()`` weights): with no decay it equals
        ``total_requests``, and with decay it is the effective number of
        'current' requests the surviving weight represents.
        """
        with self._lock:
            return self._decayed_total / self._increment

    @property
    def rescales(self) -> int:
        """How many overflow rescales have occurred (diagnostic)."""
        return self._rescales

    def present_count(self, key: Key) -> float:
        """Decayed count of ``key`` on the latest-request weight scale.

        With no decay this is exactly the raw hit count; with decay it is
        the equivalent number of 'current' requests.
        """
        with self._lock:
            return self.store.get(key) / self._increment

    def popularity(self, key: Key, mode: str = "raw") -> float:
        """Normalised popularity estimate of ``key`` in [0, ~1].

        ``mode="raw"`` divides the decayed count by the raw request
        total (the paper's normalisation); ``mode="decayed"`` divides by
        the decayed total (a true frequency over the effective window).
        Returns 0 for unseen keys or before any requests.
        """
        with self._lock:
            count = self.store.get(key)
            if count <= 0:
                return 0.0
            if mode == "raw":
                if self._raw_total <= 0:
                    return 0.0
                return (count / self._increment) / self._raw_total
            if mode == "decayed":
                if self._decayed_total <= 0:
                    return 0.0
                return count / self._decayed_total
        raise ConfigError(f"unknown popularity mode {mode!r}")

    def popularity_many(
        self, keys: Sequence[Key], mode: str = "raw"
    ) -> List[float]:
        """Popularities for ``keys`` from one consistent snapshot.

        One lock acquisition covers the whole batch, so all returned
        estimates share the same counts and totals — the property the
        guard's price stage relies on for multi-tuple queries.
        """
        with self._lock:
            return [self.popularity(key, mode) for key in keys]

    def max_popularity(self, mode: str = "raw") -> float:
        """Popularity of the most popular tracked key (0 if none)."""
        best = 0.0
        for key, _count in self.store.items():
            best = max(best, self.popularity(key, mode))
        return best

    def rank(self, key: Key) -> int:
        """1-based popularity rank of ``key`` (1 = most popular).

        Unseen keys rank after every tracked key. Ranks come from a
        cache refreshed every ``rank_refresh`` records, so they may lag
        the counts slightly — acceptable for delay assignment, where the
        ranking moves slowly.
        """
        with self._lock:
            if self._rank_cache is None:
                ordered = sorted(
                    self.store.items(), key=lambda item: item[1], reverse=True
                )
                self._rank_cache = {
                    key_: position + 1
                    for position, (key_, _) in enumerate(ordered)
                }
                self._records_since_rank = 0
            return self._rank_cache.get(key, len(self._rank_cache) + 1)

    def snapshot(self) -> List[Tuple[Key, float]]:
        """All (key, present_count) pairs, most popular first."""
        with self._lock:
            pairs = [
                (key, count / self._increment)
                for key, count in self.store.items()
            ]
        pairs.sort(key=lambda item: item[1], reverse=True)
        return pairs

    def tracked_keys(self) -> int:
        """Number of keys with a stored count."""
        return len(self.store)

    def reset(self) -> None:
        """Forget all history."""
        with self._lock:
            self.store.clear()
            self._increment = 1.0
            self._raw_total = 0.0
            self._decayed_total = 0.0
            self._rank_cache = None
            self._records_since_rank = 0


class AdaptiveTracker:
    """Several trackers with different decay terms, auto-selected (§2.3).

    The paper notes that when the right decay term is unknown, one can
    "simultaneously track counts with more than one decay term,
    switching to the appropriate set as the request pattern warrants" —
    the agile/stable estimator trick from wireless networking and energy
    management. Each candidate tracker scores its one-step-ahead
    predictive log-loss for the observed key (before updating); an EWMA
    of that loss selects the active tracker.

    Args:
        decay_rates: candidate γ values (must be unique, each >= 1).
        score_smoothing: EWMA factor in (0, 1]; smaller = slower switch.
        store_factory: builds a fresh count store per candidate.
    """

    _EPSILON = 1e-12

    def __init__(
        self,
        decay_rates: Sequence[float],
        score_smoothing: float = 0.02,
        store_factory=InMemoryCountStore,
    ):
        if not decay_rates:
            raise ConfigError("need at least one decay rate")
        if len(set(decay_rates)) != len(decay_rates):
            raise ConfigError("decay rates must be unique")
        if not 0 < score_smoothing <= 1:
            raise ConfigError("score_smoothing must be in (0, 1]")
        self.trackers: Dict[float, PopularityTracker] = {
            rate: PopularityTracker(store=store_factory(), decay_rate=rate)
            for rate in decay_rates
        }
        self.score_smoothing = score_smoothing
        self._lock = threading.Lock()
        self._scores: Dict[float, float] = {rate: 0.0 for rate in decay_rates}
        self._seen_any = False

    def record(self, key: Key, weight: float = 1.0) -> None:
        """Score each candidate's prediction for ``key``, then update all."""
        # Scoring reads every tracker before any of them is updated; the
        # lock keeps concurrent records from interleaving the two halves.
        with self._lock:
            for rate, tracker in self.trackers.items():
                predicted = max(
                    tracker.popularity(key, "decayed"), self._EPSILON
                )
                loss = -math.log(predicted)
                previous = self._scores[rate]
                if self._seen_any:
                    self._scores[rate] = (
                        (1 - self.score_smoothing) * previous
                        + self.score_smoothing * loss
                    )
                else:
                    self._scores[rate] = loss
            self._seen_any = True
            for tracker in self.trackers.values():
                tracker.record(key, weight)

    @property
    def active_rate(self) -> float:
        """The decay rate whose tracker currently predicts best."""
        return min(self._scores, key=self._scores.get)  # type: ignore[arg-type]

    @property
    def active(self) -> PopularityTracker:
        """The currently selected tracker."""
        return self.trackers[self.active_rate]

    def scores(self) -> Dict[float, float]:
        """Current EWMA predictive losses per decay rate (lower = better)."""
        return dict(self._scores)

    # Delegate the query interface to the active tracker so an
    # AdaptiveTracker can stand in wherever a PopularityTracker is used.

    def record_many(self, keys: Iterable[Key]) -> None:
        """Record a sequence of accesses in order."""
        for key in keys:
            self.record(key)

    def popularity(self, key: Key, mode: str = "raw") -> float:
        """Popularity under the currently best decay rate."""
        return self.active.popularity(key, mode)

    def popularity_many(
        self, keys: Sequence[Key], mode: str = "raw"
    ) -> List[float]:
        """Batch popularities under the currently best decay rate."""
        return self.active.popularity_many(keys, mode)

    def rank(self, key: Key) -> int:
        """Rank under the currently best decay rate."""
        return self.active.rank(key)

    def snapshot(self) -> List[Tuple[Key, float]]:
        """Snapshot under the currently best decay rate."""
        return self.active.snapshot()

    @property
    def total_requests(self) -> float:
        """Undecayed request total (same across candidates)."""
        return self.active.total_requests
