"""The delay-defense core: the paper's contribution.

Public surface:

* :class:`DelayGuard` — wrap a database so every retrieval pays a
  popularity- or update-rate-based delay (§2, §3).
* :class:`GuardConfig` — declarative guard configuration.
* Policies — :class:`PopularityDelayPolicy`, :class:`UpdateRateDelayPolicy`,
  baselines, and composition.
* Trackers — :class:`PopularityTracker` (decayed counts, §2.3),
  :class:`AdaptiveTracker` (multi-decay), :class:`UpdateRateTracker` (§3).
* Count stores — exact, write-behind, and sampled synopses (§4.4).
* :mod:`repro.core.analysis` — closed forms of equations (1)-(12).
* Defenses — :class:`AccountManager` and rate limiters (§2.4).
* Staleness — snapshot evaluation for the data-change defense (§3).
"""

from . import analysis
from .accounts import Account, AccountManager, AccountPolicy
from .clock import Clock, RealClock, VirtualClock
from .config import GuardConfig
from .counts import (
    CountingSampleStore,
    CountStore,
    InMemoryCountStore,
    SpaceSavingStore,
    WriteBehindCountStore,
)
from .detection import CoverageMonitor, IdentityProfile, Suspect, attach_monitor
from .delay_policy import (
    CompositeDelayPolicy,
    DelayPolicy,
    FixedDelayPolicy,
    NoDelayPolicy,
    PopularityDelayPolicy,
    UpdateRateDelayPolicy,
)
from .errors import AccessDenied, ConfigError, DelayDefenseError, UnknownAccount
from .guard import DelayGuard, GuardedResult, GuardStats, TupleKey
from .pipeline import QueryContext, QueryPipeline, Stage
from .popularity import AdaptiveTracker, PopularityTracker
from .ratelimit import FixedIntervalGate, TokenBucket
from .resilience import BackoffPolicy, BreakerOpen, CircuitBreaker
from .result_cache import CachedResult, ResultCache
from .staleness import (
    ExtractedTuple,
    Snapshot,
    StalenessReport,
    stale_fraction,
    stale_fraction_from_history,
)
from .update_tracker import UpdateRateTracker

__all__ = [
    "AccessDenied",
    "Account",
    "AccountManager",
    "AccountPolicy",
    "AdaptiveTracker",
    "BackoffPolicy",
    "BreakerOpen",
    "CachedResult",
    "CircuitBreaker",
    "Clock",
    "CompositeDelayPolicy",
    "ConfigError",
    "CountStore",
    "CountingSampleStore",
    "CoverageMonitor",
    "DelayDefenseError",
    "DelayGuard",
    "DelayPolicy",
    "ExtractedTuple",
    "FixedDelayPolicy",
    "FixedIntervalGate",
    "GuardConfig",
    "GuardStats",
    "GuardedResult",
    "IdentityProfile",
    "InMemoryCountStore",
    "NoDelayPolicy",
    "PopularityDelayPolicy",
    "PopularityTracker",
    "QueryContext",
    "QueryPipeline",
    "RealClock",
    "ResultCache",
    "Stage",
    "Snapshot",
    "SpaceSavingStore",
    "StalenessReport",
    "Suspect",
    "TokenBucket",
    "TupleKey",
    "UnknownAccount",
    "UpdateRateDelayPolicy",
    "UpdateRateTracker",
    "VirtualClock",
    "WriteBehindCountStore",
    "analysis",
    "attach_monitor",
    "stale_fraction",
    "stale_fraction_from_history",
]
