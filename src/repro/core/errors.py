"""Exception hierarchy for the delay-defense layer."""

from __future__ import annotations


class DelayDefenseError(Exception):
    """Base class for all delay-layer errors."""


class ConfigError(DelayDefenseError):
    """Raised for invalid guard or policy configuration."""


class AccessDenied(DelayDefenseError):
    """Raised when a request is refused outright (quota or rate limit).

    Attributes:
        reason: machine-readable cause, e.g. "query_quota",
            "registration_rate", "subnet_rate".
        retry_after: seconds until the caller may retry, when known.
    """

    def __init__(self, reason: str, retry_after: float = 0.0):
        super().__init__(f"access denied: {reason}")
        self.reason = reason
        self.retry_after = retry_after


class ShardUnavailable(AccessDenied):
    """A structured denial for queries needing a dead replica group.

    The defense's priced surface must never silently shrink: when every
    member of a shard's replica group is down, queries that need that
    partition are refused with this machine-readable denial instead of
    a raw transport error — the caller learns *which* shards are gone
    and when to retry (the group monitor's next probe window).

    Attributes:
        shards: the shard indexes that could not serve.
        retry_after: seconds until a failover probe may have promoted a
            replacement.
    """

    def __init__(self, shards, retry_after: float = 0.0):
        super().__init__("shard_unavailable", retry_after=retry_after)
        self.shards = sorted(shards)
        self.args = (
            "access denied: shard_unavailable "
            f"(shards {self.shards}, retry_after={retry_after:.3f}s)",
        )


class UnknownAccount(DelayDefenseError):
    """Raised when a session references an unregistered identity."""
