"""Exception hierarchy for the delay-defense layer."""

from __future__ import annotations


class DelayDefenseError(Exception):
    """Base class for all delay-layer errors."""


class ConfigError(DelayDefenseError):
    """Raised for invalid guard or policy configuration."""


class AccessDenied(DelayDefenseError):
    """Raised when a request is refused outright (quota or rate limit).

    Attributes:
        reason: machine-readable cause, e.g. "query_quota",
            "registration_rate", "subnet_rate".
        retry_after: seconds until the caller may retry, when known.
    """

    def __init__(self, reason: str, retry_after: float = 0.0):
        super().__init__(f"access denied: {reason}")
        self.reason = reason
        self.retry_after = retry_after


class UnknownAccount(DelayDefenseError):
    """Raised when a session references an unregistered identity."""
