"""Delay policies: mapping a tuple to the seconds it must be delayed.

The paper's core proposal (§2) charges each retrieved tuple a delay
inversely proportional to its popularity; §3 swaps popularity for update
rate. Both are provided here, plus trivial and composite policies used
as baselines and for ablation benchmarks.

All policies implement :meth:`DelayPolicy.delay_for` over opaque tuple
keys; the :class:`~repro.core.guard.DelayGuard` supplies engine rowids.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Optional, Sequence, Union

from .counts import Key
from .errors import ConfigError
from .popularity import AdaptiveTracker, PopularityTracker
from .update_tracker import UpdateRateTracker

#: Table-size provider: a constant or a zero-argument callable.
Population = Union[int, Callable[[], int]]


def _resolve_population(population: Population) -> int:
    size = population() if callable(population) else population
    if size < 1:
        return 1
    return int(size)


class DelayPolicy:
    """Interface: per-tuple delay assignment."""

    def delay_for(self, key: Key) -> float:
        """Seconds of delay to charge for retrieving ``key``."""
        raise NotImplementedError

    def delays_for(self, keys: Sequence[Key]) -> List[float]:
        """Per-key delays for a whole result set in one call.

        Subclasses backed by a tracker override this to read every
        count under one lock acquisition and resolve the population
        once, so a multi-tuple query is priced against a consistent
        snapshot even while other threads record accesses. The default
        just loops :meth:`delay_for`.
        """
        return [self.delay_for(key) for key in keys]

    def describe(self) -> str:
        """One-line human-readable description."""
        return type(self).__name__


class NoDelayPolicy(DelayPolicy):
    """Baseline: never delay (an unprotected database)."""

    def delay_for(self, key: Key) -> float:
        return 0.0

    def describe(self) -> str:
        return "no delay"


class FixedDelayPolicy(DelayPolicy):
    """Baseline: the naive scheme — every tuple costs the same delay.

    This is the strawman the paper improves on: it either hurts
    legitimate users (large delay) or fails to slow the adversary
    (small delay).
    """

    def __init__(self, delay: float):
        if delay < 0:
            raise ConfigError(f"delay must be >= 0, got {delay}")
        self.delay = float(delay)

    def delay_for(self, key: Key) -> float:
        return self.delay

    def describe(self) -> str:
        return f"fixed {self.delay:g}s"


class PopularityDelayPolicy(DelayPolicy):
    """The paper's core scheme (§2.1-§2.2): delay ∝ 1/popularity, capped.

    For a tuple with measured popularity ``p`` and rank ``i`` this
    charges ``unit · i^β / (N · p)`` seconds, clamped to ``cap``. When
    the workload follows Zipf(α) — so ``p = fmax · i^-α`` — the charge
    is exactly equation (1): ``i^(α+β) / (N · fmax)``.

    Tuples with no recorded popularity (including everything during the
    cold-start transient, §2.3) get the cap: early queries are served in
    bounded time while the distribution is being learned, and the delay
    of popular items falls rapidly thereafter.

    Args:
        tracker: popularity source (plain or adaptive).
        population: table size N (int or callable).
        cap: maximum per-tuple delay d_max in seconds (§2.2). ``None``
            disables the cap — then unseen tuples get ``uncapped_cold``
            seconds instead.
        beta: extra penalty exponent β >= 0 (needs tuple ranks, which
            cost a periodic sort; leave at 0 for rank-free operation).
        unit: scale factor in seconds (the proportionality constant).
        mode: popularity normalisation, "raw" (paper) or "decayed".
    """

    def __init__(
        self,
        tracker: Union[PopularityTracker, AdaptiveTracker],
        population: Population,
        cap: Optional[float] = 10.0,
        beta: float = 0.0,
        unit: float = 1.0,
        mode: str = "raw",
        uncapped_cold: float = 3600.0,
    ):
        if cap is not None and cap <= 0:
            raise ConfigError(f"cap must be positive, got {cap}")
        if beta < 0:
            raise ConfigError(f"beta must be >= 0, got {beta}")
        if unit <= 0:
            raise ConfigError(f"unit must be positive, got {unit}")
        if mode not in ("raw", "decayed"):
            raise ConfigError(f"unknown popularity mode {mode!r}")
        self.tracker = tracker
        self.population = population
        self.cap = cap
        self.beta = beta
        self.unit = unit
        self.mode = mode
        self.uncapped_cold = uncapped_cold

    def delay_for(self, key: Key) -> float:
        popularity = self.tracker.popularity(key, self.mode)
        n = _resolve_population(self.population)
        return self._price(key, popularity, n)

    def delays_for(self, keys: Sequence[Key]) -> List[float]:
        """Batch pricing against one consistent popularity snapshot.

        All counts are read under a single tracker lock acquisition and
        the population N is resolved once, so every tuple in a result
        set is priced against the same state — a concurrent recorder
        can't make two tuples of one query see different totals.
        """
        if not keys:
            return []
        popularities = self.tracker.popularity_many(keys, self.mode)
        n = _resolve_population(self.population)
        return [
            self._price(key, popularity, n)
            for key, popularity in zip(keys, popularities)
        ]

    def _price(self, key: Key, popularity: float, n: int) -> float:
        if popularity <= 0.0:
            return self.cap if self.cap is not None else self.uncapped_cold
        delay = self.unit / (n * popularity)
        if self.beta:
            delay *= self.tracker.rank(key) ** self.beta
        if self.cap is not None:
            delay = min(delay, self.cap)
        return delay

    def describe(self) -> str:
        cap = f"{self.cap:g}s" if self.cap is not None else "none"
        return (
            f"popularity (beta={self.beta:g}, cap={cap}, unit={self.unit:g}, "
            f"mode={self.mode})"
        )


class UpdateRateDelayPolicy(DelayPolicy):
    """The data-change scheme (§3): delay ∝ 1/update-rate, capped.

    Charges ``c / (N · r)`` seconds for a tuple with estimated update
    rate ``r`` updates/second. When update rates follow Zipf(α) — so
    ``r = rmax · i^-α`` — this is exactly equation (9):
    ``(c/N) · i^α / rmax``. Choosing ``c`` via
    :func:`repro.core.analysis.required_c_for_staleness` guarantees a
    target fraction of any extracted snapshot is stale (eq. 12).

    Never-updated tuples are charged the cap.
    """

    def __init__(
        self,
        tracker: UpdateRateTracker,
        population: Population,
        c: float = 1.0,
        cap: Optional[float] = 10.0,
    ):
        if c <= 0:
            raise ConfigError(f"c must be positive, got {c}")
        if cap is not None and cap <= 0:
            raise ConfigError(f"cap must be positive, got {cap}")
        self.tracker = tracker
        self.population = population
        self.c = float(c)
        self.cap = cap

    def delay_for(self, key: Key) -> float:
        rate = self.tracker.rate(key)
        n = _resolve_population(self.population)
        return self._price(rate, n)

    def delays_for(self, keys: Sequence[Key]) -> List[float]:
        """Batch pricing against one consistent rate snapshot."""
        if not keys:
            return []
        rates = self.tracker.rate_many(keys)
        n = _resolve_population(self.population)
        return [self._price(rate, n) for rate in rates]

    def _price(self, rate: float, n: int) -> float:
        if rate <= 0.0:
            return self.cap if self.cap is not None else math.inf
        delay = self.c / (n * rate)
        if self.cap is not None:
            delay = min(delay, self.cap)
        return delay

    def describe(self) -> str:
        cap = f"{self.cap:g}s" if self.cap is not None else "none"
        return f"update-rate (c={self.c:g}, cap={cap})"


class CompositeDelayPolicy(DelayPolicy):
    """Combine several policies by max or sum.

    ``max`` is the natural combination when both access *and* update
    skew exist: a tuple cheap under one signal may still be penalised by
    the other, so the defense degrades gracefully when either skew
    disappears (a §3 extension the paper hints at).
    """

    def __init__(self, policies: Sequence[DelayPolicy], combine: str = "max"):
        if not policies:
            raise ConfigError("need at least one policy to combine")
        if combine not in ("max", "sum", "min"):
            raise ConfigError(f"unknown combine mode {combine!r}")
        self.policies = list(policies)
        self.combine = combine

    def delay_for(self, key: Key) -> float:
        delays = [policy.delay_for(key) for policy in self.policies]
        return self._combine(delays)

    def delays_for(self, keys: Sequence[Key]) -> List[float]:
        """Batch each inner policy once, then combine column-wise."""
        if not keys:
            return []
        columns = [policy.delays_for(keys) for policy in self.policies]
        return [self._combine(values) for values in zip(*columns)]

    def _combine(self, delays: Sequence[float]) -> float:
        if self.combine == "max":
            return max(delays)
        if self.combine == "sum":
            return sum(delays)
        return min(delays)

    def describe(self) -> str:
        inner = ", ".join(policy.describe() for policy in self.policies)
        return f"{self.combine}({inner})"
