"""Identity management and the §2.4 anti-parallelism defenses.

The paper's delay scheme charges delay per *query stream*; an adversary
who manufactures many identities (a Sybil attack) pays only the maximum
of the streams rather than the sum. §2.4 proposes three countermeasures,
all implemented here:

* **Registration throttling** — at most one new account per ``t``
  seconds, so amassing ``k`` identities takes at least ``k·t`` seconds.
* **Registration fees** — a per-account fee priced so a parallel
  adversary spends as much on registration as the data is worth.
* **Subnet aggregation** — identities from one subnet share one rate
  limit, since forging many *routable* addresses outside one's own
  subnet is hard (responses must be routed back).

Per-identity query quotas (the storefront defense) are enforced here as
well.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from .clock import Clock, VirtualClock
from .errors import AccessDenied, ConfigError, UnknownAccount
from .ratelimit import FixedIntervalGate, TokenBucket


@dataclass
class Account:
    """A registered identity."""

    identity: str
    subnet: str
    registered_at: float
    fee_paid: float = 0.0
    queries_issued: int = 0
    tuples_retrieved: int = 0


@dataclass
class AccountPolicy:
    """Configuration for the account-level defenses.

    Attributes:
        registration_interval: minimum seconds between new accounts
            (None disables throttling).
        registration_fee: fee charged per account (0 disables).
        user_query_rate / user_query_burst: per-identity token bucket
            (None disables).
        subnet_query_rate / subnet_query_burst: per-subnet aggregate
            token bucket (None disables) — the Sybil defense.
        daily_query_quota: hard cap on queries per identity per day
            (None disables) — the storefront defense. A "day" is 86400
            clock seconds from first use.
    """

    registration_interval: Optional[float] = None
    registration_fee: float = 0.0
    user_query_rate: Optional[float] = None
    user_query_burst: float = 10.0
    subnet_query_rate: Optional[float] = None
    subnet_query_burst: float = 20.0
    daily_query_quota: Optional[int] = None


class AccountManager:
    """Registers identities and authorizes their queries.

    Thread-safe: the server's old global statement lock used to be the
    only thing serialising concurrent handlers through here, so the
    manager now takes its own reentrant lock around every operation
    that reads or mutates account state. The gate/bucket primitives are
    only ever touched through the manager, so they are covered too.
    """

    DAY_SECONDS = 86400.0

    def __init__(
        self,
        policy: Optional[AccountPolicy] = None,
        clock: Optional[Clock] = None,
    ):
        self.policy = policy if policy is not None else AccountPolicy()
        self.clock = clock if clock is not None else VirtualClock()
        self.accounts: Dict[str, Account] = {}
        self.fees_collected = 0.0
        self._registration_gate = (
            FixedIntervalGate(self.policy.registration_interval, self.clock)
            if self.policy.registration_interval
            else None
        )
        self._user_buckets: Dict[str, TokenBucket] = {}
        self._subnet_buckets: Dict[str, TokenBucket] = {}
        self._quota_windows: Dict[str, tuple] = {}  # identity -> (start, used)
        # Reentrant: authorize_query -> account() nests.
        self._lock = threading.RLock()

    # -- registration ------------------------------------------------------

    def register(self, identity: str, subnet: str = "0.0.0.0/0") -> Account:
        """Register a new identity, enforcing the registration throttle.

        Raises :class:`AccessDenied` (reason ``registration_rate``) if
        the gate is closed, with ``retry_after`` set.
        """
        with self._lock:
            if identity in self.accounts:
                raise ConfigError(f"identity {identity!r} already registered")
            if self._registration_gate is not None:
                wait = self._registration_gate.try_admit()
                if wait > 0:
                    raise AccessDenied("registration_rate", retry_after=wait)
            account = Account(
                identity=identity,
                subnet=subnet,
                registered_at=self.clock.now(),
                fee_paid=self.policy.registration_fee,
            )
            self.fees_collected += self.policy.registration_fee
            self.accounts[identity] = account
            return account

    def time_to_register(self, count: int) -> float:
        """Lower bound on seconds for ``count`` further registrations."""
        if self._registration_gate is None:
            return 0.0
        return self._registration_gate.time_to_accumulate(count)

    def cost_to_register(self, count: int) -> float:
        """Total fees for ``count`` further registrations."""
        return count * self.policy.registration_fee

    # -- authorization -------------------------------------------------------

    def account(self, identity: str) -> Account:
        """Look up a registered identity or raise UnknownAccount."""
        with self._lock:
            try:
                return self.accounts[identity]
            except KeyError:
                raise UnknownAccount(
                    f"identity {identity!r} is not registered"
                ) from None

    def authorize_query(self, identity: str) -> None:
        """Check every per-query limit for ``identity`` or raise.

        Enforcement order: daily quota, per-identity rate, subnet rate.
        On success the query is charged against all applicable limits.
        """
        with self._lock:
            account = self.account(identity)
            self._check_quota(account)
            self._check_bucket(
                self._user_buckets,
                account.identity,
                self.policy.user_query_rate,
                self.policy.user_query_burst,
                "user_rate",
            )
            self._check_bucket(
                self._subnet_buckets,
                account.subnet,
                self.policy.subnet_query_rate,
                self.policy.subnet_query_burst,
                "subnet_rate",
            )
            account.queries_issued += 1

    def record_retrieval(self, identity: str, tuples: int) -> None:
        """Account for tuples returned to ``identity`` (bookkeeping)."""
        with self._lock:
            self.account(identity).tuples_retrieved += tuples

    def _check_quota(self, account: Account) -> None:
        quota = self.policy.daily_query_quota
        if quota is None:
            return
        now = self.clock.now()
        start, used = self._quota_windows.get(account.identity, (now, 0))
        if now - start >= self.DAY_SECONDS:
            start, used = now, 0
        if used >= quota:
            retry = start + self.DAY_SECONDS - now
            raise AccessDenied("query_quota", retry_after=max(retry, 0.0))
        self._quota_windows[account.identity] = (start, used + 1)

    def _check_bucket(
        self,
        buckets: Dict[str, TokenBucket],
        key: str,
        rate: Optional[float],
        burst: float,
        reason: str,
    ) -> None:
        if rate is None:
            return
        bucket = buckets.get(key)
        if bucket is None:
            bucket = TokenBucket(rate, burst, self.clock)
            buckets[key] = bucket
        wait = bucket.try_acquire()
        if wait > 0:
            raise AccessDenied(reason, retry_after=wait)

    # -- persistence -------------------------------------------------------------

    def dump_state(self) -> Dict:
        """Serialise registered identities and quota windows.

        Token-bucket levels are deliberately *not* persisted: they refill
        within seconds of restart, and carrying stale levels across a
        recovery whose wall-clock gap is unknown would be wrong more
        often than right. Daily quota windows and the registration
        gate's history *are* kept — those are the defenses an adversary
        could otherwise reset by crashing the service.
        """
        with self._lock:
            return {
                "accounts": [
                    {
                        "identity": a.identity,
                        "subnet": a.subnet,
                        "registered_at": a.registered_at,
                        "fee_paid": a.fee_paid,
                        "queries_issued": a.queries_issued,
                        "tuples_retrieved": a.tuples_retrieved,
                    }
                    for a in self.accounts.values()
                ],
                "fees_collected": self.fees_collected,
                "quota_windows": {
                    identity: list(window)
                    for identity, window in self._quota_windows.items()
                },
                "registration_gate": (
                    {
                        "last": self._registration_gate._last,
                        "admitted": self._registration_gate.admitted,
                    }
                    if self._registration_gate is not None
                    else None
                ),
            }

    def load_state(self, payload: Dict) -> None:
        """Restore :meth:`dump_state` output, replacing current state.

        The policy itself is configuration, not state — it comes from
        the service's constructor, and this method only restores what
        accumulated under it.
        """
        with self._lock:
            self.accounts = {
                entry["identity"]: Account(
                    identity=entry["identity"],
                    subnet=entry["subnet"],
                    registered_at=entry["registered_at"],
                    fee_paid=entry["fee_paid"],
                    queries_issued=entry["queries_issued"],
                    tuples_retrieved=entry["tuples_retrieved"],
                )
                for entry in payload["accounts"]
            }
            self.fees_collected = float(payload["fees_collected"])
            self._quota_windows = {
                identity: tuple(window)
                for identity, window in payload.get(
                    "quota_windows", {}
                ).items()
            }
            gate_state = payload.get("registration_gate")
            if gate_state is not None and self._registration_gate is not None:
                self._registration_gate._last = gate_state["last"]
                self._registration_gate.admitted = gate_state["admitted"]
            self._user_buckets = {}
            self._subnet_buckets = {}

    # -- reporting --------------------------------------------------------------

    def subnet_accounts(self, subnet: str) -> int:
        """How many identities are registered from ``subnet``."""
        with self._lock:
            return sum(
                1 for a in self.accounts.values() if a.subnet == subnet
            )
