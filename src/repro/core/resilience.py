"""Client-side resilience: retry backoff and a circuit breaker.

The delay defense prices adversaries into long waits, which makes the
front door a natural choke point — and a natural *outage amplifier* if
every client hammers it with immediate retries the moment it staggers.
This module gives :class:`~repro.server.DelayClient` the two standard
counter-measures:

* :class:`BackoffPolicy` — capped exponential backoff with **full
  jitter** (wait is drawn uniformly from ``[0, min(cap, base·2^n)]``),
  so a fleet of clients that failed together does not retry together.
* :class:`CircuitBreaker` — a per-endpoint closed → open → half-open
  state machine: after ``failure_threshold`` consecutive transport or
  overload failures the breaker *opens* and calls fail fast locally for
  ``probe_interval`` seconds; then exactly one probe is let through
  (*half-open*), and its outcome closes the breaker or re-opens it.

Both are deliberately transport-agnostic (they never import the server
module) so they can wrap any caller. Time is injectable for tests.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Dict, Optional

from .errors import ConfigError, DelayDefenseError

__all__ = ["BackoffPolicy", "BreakerOpen", "CircuitBreaker"]


class BackoffPolicy:
    """Capped exponential backoff with full jitter.

    Args:
        base: first-attempt ceiling in seconds (attempt 0 waits in
            ``[0, base]``).
        cap: largest possible wait, whatever the attempt number.
        multiplier: growth factor per attempt.
        rng: random source (injectable for deterministic tests).
    """

    def __init__(
        self,
        base: float = 0.05,
        cap: float = 5.0,
        multiplier: float = 2.0,
        rng: Optional[random.Random] = None,
    ):
        if base <= 0 or cap < base or multiplier < 1:
            raise ConfigError(
                f"need 0 < base <= cap and multiplier >= 1, got "
                f"base={base} cap={cap} multiplier={multiplier}"
            )
        self.base = base
        self.cap = cap
        self.multiplier = multiplier
        self._rng = rng if rng is not None else random.Random()

    def ceiling(self, attempt: int) -> float:
        """The un-jittered ceiling for retry number ``attempt`` (0-based)."""
        return min(self.cap, self.base * self.multiplier ** attempt)

    def wait(self, attempt: int) -> float:
        """Draw the jittered wait for retry number ``attempt``."""
        return self._rng.uniform(0.0, self.ceiling(attempt))


class BreakerOpen(DelayDefenseError):
    """Raised locally when the circuit breaker refuses to place a call.

    Attributes:
        retry_after: seconds until the breaker will allow a probe.
    """

    def __init__(self, endpoint: str, retry_after: float):
        super().__init__(
            f"circuit breaker open for {endpoint}; "
            f"probe allowed in {retry_after:.3f}s"
        )
        self.reason = "circuit_open"
        self.retry_after = retry_after


class CircuitBreaker:
    """Closed → open → half-open breaker for one endpoint.

    Failures are *consecutive*: any success resets the count. Only the
    caller decides what counts as a failure — transport errors and
    overload sheds should; semantic denials (bad SQL, quota) should
    not, because the server answered them healthily.

    States:

    * ``closed`` — calls pass; ``failure_threshold`` consecutive
      failures trip to open.
    * ``open`` — calls raise :class:`BreakerOpen` immediately until
      ``probe_interval`` seconds have passed since opening.
    * ``half_open`` — exactly one call (the probe) passes; its success
      closes the breaker, its failure re-opens it (restarting the
      probe timer). Concurrent calls during the probe fail fast.

    Thread-safe; ``time_source`` is injectable so tests can walk the
    state machine without real waits.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        endpoint: str = "",
        failure_threshold: int = 5,
        probe_interval: float = 1.0,
        time_source: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if probe_interval <= 0:
            raise ConfigError(
                f"probe_interval must be positive, got {probe_interval}"
            )
        self.endpoint = endpoint
        self.failure_threshold = failure_threshold
        self.probe_interval = probe_interval
        self._now = time_source
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: lifetime transition counts, e.g. {"closed->open": 2, ...}.
        self.transitions: Dict[str, int] = {}

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when the probe
        timer has expired."""
        with self._lock:
            self._advance()
            return self._state

    def _advance(self) -> None:
        if (
            self._state == self.OPEN
            and self._now() - self._opened_at >= self.probe_interval
        ):
            self._transition(self.HALF_OPEN)

    def _transition(self, new_state: str) -> None:
        if new_state == self._state:
            return
        key = f"{self._state}->{new_state}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        self._state = new_state
        if new_state == self.HALF_OPEN:
            self._probe_in_flight = False

    # -- the caller protocol -------------------------------------------------

    def before_call(self) -> None:
        """Gate one outgoing call; raises :class:`BreakerOpen` if the
        breaker refuses it. A permitted half-open call becomes *the*
        probe; further calls fail fast until it reports back."""
        with self._lock:
            self._advance()
            if self._state == self.CLOSED:
                return
            if self._state == self.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return
            remaining = max(
                0.0,
                self._opened_at + self.probe_interval - self._now(),
            )
            raise BreakerOpen(self.endpoint, remaining)

    def record_success(self) -> None:
        """Report a healthy response for a permitted call."""
        with self._lock:
            self._consecutive_failures = 0
            if self._state in (self.HALF_OPEN, self.OPEN):
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """Report a breaker-relevant failure for a permitted call."""
        with self._lock:
            self._advance()
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN:
                # The probe failed: back to open, restart the timer.
                self._opened_at = self._now()
                self._transition(self.OPEN)
            elif (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._now()
                self._transition(self.OPEN)

    def snapshot(self) -> Dict:
        """JSON-compatible view for metrics / debugging."""
        with self._lock:
            self._advance()
            return {
                "endpoint": self.endpoint,
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "transitions": dict(self.transitions),
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.endpoint!r}, state={self.state!r}, "
            f"failures={self._consecutive_failures})"
        )
