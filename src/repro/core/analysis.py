"""Closed-form analysis of the delay scheme (paper equations 1-12).

These functions implement the paper's Zipfian analysis exactly, so that
simulations can be cross-checked against theory in tests and benchmark
output can report paper-predicted values next to measured ones.

Conventions: ranks are 1-based; ``alpha`` is the Zipf parameter of the
popularity (or update-rate) distribution; ``beta`` is the operator-chosen
penalty exponent; ``fmax`` is the frequency of the most popular item;
``n`` is the number of tuples.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from .errors import ConfigError


def zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Normalised Zipf probabilities for ranks 1..n.

    >>> zipf_weights(2, 1.0)
    array([0.66666667, 0.33333333])
    """
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-float(alpha))
    return weights / weights.sum()


def generalized_harmonic(n: int, s: float) -> float:
    """H(n, s) = sum_{i=1}^{n} i^-s (the generalized harmonic number)."""
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((ranks ** (-float(s))).sum())


def power_sum(n: int, p: float) -> float:
    """sum_{i=1}^{n} i^p, computed stably for large n."""
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    # Direct vectorised sum; for huge n fall back to the Euler-Maclaurin
    # leading terms to avoid allocating enormous arrays.
    if n <= 10_000_000:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        return float((ranks ** float(p)).sum())
    if p == -1.0:
        return math.log(n) + 0.5772156649015329 + 1.0 / (2 * n)
    return (n ** (p + 1)) / (p + 1) + (n ** p) / 2.0


# -- popularity-based delays (§2.1, §2.2) ---------------------------------


def popularity_delay(
    rank: int,
    n: int,
    fmax: float,
    alpha: float,
    beta: float = 0.0,
    cap: Optional[float] = None,
) -> float:
    """Equation (1): delay of the rank-``rank`` tuple, optionally capped.

    ``d = i^(α+β) / (N · fmax)``, clamped to ``cap`` when given (§2.2).
    """
    if rank < 1:
        raise ConfigError(f"rank must be >= 1, got {rank}")
    if fmax <= 0:
        raise ConfigError(f"fmax must be positive, got {fmax}")
    delay = (rank ** (alpha + beta)) / (n * fmax)
    if cap is not None:
        delay = min(delay, cap)
    return delay


def cap_rank(
    n: int, fmax: float, alpha: float, beta: float, dmax: float
) -> int:
    """Equation (5) inverted: the rank M at which delay reaches ``dmax``.

    Tuples ranked deeper than M are all served at the cap. The result is
    clamped to [1, n].
    """
    if dmax <= 0:
        raise ConfigError(f"dmax must be positive, got {dmax}")
    exponent = alpha + beta
    if exponent <= 0:
        return n
    m = (dmax * n * fmax) ** (1.0 / exponent)
    return max(1, min(n, int(math.floor(m))))


def total_extraction_delay(
    n: int,
    fmax: float,
    alpha: float,
    beta: float = 0.0,
    cap: Optional[float] = None,
) -> float:
    """Equations (2)/(6): total delay to extract all ``n`` tuples.

    Without a cap this is ``(1/(N·fmax)) · Σ i^(α+β)``; with a cap the
    tuples past the cap rank M each cost ``dmax`` (eq. 6).
    """
    exponent = alpha + beta
    if cap is None:
        return power_sum(n, exponent) / (n * fmax)
    m = cap_rank(n, fmax, alpha, beta, cap)
    head = power_sum(m, exponent) / (n * fmax)
    # Clamp each head term at the cap too (the rank-M tuple may exceed
    # dmax slightly because M is floored).
    head = min(head, m * cap)
    return head + (n - m) * cap


def median_rank(n: int, alpha: float) -> int:
    """Exact median rank of a Zipf(α) distribution over n items.

    The smallest rank m with cumulative probability >= 1/2: the rank of
    the item that serves the median request.
    """
    weights = zipf_weights(n, alpha)
    cumulative = np.cumsum(weights)
    return int(np.searchsorted(cumulative, 0.5) + 1)


def median_rank_asymptotic(n: int, alpha: float) -> float:
    """Equation (3): the asymptotic order of the median rank.

    Returns the Θ-class representative (no hidden constant):
    ``2^(1/(α-1)) · N`` for α < 1 — note the exponent is negative, so
    this shrinks relative to N as α→1⁻ — ``sqrt(N)`` for α = 1, and
    ``log N`` for α > 1.
    """
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    if alpha < 1.0:
        return (2.0 ** (1.0 / (alpha - 1.0))) * n
    if alpha == 1.0:
        return math.sqrt(n)
    return math.log(n)


def median_delay(
    n: int,
    fmax: float,
    alpha: float,
    beta: float = 0.0,
    cap: Optional[float] = None,
) -> float:
    """Median per-request delay for legitimate users.

    The delay of the median-rank tuple (the cap does not change the
    median rank, per §2.2).
    """
    return popularity_delay(median_rank(n, alpha), n, fmax, alpha, beta, cap)


def adversary_to_user_ratio(
    n: int,
    fmax: float,
    alpha: float,
    beta: float = 0.0,
    cap: Optional[float] = None,
) -> float:
    """Equations (4)/(7): total adversary delay over median user delay."""
    med = median_delay(n, fmax, alpha, beta, cap)
    if med == 0:
        return math.inf
    return total_extraction_delay(n, fmax, alpha, beta, cap) / med


def ratio_asymptotic(n: int, alpha: float, beta: float) -> float:
    """Equation (4)'s Θ-class representative for d_total/d_med."""
    if alpha < 1.0:
        return (2.0 ** ((alpha + beta) / (1.0 - alpha))) * n
    if alpha == 1.0:
        return n ** ((beta + 3.0) / 2.0)
    return n * (n / math.log(n)) ** (alpha + beta)


# -- update-rate-based delays (§3) ------------------------------------------


def update_delay(
    rank: int,
    n: int,
    rmax: float,
    alpha: float,
    c: float,
    cap: Optional[float] = None,
) -> float:
    """Equation (9): delay of the rank-``rank`` tuple by update rate.

    ``d(i) = (c/N) · i^α / rmax`` where rank 1 is the most frequently
    updated tuple.
    """
    if rank < 1:
        raise ConfigError(f"rank must be >= 1, got {rank}")
    if rmax <= 0:
        raise ConfigError(f"rmax must be positive, got {rmax}")
    if c <= 0:
        raise ConfigError(f"c must be positive, got {c}")
    delay = (c / n) * (rank ** alpha) / rmax
    if cap is not None:
        delay = min(delay, cap)
    return delay


def total_update_extraction_delay(
    n: int, rmax: float, alpha: float, c: float, cap: Optional[float] = None
) -> float:
    """Total extraction delay under the update-rate scheme."""
    if cap is None:
        return (c / (n * rmax)) * power_sum(n, alpha)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    delays = np.minimum((c / n) * (ranks ** alpha) / rmax, cap)
    return float(delays.sum())


def staleness_fraction(c: float, alpha: float) -> float:
    """Equation (12): S ≈ (c/(1+α))^(1/α), clamped to [0, 1].

    The fraction of the dataset guaranteed stale by the time a
    sequential extraction completes, for delay constant ``c``.
    """
    if alpha <= 0:
        raise ConfigError(f"alpha must be positive, got {alpha}")
    if c <= 0:
        return 0.0
    return min(1.0, (c / (1.0 + alpha)) ** (1.0 / alpha))


def max_staleness(cmax: float, alpha: float) -> float:
    """Equation (12) at the largest tolerable constant ``cmax``."""
    return staleness_fraction(cmax, alpha)


def required_c_for_staleness(target: float, alpha: float) -> float:
    """Invert eq. (12): the constant c achieving staleness ``target``."""
    if not 0 < target <= 1:
        raise ConfigError(f"target staleness must be in (0, 1], got {target}")
    if alpha <= 0:
        raise ConfigError(f"alpha must be positive, got {alpha}")
    return (target ** alpha) * (1.0 + alpha)


def exact_stale_fraction(
    n: int, rmax: float, alpha: float, c: float, cap: Optional[float] = None
) -> float:
    """Exact staleness from equations (10)-(11), no approximation.

    An item at rank i (update rate ``r_i = rmax·i^-α``) is stale when
    the total extraction delay is at least its update period ``1/r_i``.
    Returns the stale fraction of the dataset.
    """
    d_total = total_update_extraction_delay(n, rmax, alpha, c, cap)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    rates = rmax * ranks ** (-float(alpha))
    stale = int((d_total >= 1.0 / rates).sum())
    return stale / n


# -- distribution fitting -----------------------------------------------------


def fit_zipf_alpha(frequencies: Sequence[float]) -> float:
    """Least-squares estimate of α from rank-ordered frequencies.

    Fits ``log f_i = log f_1 - α log i`` over the strictly positive
    entries of an already rank-sorted frequency list. Used to verify the
    synthetic traces exhibit the skew the paper's datasets had.
    """
    cleaned = [f for f in frequencies if f > 0]
    if len(cleaned) < 2:
        raise ConfigError("need at least two positive frequencies to fit")
    ranks = np.log(np.arange(1, len(cleaned) + 1, dtype=np.float64))
    values = np.log(np.asarray(cleaned, dtype=np.float64))
    slope, _intercept = np.polyfit(ranks, values, 1)
    return float(-slope)
