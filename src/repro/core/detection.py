"""Extraction detection: noticing the robot in the traffic (§2.4).

The paper's storefront discussion observes that a large-scale relay or
extraction shows up as anomalous traffic — "If the adversary is of
significant size, we will notice the increased traffic, and a simple
imposition of a limit on queries from a single user will suffice".
This module makes "notice" concrete with two per-identity signals that
cleanly separate extraction from legitimate browsing:

* **coverage** — the fraction of the protected population the identity
  has ever retrieved. Legitimate Zipf-skewed users revisit the same hot
  tuples and plateau at small coverage; an extraction robot's coverage
  grows linearly toward 1.
* **novelty** — over the identity's recent requests, the fraction that
  retrieved a tuple the identity had never seen before. Browsers are
  dominated by repeats (low novelty); a key-space walker is ~100% novel
  by construction.

:class:`CoverageMonitor` tracks both online (O(1) per retrieval) and
flags identities exceeding thresholds, so an operator can feed suspects
into the §2.4 quota/limit machinery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from .counts import Key
from .errors import ConfigError


@dataclass
class IdentityProfile:
    """Online per-identity retrieval statistics."""

    identity: str
    retrieved: Set[Key] = field(default_factory=set)
    requests: int = 0
    #: sliding window of "was this retrieval novel?" flags
    recent_novelty: Deque[bool] = field(default_factory=deque)

    def coverage(self, population: int) -> float:
        """Fraction of the population this identity has retrieved."""
        if population <= 0:
            return 0.0
        return len(self.retrieved) / population

    def novelty_rate(self) -> float:
        """Fraction of recent retrievals that were first-time tuples."""
        if not self.recent_novelty:
            return 0.0
        return sum(self.recent_novelty) / len(self.recent_novelty)


@dataclass(frozen=True)
class Suspect:
    """One flagged identity with the signals that tripped."""

    identity: str
    coverage: float
    novelty_rate: float
    requests: int
    reasons: Tuple[str, ...]


class CoverageMonitor:
    """Flags identities whose retrieval pattern looks like extraction.

    Args:
        population: size provider — int or callable returning the
            current protected-tuple count (N).
        coverage_threshold: flag identities that have retrieved at
            least this fraction of the population.
        novelty_threshold: flag identities whose recent-window novelty
            rate is at least this value *and* that have issued at least
            ``min_requests`` requests (young accounts are all-novel).
        window: size of the recent-novelty sliding window.
        min_requests: grace period before novelty can flag anyone.
    """

    def __init__(
        self,
        population,
        coverage_threshold: float = 0.5,
        novelty_threshold: float = 0.9,
        window: int = 200,
        min_requests: int = 100,
    ):
        if not 0 < coverage_threshold <= 1:
            raise ConfigError(
                f"coverage_threshold must be in (0, 1], got "
                f"{coverage_threshold}"
            )
        if not 0 < novelty_threshold <= 1:
            raise ConfigError(
                f"novelty_threshold must be in (0, 1], got "
                f"{novelty_threshold}"
            )
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        if min_requests < 1:
            raise ConfigError(
                f"min_requests must be >= 1, got {min_requests}"
            )
        self._population = population
        self.coverage_threshold = coverage_threshold
        self.novelty_threshold = novelty_threshold
        self.window = window
        self.min_requests = min_requests
        self.profiles: Dict[str, IdentityProfile] = {}

    @property
    def population(self) -> int:
        """Current protected-tuple count."""
        value = (
            self._population()
            if callable(self._population)
            else self._population
        )
        return max(int(value), 1)

    # -- recording ---------------------------------------------------------

    def record(self, identity: str, keys: Iterable[Key]) -> None:
        """Record the tuples one query returned to ``identity``."""
        profile = self.profiles.get(identity)
        if profile is None:
            profile = IdentityProfile(identity=identity)
            self.profiles[identity] = profile
        profile.requests += 1
        for key in keys:
            novel = key not in profile.retrieved
            if novel:
                profile.retrieved.add(key)
            profile.recent_novelty.append(novel)
            while len(profile.recent_novelty) > self.window:
                profile.recent_novelty.popleft()

    # -- queries ------------------------------------------------------------

    def profile(self, identity: str) -> IdentityProfile:
        """The profile for ``identity`` (empty if never seen)."""
        return self.profiles.get(
            identity, IdentityProfile(identity=identity)
        )

    def coverage(self, identity: str) -> float:
        """Coverage of one identity."""
        return self.profile(identity).coverage(self.population)

    def novelty_rate(self, identity: str) -> float:
        """Recent novelty rate of one identity."""
        return self.profile(identity).novelty_rate()

    def evaluate(self, identity: str) -> Optional[Suspect]:
        """Evaluate one identity against the thresholds."""
        profile = self.profiles.get(identity)
        if profile is None:
            return None
        population = self.population
        reasons: List[str] = []
        coverage = profile.coverage(population)
        if coverage >= self.coverage_threshold:
            reasons.append("coverage")
        novelty = profile.novelty_rate()
        if (
            profile.requests >= self.min_requests
            and novelty >= self.novelty_threshold
        ):
            reasons.append("novelty")
        if not reasons:
            return None
        return Suspect(
            identity=identity,
            coverage=coverage,
            novelty_rate=novelty,
            requests=profile.requests,
            reasons=tuple(reasons),
        )

    def suspects(self) -> List[Suspect]:
        """Every currently flagged identity, highest coverage first."""
        flagged = [
            suspect
            for identity in self.profiles
            if (suspect := self.evaluate(identity)) is not None
        ]
        flagged.sort(key=lambda suspect: suspect.coverage, reverse=True)
        return flagged


def attach_monitor(guard, monitor: CoverageMonitor) -> Callable:
    """Wire a monitor into a guard: every identified SELECT feeds it.

    Returns the wrapped ``execute`` (also installed on the guard), so
    existing callers keep working. Queries without an identity are not
    profiled.
    """
    original = guard.execute

    def monitored_execute(sql, identity=None, record=True, sleep=True):
        result = original(
            sql, identity=identity, record=record, sleep=sleep
        )
        if identity is not None and result.result.statement_kind == "select":
            keys = result.result.touched or [
                (result.result.table.lower(), rowid)
                for rowid in result.result.rowids
            ]
            monitor.record(identity, keys)
        return result

    guard.execute = monitored_execute
    return monitored_execute
