"""Extraction detection: noticing the robot in the traffic (§2.4).

The paper's storefront discussion observes that a large-scale relay or
extraction shows up as anomalous traffic — "If the adversary is of
significant size, we will notice the increased traffic, and a simple
imposition of a limit on queries from a single user will suffice".
This module makes "notice" concrete with two per-identity signals that
cleanly separate extraction from legitimate browsing:

* **coverage** — the fraction of the protected population the identity
  has ever retrieved. Legitimate Zipf-skewed users revisit the same hot
  tuples and plateau at small coverage; an extraction robot's coverage
  grows linearly toward 1.
* **novelty** — over the identity's recent requests, the fraction that
  retrieved a tuple the identity had never seen before. Browsers are
  dominated by repeats (low novelty); a key-space walker is ~100% novel
  by construction.

:class:`CoverageMonitor` tracks both online (O(1) per retrieval, one
internal lock — safe to feed from concurrent server workers) and flags
identities exceeding thresholds, so an operator can feed suspects into
the §2.4 quota/limit machinery. It also accumulates per-identity delay
paid and tuples charged, which is what lets the forensics layer
evaluate the paper's §2.2 extraction cost model *online*: remaining
population × observed per-tuple price = seconds to finish the theft.

Memory is boundable for production use: ``max_identities`` folds the
long tail of identities into one aggregate :data:`OVERFLOW_IDENTITY`
profile (tracked for volume, never flagged — an aggregate would
trivially trip coverage), and ``max_keys_per_identity`` caps each
retrieved-key set (at the cap, repeats of *uncapped* keys still look
novel, so novelty saturates high — acceptable, since any identity at
the cap has long since tripped the coverage signal).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional, Set, Tuple

from .counts import Key
from .errors import ConfigError

#: Aggregate profile absorbing identities beyond ``max_identities``.
#: Matches the metrics layer's overflow label; never flagged.
OVERFLOW_IDENTITY = "_other"


@dataclass
class IdentityProfile:
    """Online per-identity retrieval statistics."""

    identity: str
    retrieved: Set[Key] = field(default_factory=set)
    requests: int = 0
    #: total tuples this identity has been charged for (with repeats)
    tuples: int = 0
    #: cumulative mandated delay this identity has paid, in seconds
    delay_paid: float = 0.0
    #: sliding window of "was this retrieval novel?" flags
    recent_novelty: Deque[bool] = field(default_factory=deque)
    #: running count of True flags in ``recent_novelty`` (O(1) rate)
    novel_in_window: int = 0

    def coverage(self, population: int) -> float:
        """Fraction of the population this identity has retrieved."""
        if population <= 0:
            return 0.0
        return len(self.retrieved) / population

    def novelty_rate(self) -> float:
        """Fraction of recent retrievals that were first-time tuples."""
        if not self.recent_novelty:
            return 0.0
        return self.novel_in_window / len(self.recent_novelty)


@dataclass(frozen=True)
class Suspect:
    """One flagged identity with the signals that tripped."""

    identity: str
    coverage: float
    novelty_rate: float
    requests: int
    reasons: Tuple[str, ...]


class CoverageMonitor:
    """Flags identities whose retrieval pattern looks like extraction.

    Args:
        population: size provider — int or callable returning the
            current protected-tuple count (N).
        coverage_threshold: flag identities that have retrieved at
            least this fraction of the population.
        novelty_threshold: flag identities whose recent-window novelty
            rate is at least this value *and* that have issued at least
            ``min_requests`` requests (young accounts are all-novel).
        window: size of the recent-novelty sliding window.
        min_requests: grace period before novelty can flag anyone.
        max_identities: profiles tracked individually; beyond this the
            long tail folds into :data:`OVERFLOW_IDENTITY` (None =
            unbounded, the historical behaviour).
        max_keys_per_identity: cap on each profile's retrieved-key set
            (None = unbounded).
    """

    def __init__(
        self,
        population,
        coverage_threshold: float = 0.5,
        novelty_threshold: float = 0.9,
        window: int = 200,
        min_requests: int = 100,
        max_identities: Optional[int] = None,
        max_keys_per_identity: Optional[int] = None,
    ):
        if not 0 < coverage_threshold <= 1:
            raise ConfigError(
                f"coverage_threshold must be in (0, 1], got "
                f"{coverage_threshold}"
            )
        if not 0 < novelty_threshold <= 1:
            raise ConfigError(
                f"novelty_threshold must be in (0, 1], got "
                f"{novelty_threshold}"
            )
        if window < 1:
            raise ConfigError(f"window must be >= 1, got {window}")
        if min_requests < 1:
            raise ConfigError(
                f"min_requests must be >= 1, got {min_requests}"
            )
        if max_identities is not None and max_identities < 1:
            raise ConfigError(
                f"max_identities must be >= 1, got {max_identities}"
            )
        if max_keys_per_identity is not None and max_keys_per_identity < 1:
            raise ConfigError(
                f"max_keys_per_identity must be >= 1, got "
                f"{max_keys_per_identity}"
            )
        self._population = population
        self.coverage_threshold = coverage_threshold
        self.novelty_threshold = novelty_threshold
        self.window = window
        self.min_requests = min_requests
        self.max_identities = max_identities
        self.max_keys_per_identity = max_keys_per_identity
        self.profiles: Dict[str, IdentityProfile] = {}
        self.overflowed_identities = 0
        self._lock = threading.RLock()

    @property
    def population(self) -> int:
        """Current protected-tuple count."""
        value = (
            self._population()
            if callable(self._population)
            else self._population
        )
        return max(int(value), 1)

    # -- recording ---------------------------------------------------------

    def record(
        self, identity: str, keys: Iterable[Key], delay: float = 0.0
    ) -> None:
        """Record the tuples (and delay paid) of one query.

        Args:
            identity: the requesting identity.
            keys: the tuple keys the query touched.
            delay: the mandated delay the query was charged (seconds);
                accumulated per identity so the forensics layer can
                price the §2.2 cost model from observed behaviour.
        """
        with self._lock:
            profile = self.profiles.get(identity)
            if profile is None:
                if (
                    self.max_identities is not None
                    and len(self.profiles) >= self.max_identities
                    and identity != OVERFLOW_IDENTITY
                ):
                    self.overflowed_identities += 1
                    self.record(OVERFLOW_IDENTITY, keys, delay)
                    return
                profile = IdentityProfile(identity=identity)
                self.profiles[identity] = profile
            profile.requests += 1
            profile.delay_paid += delay
            key_cap = self.max_keys_per_identity
            for key in keys:
                profile.tuples += 1
                novel = key not in profile.retrieved
                if novel and (
                    key_cap is None or len(profile.retrieved) < key_cap
                ):
                    profile.retrieved.add(key)
                profile.recent_novelty.append(novel)
                profile.novel_in_window += novel
                while len(profile.recent_novelty) > self.window:
                    profile.novel_in_window -= (
                        profile.recent_novelty.popleft()
                    )

    # -- queries ------------------------------------------------------------

    def profile(self, identity: str) -> IdentityProfile:
        """The profile for ``identity`` (empty if never seen)."""
        with self._lock:
            return self.profiles.get(
                identity, IdentityProfile(identity=identity)
            )

    def coverage(self, identity: str) -> float:
        """Coverage of one identity."""
        return self.profile(identity).coverage(self.population)

    def novelty_rate(self, identity: str) -> float:
        """Recent novelty rate of one identity."""
        return self.profile(identity).novelty_rate()

    def evaluate(self, identity: str) -> Optional[Suspect]:
        """Evaluate one identity against the thresholds.

        The :data:`OVERFLOW_IDENTITY` aggregate is never flagged — it
        pools unrelated users, so its coverage is meaningless.
        """
        if identity == OVERFLOW_IDENTITY:
            return None
        with self._lock:
            profile = self.profiles.get(identity)
            if profile is None:
                return None
            population = self.population
            reasons: List[str] = []
            coverage = profile.coverage(population)
            if coverage >= self.coverage_threshold:
                reasons.append("coverage")
            novelty = profile.novelty_rate()
            if (
                profile.requests >= self.min_requests
                and novelty >= self.novelty_threshold
            ):
                reasons.append("novelty")
            if not reasons:
                return None
            return Suspect(
                identity=identity,
                coverage=coverage,
                novelty_rate=novelty,
                requests=profile.requests,
                reasons=tuple(reasons),
            )

    def suspects(self) -> List[Suspect]:
        """Every currently flagged identity, highest coverage first."""
        with self._lock:
            identities = list(self.profiles)
        flagged = [
            suspect
            for identity in identities
            if (suspect := self.evaluate(identity)) is not None
        ]
        flagged.sort(key=lambda suspect: suspect.coverage, reverse=True)
        return flagged

    def summaries(self) -> List[Dict]:
        """Per-identity statistics as plain dicts, one consistent cut.

        This is the boundary the observability layer consumes
        (``repro.obs.forensics`` is duck-typed over it): no domain
        objects cross, just numbers. Keys per entry: ``identity``,
        ``coverage``, ``novelty``, ``requests``, ``tuples``,
        ``delay_paid``, ``distinct_keys``.
        """
        with self._lock:
            population = self.population
            return [
                {
                    "identity": profile.identity,
                    "coverage": profile.coverage(population),
                    "novelty": profile.novelty_rate(),
                    "requests": profile.requests,
                    "tuples": profile.tuples,
                    "delay_paid": profile.delay_paid,
                    "distinct_keys": len(profile.retrieved),
                }
                for profile in self.profiles.values()
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self.profiles)


def attach_monitor(guard, monitor: CoverageMonitor) -> Callable:
    """Wire a monitor into a guard: every identified SELECT feeds it.

    Returns the wrapped ``execute`` (also installed on the guard), so
    existing callers keep working. Queries without an identity are not
    profiled.
    """
    original = guard.execute

    def monitored_execute(sql, identity=None, record=True, sleep=True):
        result = original(
            sql, identity=identity, record=record, sleep=sleep
        )
        if identity is not None and result.result.statement_kind == "select":
            keys = result.result.touched or [
                (result.result.table.lower(), rowid)
                for rowid in result.result.rowids
            ]
            monitor.record(identity, keys, delay=result.delay)
        return result

    guard.execute = monitored_execute
    return monitored_execute
