"""The guard lifecycle as an explicit staged pipeline.

Historically the whole query lifecycle lived in one ~250-line
``DelayGuard._serve`` method, and the server wrapped every call in a
global statement lock. This module decomposes the lifecycle into small
stage objects run in a fixed order:

    admit → parse → authorize → cache → execute → cache_store
          → account → price → record → forensics → sleep

Each stage owns one concern, times itself (a trace span plus a
``guard_stage_<name>_seconds`` histogram when observability is on), and
declares which Table 5 cost bucket its time lands in: *parse* and
*execute* feed ``engine_seconds``, the accounting stages feed
``accounting_seconds``, and *sleep* is the product, charged to neither.

Concurrency: no stage holds the engine lock except *execute*, which
delegates to :meth:`repro.engine.database.Database.execute` — the engine
takes its own read/write lock there (shared for SELECT/EXPLAIN,
exclusive for DML/DDL). Everything else synchronises on the component
it touches (tracker locks, the account manager's lock, the guard's
update-times lock), so concurrent queries overlap everywhere except
inside conflicting engine statements. *price* reads each tuple's counts
through the policy's :meth:`~repro.core.delay_policy.DelayPolicy.delays_for`,
which resolves the whole key list against one consistent tracker
snapshot instead of re-locking per tuple.

Denial taxonomy: every refusal is a structured
:class:`~repro.core.errors.AccessDenied` with a machine-readable
``reason`` — ``result_limit``, ``deadline_exceeded``, ``query_quota``,
``registration_rate``, ``subnet_rate``, and (cluster-level, raised by
the router rather than a stage) ``shard_unavailable`` with the dead
shard indexes and a ``retry_after`` covering the failover window. The
server maps them all onto one wire shape; nothing in the stack ever
surfaces a raw infrastructure exception to a client.

The *cache* / *cache_store* pair (skipped entirely unless the guard has
a :class:`~repro.core.result_cache.ResultCache`) serves repeated
SELECTs without touching the engine. Deliberately, a hit replaces
**only** the execute stage: account, price, record, and sleep still run
on the cached result's ``touched`` set, so a hit and a miss are
indistinguishable in popularity counts, account charges, and mandated
delay — the cache saves engine CPU, never the defense's price.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from ..engine.parser.ast import SelectStatement
from ..engine.parser.normalize import normalize_sql
from ..engine.parser.parser import parse_cached
from ..obs import QueryTrace, delay_buckets
from .errors import AccessDenied, ConfigError
from .result_cache import CachedResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..engine.executor import ResultSet
    from .guard import DelayGuard

#: Bucket bounds for the per-stage latency histograms: stages run in
#: microseconds (accounting) up to tens of seconds (sleep).
_STAGE_BUCKETS = delay_buckets(low=1e-6, high=1e2, per_decade=3)


@dataclass
class QueryContext:
    """Mutable state threaded through the pipeline for one query."""

    sql_or_statement: Union[str, object]
    identity: Optional[str] = None
    record: bool = True
    sleep: bool = True
    #: fast-path probe mode: run parse → cache lookup first and bail
    #: out (before authorize charges the account) when the result
    #: cache misses. See :meth:`QueryPipeline.run`.
    cache_only: bool = False
    #: absolute ``time.monotonic()`` deadline for the whole request, or
    #: None for no budget. Checked at every stage boundary, and by the
    #: price stage against the mandated delay itself (a delay longer
    #: than the remaining budget is rejected up front instead of
    #: holding a thread in sleep).
    deadline_at: Optional[float] = None
    trace: Optional[QueryTrace] = None
    #: the parsed statement (set by *parse*, or directly for pre-parsed
    #: input).
    statement: object = None
    #: canonical SQL text (set by *parse*; None for pre-parsed input,
    #: which the result cache therefore never serves).
    normalized_sql: Optional[str] = None
    #: the engine snapshot epoch the cache stage observed, and whether
    #: it served the result (execute is skipped on a hit).
    cache_epoch: Optional[int] = None
    cache_hit: bool = False
    #: the engine result (set by *execute*).
    result: Optional["ResultSet"] = None
    #: base tuples charged for a SELECT (set by *account*).
    keys: List[Tuple[str, int]] = field(default_factory=list)
    per_tuple: List[float] = field(default_factory=list)
    delay: float = 0.0
    engine_seconds: float = 0.0
    accounting_seconds: float = 0.0
    #: set when a denial should still count the query's timing buckets
    #: (the result-limit strawman denies *after* the engine did the
    #: work, so its cost must not vanish from Table 5).
    count_query_on_denial: bool = False


class Stage:
    """One pipeline step.

    Attributes:
        name: span and histogram label.
        bucket: which :class:`~repro.core.guard.GuardStats` timing
            bucket this stage's wall time lands in — ``"engine"``,
            ``"accounting"``, or None (the sleep itself is the charged
            product, not overhead).
    """

    name = "stage"
    bucket: Optional[str] = None

    def __init__(self, guard: "DelayGuard"):
        self.guard = guard

    def applies(self, ctx: QueryContext) -> bool:
        """Whether this stage runs for this query (skipped silently)."""
        return True

    def run(self, ctx: QueryContext) -> None:
        raise NotImplementedError


class AdmitStage(Stage):
    """Reject unidentified callers when the guard enforces accounts."""

    name = "admit"
    bucket = "accounting"

    def applies(self, ctx: QueryContext) -> bool:
        return self.guard.accounts is not None

    def run(self, ctx: QueryContext) -> None:
        if ctx.identity is None:
            raise ConfigError(
                "this guard requires an identity for every query"
            )


class ParseStage(Stage):
    """Parse SQL text (cached); pre-parsed statements skip this stage.

    Parsing lands in the engine bucket: it used to happen inside
    ``Database.execute``, and keeping it there keeps Table 5
    comparisons stable across refactors.
    """

    name = "parse"
    bucket = "engine"

    def applies(self, ctx: QueryContext) -> bool:
        return isinstance(ctx.sql_or_statement, str)

    def run(self, ctx: QueryContext) -> None:
        ctx.normalized_sql = normalize_sql(ctx.sql_or_statement)
        ctx.statement = parse_cached(ctx.normalized_sql)


class AuthorizeStage(Stage):
    """Charge the query against every account-level limit (§2.4)."""

    name = "authorize"
    bucket = "accounting"

    def applies(self, ctx: QueryContext) -> bool:
        return self.guard.accounts is not None

    def run(self, ctx: QueryContext) -> None:
        guard = self.guard
        try:
            guard.accounts.authorize_query(ctx.identity)
        except Exception as error:
            guard.stats.note_denied()
            if ctx.trace is not None:
                guard._m_denied.inc(
                    reason=getattr(error, "reason", None)
                    or type(error).__name__
                )
            raise


class CacheLookupStage(Stage):
    """Serve a repeated SELECT from the result cache — still priced.

    Runs *after* admit/authorize (an unauthorized caller never sees a
    cached byte) and replaces only the execute stage on a hit: the
    account, price, record, and sleep stages run on the cached result's
    ``touched`` set exactly as they would on a miss, so popularity
    counts, account charges, and the mandated delay are identical
    either way. The key is ``(normalized SQL, snapshot epoch)`` —
    identity-independent by design, and bumped past every committed
    mutation by the engine's epoch counter. An adversary's probes are
    priced whether they hit or miss; only engine CPU is ever saved.
    """

    name = "cache"
    bucket = "accounting"

    def applies(self, ctx: QueryContext) -> bool:
        return (
            self.guard.result_cache is not None
            and ctx.normalized_sql is not None
            and isinstance(ctx.statement, SelectStatement)
        )

    def run(self, ctx: QueryContext) -> None:
        guard = self.guard
        ctx.cache_epoch = guard.database.mutation_epoch
        frozen = guard.result_cache.get(ctx.normalized_sql, ctx.cache_epoch)
        if frozen is not None:
            ctx.result = frozen.thaw()
            ctx.cache_hit = True
            if guard.obs.enabled:
                guard._m_execution_path.inc(path="cached")


class ExecuteStage(Stage):
    """Run the statement on the engine.

    The only stage that touches the engine lock: ``Database.execute``
    classifies the statement and takes the shared read side for
    SELECT/EXPLAIN or the exclusive write side for everything else.
    Skipped when the cache stage already produced the result.
    """

    name = "execute"
    bucket = "engine"

    def applies(self, ctx: QueryContext) -> bool:
        return not ctx.cache_hit

    def run(self, ctx: QueryContext) -> None:
        # Pass the original SQL text through when we have it: an
        # attached write-ahead journal records committed statements as
        # text, and a pre-parsed statement carries none.
        source = (
            ctx.sql_or_statement
            if isinstance(ctx.sql_or_statement, str)
            else None
        )
        ctx.result = self.guard.database.execute(
            ctx.statement, source=source, tracked=True
        )
        if self.guard.obs.enabled:
            path = getattr(ctx.result, "execution_path", None)
            if path:
                self.guard._m_execution_path.inc(path=path)


class CacheStoreStage(Stage):
    """Freeze a freshly-executed SELECT into the result cache.

    Only sound when no commit landed during execution: the stage
    re-reads the engine epoch and skips the store if it moved past the
    one the lookup observed (and the cache itself refuses stale-epoch
    writes, so the check is belt *and* suspenders).
    """

    name = "cache_store"
    bucket = "accounting"

    def applies(self, ctx: QueryContext) -> bool:
        result = ctx.result
        return (
            self.guard.result_cache is not None
            and not ctx.cache_hit
            and ctx.cache_epoch is not None
            and result is not None
            and result.statement_kind == "select"
            and result.table is not None
        )

    def run(self, ctx: QueryContext) -> None:
        guard = self.guard
        if guard.database.mutation_epoch != ctx.cache_epoch:
            return
        guard.result_cache.put(
            ctx.normalized_sql,
            ctx.cache_epoch,
            CachedResult.freeze(ctx.result),
        )


class AccountStage(Stage):
    """Result-limit strawman, charged-key extraction, per-identity use."""

    name = "account"
    bucket = "accounting"

    def applies(self, ctx: QueryContext) -> bool:
        result = ctx.result
        return (
            result is not None
            and result.statement_kind == "select"
            and result.table is not None
        )

    def run(self, ctx: QueryContext) -> None:
        guard = self.guard
        result = ctx.result
        # §1.1's strawman result-size limit, kept as a baseline.
        # Enforced post-execution (the engine has already read the rows)
        # but pre-recording/charging: the caller gets nothing.
        limit = guard.config.max_result_rows
        if limit is not None and len(result.rows) > limit:
            guard.stats.note_denied()
            if ctx.trace is not None:
                guard._m_denied.inc(reason="result_limit")
            ctx.count_query_on_denial = True
            raise AccessDenied("result_limit")
        # `touched` covers every contributing base tuple, across joined
        # tables; fall back to the driving table's rowids for result
        # sets produced without it.
        if result.touched:
            ctx.keys = list(result.touched)
        else:
            ctx.keys = [
                (result.table.lower(), rowid) for rowid in result.rowids
            ]
        if guard.accounts is not None and ctx.identity is not None:
            guard.accounts.record_retrieval(ctx.identity, len(ctx.keys))


class PriceStage(Stage):
    """Compute per-tuple delays from one consistent count snapshot."""

    name = "price"
    bucket = "accounting"

    def applies(self, ctx: QueryContext) -> bool:
        result = ctx.result
        return (
            result is not None
            and result.statement_kind == "select"
            and result.table is not None
        )

    def run(self, ctx: QueryContext) -> None:
        guard = self.guard
        ctx.per_tuple = guard.policy.delays_for(ctx.keys)
        if guard.config.charge_returned_tuples:
            ctx.delay = sum(ctx.per_tuple)
        else:
            ctx.delay = max(ctx.per_tuple, default=0.0)
        if ctx.deadline_at is not None and ctx.delay > 0:
            remaining = ctx.deadline_at - time.monotonic()
            if ctx.delay > remaining:
                # The mandated delay cannot fit the caller's budget:
                # reject *before* the record/sleep stages, reporting
                # the full delay so the caller knows the true price.
                # Nothing is recorded — the tuples were never served.
                guard.stats.note_deadline_abort()
                if ctx.trace is not None:
                    guard._m_denied.inc(reason="deadline_exceeded")
                raise AccessDenied(
                    "deadline_exceeded", retry_after=ctx.delay
                )


class RecordStage(Stage):
    """Feed the trackers: popularity for reads, rates for updates."""

    name = "record"
    bucket = "accounting"

    def applies(self, ctx: QueryContext) -> bool:
        result = ctx.result
        if result is None:
            return False
        if result.statement_kind == "select":
            return result.table is not None
        return result.statement_kind in ("insert", "update", "delete")

    def run(self, ctx: QueryContext) -> None:
        guard = self.guard
        result = ctx.result
        if result.statement_kind == "select":
            if ctx.record and guard.config.record_accesses:
                guard.popularity.record_many(ctx.keys)
            guard.stats.note_select(ctx.delay, len(ctx.keys))
            if (
                ctx.trace is not None
                and ctx.identity is not None
                and ctx.delay > 0
            ):
                guard._m_identity_delay.inc(ctx.delay, identity=ctx.identity)
            return
        if guard.config.record_updates and result.table is not None:
            clock_now = guard.clock.now()
            table_key = result.table.lower()
            with guard._updates_lock:
                for rowid in result.rowids:
                    key = (table_key, rowid)
                    guard.update_rates.record_update(key)
                    guard.last_update_times[key] = clock_now


class ForensicsStage(Stage):
    """Feed the live extraction-risk monitor (§2.4 "notice the robot").

    Runs after *record* (the served tuples and the priced delay are
    final) and before *sleep* (the caller's mandated delay should not
    postpone their own risk evaluation). Skipped entirely unless the
    guard was built with ``GuardConfig.forensics`` — the monitor's
    record+evaluate is an extra accounting cost per identified SELECT.
    """

    name = "forensics"
    bucket = "accounting"

    def applies(self, ctx: QueryContext) -> bool:
        result = ctx.result
        return (
            self.guard.forensics is not None
            and ctx.identity is not None
            and result is not None
            and result.statement_kind == "select"
            and result.table is not None
        )

    def run(self, ctx: QueryContext) -> None:
        self.guard.forensics.observe(
            ctx.identity,
            ctx.keys,
            delay=ctx.delay,
            trace_id=ctx.trace.trace_id if ctx.trace is not None else None,
        )


class SleepStage(Stage):
    """Serve the computed delay on the guard's clock.

    Unbucketed: the sleep is the defense's product, not overhead. The
    server and the concurrent simulator pass ``sleep=False`` and serve
    the delay themselves (per-connection / event-scheduled), so only
    that one caller blocks — never the pipeline of another query.
    """

    name = "sleep"
    bucket = None

    def applies(self, ctx: QueryContext) -> bool:
        return ctx.delay > 0 and ctx.sleep

    def run(self, ctx: QueryContext) -> None:
        self.guard.clock.sleep(ctx.delay)


class QueryPipeline:
    """Runs the staged lifecycle for one guard.

    Stateless between queries: all per-query state lives in the
    :class:`QueryContext`, so one pipeline instance serves any number
    of concurrent callers.
    """

    STAGES = (
        AdmitStage,
        ParseStage,
        AuthorizeStage,
        CacheLookupStage,
        ExecuteStage,
        CacheStoreStage,
        AccountStage,
        PriceStage,
        RecordStage,
        ForensicsStage,
        SleepStage,
    )

    def __init__(self, guard: "DelayGuard"):
        self.guard = guard
        self.stages = [stage_class(guard) for stage_class in self.STAGES]
        # Fast-path probe order (``ctx.cache_only``): the cache lookup
        # runs *before* admit/authorize so a miss can bail out without
        # charging the account — the full pipeline run that follows
        # charges exactly once. A hit still authorizes before a single
        # byte is returned (AccountStage runs after AuthorizeStage).
        by_name = {stage.name: stage for stage in self.stages}
        self._probe_stages = [
            by_name[name]
            for name in (
                "parse",
                "cache",
                "admit",
                "authorize",
                "account",
                "price",
                "record",
                "forensics",
                "sleep",
            )
        ]
        self._histograms = {}
        if guard.obs.enabled:
            for stage in self.stages:
                self._histograms[stage.name] = guard.obs.registry.histogram(
                    f"guard_stage_{stage.name}_seconds",
                    f"Wall time in the {stage.name!r} pipeline stage "
                    "(seconds)",
                    buckets=_STAGE_BUCKETS,
                )

    def run(self, ctx: QueryContext) -> QueryContext:
        """Run every applicable stage in order; returns the context.

        A stage that raises still gets its span and bucket time
        recorded (partial work costs real time). Denials flagged with
        ``count_query_on_denial`` contribute their timing buckets to
        :class:`~repro.core.guard.GuardStats` before propagating.
        """
        if not isinstance(ctx.sql_or_statement, str):
            ctx.statement = ctx.sql_or_statement
        stages = self._probe_stages if ctx.cache_only else self.stages
        for stage in stages:
            if ctx.cache_only and not ctx.cache_hit and stage.name == "admit":
                # Probe missed the cache: hand the query back untouched
                # and uncharged — no engine work, no authorize charge,
                # no query/timing stats (the full run counts it once).
                return ctx
            if not stage.applies(ctx):
                continue
            self._check_deadline(ctx)
            start = time.perf_counter()
            try:
                stage.run(ctx)
            except Exception:
                self._finish_stage(stage, ctx, start)
                if ctx.count_query_on_denial:
                    self.guard.stats.note_query(
                        0.0, ctx.engine_seconds, ctx.accounting_seconds
                    )
                raise
            self._finish_stage(stage, ctx, start)
        self.guard.stats.note_query(
            ctx.delay, ctx.engine_seconds, ctx.accounting_seconds
        )
        return ctx

    def _check_deadline(self, ctx: QueryContext) -> None:
        """Abort between stages once the caller's budget is spent.

        Cheap (one clock read) and early: a request that can no longer
        be answered in time should not consume engine or accounting
        work it cannot finish.
        """
        if ctx.deadline_at is None:
            return
        if time.monotonic() >= ctx.deadline_at:
            self.guard.stats.note_deadline_abort()
            if ctx.trace is not None:
                self.guard._m_denied.inc(reason="deadline_exceeded")
            raise AccessDenied("deadline_exceeded")

    def _finish_stage(
        self, stage: Stage, ctx: QueryContext, start: float
    ) -> None:
        now = time.perf_counter()
        elapsed = now - start
        if stage.bucket == "engine":
            ctx.engine_seconds += elapsed
        elif stage.bucket == "accounting":
            ctx.accounting_seconds += elapsed
        if ctx.trace is not None:
            ctx.trace.add_span(stage.name, start, now)
        histogram = self._histograms.get(stage.name)
        if histogram is not None:
            histogram.observe(elapsed)

    def stage_names(self) -> List[str]:
        """The configured stage order (introspection/docs)."""
        return [stage.name for stage in self.stages]
