"""Snapshot staleness evaluation for the data-change defense (§3).

The paper's §3 claim is not that extraction becomes impossible but that
it becomes *worthless*: by the time an adversary has pulled every tuple,
a guaranteed fraction of what it pulled no longer matches the live
database. This module represents an adversary's extracted snapshot and
measures exactly that fraction.

A tuple is **stale** when its value changed at least once after the
moment the adversary retrieved it (paper's definition above eq. 10) —
evaluated either at extraction completion or at any later time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .counts import Key
from .errors import ConfigError


@dataclass(frozen=True)
class ExtractedTuple:
    """One tuple captured by the adversary.

    Attributes:
        key: tuple identifier.
        value: the value observed at extraction time.
        extracted_at: clock time the tuple was retrieved.
    """

    key: Key
    value: object
    extracted_at: float


@dataclass
class Snapshot:
    """An adversary's extracted copy of the dataset."""

    tuples: Dict[Key, ExtractedTuple] = field(default_factory=dict)
    started_at: float = 0.0
    completed_at: float = 0.0

    def add(self, key: Key, value: object, extracted_at: float) -> None:
        """Record the retrieval of one tuple."""
        self.tuples[key] = ExtractedTuple(key, value, extracted_at)

    def __len__(self) -> int:
        return len(self.tuples)

    @property
    def duration(self) -> float:
        """Wall time of the extraction (completed - started)."""
        return self.completed_at - self.started_at


@dataclass(frozen=True)
class StalenessReport:
    """Result of evaluating a snapshot against the live update history."""

    total: int
    stale: int
    evaluated_at: float

    @property
    def fraction(self) -> float:
        """Stale fraction in [0, 1]; 0 for an empty snapshot."""
        if self.total == 0:
            return 0.0
        return self.stale / self.total


def stale_fraction(
    snapshot: Snapshot,
    last_update_times: Mapping[Key, float],
    as_of: Optional[float] = None,
) -> StalenessReport:
    """Evaluate how much of ``snapshot`` is stale.

    Args:
        snapshot: the adversary's extracted copy.
        last_update_times: key → time of the most recent update (the
            guard maintains this map as DML flows through it).
        as_of: evaluation time; defaults to the snapshot's completion.
            A tuple counts as stale if it was updated after its own
            extraction moment and at or before ``as_of``.
    """
    when = snapshot.completed_at if as_of is None else as_of
    if when < snapshot.started_at:
        raise ConfigError("evaluation time precedes extraction start")
    stale = 0
    for key, extracted in snapshot.tuples.items():
        updated = last_update_times.get(key)
        if updated is not None and extracted.extracted_at < updated <= when:
            stale += 1
    return StalenessReport(
        total=len(snapshot.tuples), stale=stale, evaluated_at=when
    )


def stale_fraction_from_history(
    snapshot: Snapshot,
    update_history: Mapping[Key, List[float]],
    as_of: Optional[float] = None,
) -> StalenessReport:
    """Like :func:`stale_fraction`, but from full per-key update histories.

    Useful when updates may have happened both before and after each
    retrieval and only the full event list is kept.
    """
    when = snapshot.completed_at if as_of is None else as_of
    stale = 0
    for key, extracted in snapshot.tuples.items():
        times = update_history.get(key, ())
        if any(extracted.extracted_at < t <= when for t in times):
            stale += 1
    return StalenessReport(
        total=len(snapshot.tuples), stale=stale, evaluated_at=when
    )
