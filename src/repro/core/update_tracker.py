"""Update-rate tracking for the data-change defense (§3).

Where access patterns are uniform, the paper assigns delays inversely
proportional to each tuple's *update* rate. This tracker estimates
per-tuple update rates from the observed update stream, with optional
exponential decay in time so shifting update behaviour is tracked.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from .clock import Clock, VirtualClock
from .counts import Key
from .errors import ConfigError


class UpdateRateTracker:
    """Estimates updates-per-second for each tuple.

    With ``time_constant`` τ (seconds), an update that happened ``a``
    seconds ago carries weight ``exp(-a/τ)``; the decayed count of a
    tuple updated at steady rate ``r`` converges to ``r·τ``, so the rate
    estimate is ``decayed_count/τ``. With ``time_constant=None`` the
    tracker keeps plain counts and estimates ``count/elapsed`` — right
    for stationary update processes.

    Counts are decayed lazily (only when touched), so cost per update is
    O(1) regardless of table size.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        time_constant: Optional[float] = None,
    ):
        if time_constant is not None and time_constant <= 0:
            raise ConfigError(
                f"time_constant must be positive, got {time_constant}"
            )
        self.clock = clock if clock is not None else VirtualClock()
        self.time_constant = time_constant
        # Guards counts/last-seen/total as one unit: the lazy decay in
        # record_update is a read-modify-write over two dicts.
        self._lock = threading.RLock()
        self._counts: Dict[Key, float] = {}
        self._last_seen: Dict[Key, float] = {}
        self._started = self.clock.now()
        self._total_updates = 0

    # -- recording ---------------------------------------------------------

    def record_update(self, key: Key, at: Optional[float] = None) -> None:
        """Record one update to ``key``.

        ``at`` overrides the clock time — used by crash recovery, which
        replays journalled updates with the timestamps they originally
        committed at so decayed counts come out the same as if the
        process had never died.
        """
        now = self.clock.now() if at is None else at
        with self._lock:
            current = self._decayed_count(key, now)
            self._counts[key] = current + 1.0
            self._last_seen[key] = now
            self._total_updates += 1

    def _decayed_count(self, key: Key, now: float) -> float:
        with self._lock:
            count = self._counts.get(key, 0.0)
            if count == 0.0 or self.time_constant is None:
                return count
            age = now - self._last_seen.get(key, now)
            if age <= 0:
                return count
            return count * math.exp(-age / self.time_constant)

    def prime(self, rates: Dict[Key, float], window: float = 1e6) -> None:
        """Initialise counters to their steady-state expectation.

        A burn-in shortcut for experiments: instead of replaying
        ``window`` seconds of update traffic, set each key's count to
        what a Poisson process at its given rate would have accumulated
        in expectation. With a decay time-constant τ the steady state is
        ``r·τ``; without one, the tracker is back-dated so that
        ``count/elapsed`` equals the rate. Tests verify primed and
        replayed trackers agree.
        """
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        now = self.clock.now()
        with self._lock:
            for key, rate in rates.items():
                if rate < 0:
                    raise ConfigError(
                        f"rate for {key!r} must be >= 0, got {rate}"
                    )
                if rate == 0:
                    continue
                if self.time_constant is not None:
                    self._counts[key] = rate * self.time_constant
                else:
                    self._counts[key] = rate * window
                self._last_seen[key] = now
            if self.time_constant is None:
                self._started = min(self._started, now - window)

    # -- queries ------------------------------------------------------------

    @property
    def total_updates(self) -> int:
        """Number of updates recorded (undecayed)."""
        return self._total_updates

    def count(self, key: Key) -> float:
        """Decayed update count of ``key`` as of now."""
        return self._decayed_count(key, self.clock.now())

    def rate(self, key: Key) -> float:
        """Estimated updates/second for ``key`` (0 for never-updated)."""
        now = self.clock.now()
        with self._lock:
            count = self._decayed_count(key, now)
            if count <= 0:
                return 0.0
            if self.time_constant is not None:
                return count / self.time_constant
            elapsed = now - self._started
            if elapsed <= 0:
                # All updates happened "now"; report a large finite rate.
                return count
            return count / elapsed

    def rate_many(self, keys: Sequence[Key]) -> List[float]:
        """Rates for ``keys`` from one consistent snapshot.

        One (reentrant) lock acquisition covers the whole batch, so a
        concurrent ``record_update`` can't land between two keys of one
        priced result set.
        """
        with self._lock:
            return [self.rate(key) for key in keys]

    def max_rate(self) -> float:
        """Largest estimated rate across tracked keys (0 if none)."""
        now = self.clock.now()
        best = 0.0
        with self._lock:
            for key in self._counts:
                count = self._decayed_count(key, now)
                if self.time_constant is not None:
                    rate = count / self.time_constant
                else:
                    elapsed = now - self._started
                    rate = count / elapsed if elapsed > 0 else count
                best = max(best, rate)
        return best

    def snapshot(self) -> List[Tuple[Key, float]]:
        """All (key, rate) pairs, fastest-updated first."""
        with self._lock:
            pairs = [(key, self.rate(key)) for key in list(self._counts)]
        pairs.sort(key=lambda item: item[1], reverse=True)
        return pairs

    def tracked_keys(self) -> int:
        """Number of keys ever updated."""
        with self._lock:
            return len(self._counts)

    def reset(self) -> None:
        """Forget all update history."""
        with self._lock:
            self._counts.clear()
            self._last_seen.clear()
            self._started = self.clock.now()
            self._total_updates = 0

    # -- persistence --------------------------------------------------------

    def dump_state(self) -> Dict:
        """Serialise decayed counts and timing for a snapshot.

        Keys are stored as lists (JSON has no tuples) and restored as
        tuples by :meth:`load_state`.
        """
        with self._lock:
            return {
                "time_constant": self.time_constant,
                "started": self._started,
                "total_updates": self._total_updates,
                "entries": [
                    [list(key), count, self._last_seen.get(key)]
                    for key, count in self._counts.items()
                ],
            }

    def load_state(self, payload: Dict) -> None:
        """Restore :meth:`dump_state` output, replacing current state.

        Counts resume decaying from their saved ``last_seen`` times, so
        a tracker restored mid-experiment produces the same rates as one
        that never stopped.
        """
        with self._lock:
            self.time_constant = payload.get("time_constant")
            self._started = float(payload["started"])
            self._total_updates = int(payload["total_updates"])
            self._counts = {}
            self._last_seen = {}
            for raw_key, count, last_seen in payload["entries"]:
                key = tuple(raw_key) if isinstance(raw_key, list) else raw_key
                self._counts[key] = float(count)
                if last_seen is not None:
                    self._last_seen[key] = float(last_seen)
