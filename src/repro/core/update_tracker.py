"""Update-rate tracking for the data-change defense (§3).

Where access patterns are uniform, the paper assigns delays inversely
proportional to each tuple's *update* rate. This tracker estimates
per-tuple update rates from the observed update stream, with optional
exponential decay in time so shifting update behaviour is tracked.

Replication mirrors :mod:`repro.core.popularity`: the tracker has an
*origin* id, stamps each key's last change with a monotonic version, and
exposes ``delta_since(versions)`` / ``merge(delta)``. Because every
tuple is updated on exactly one owning shard, a remote entry is simply
the owner's latest ``(count, last_seen)`` pair — per-key
last-version-wins adoption is exact, and rates sum across origins.
"""

from __future__ import annotations

import itertools
import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from .clock import Clock, VirtualClock
from .counts import Key
from .errors import ConfigError

_ORIGIN_SEQ = itertools.count()


class UpdateRateTracker:
    """Estimates updates-per-second for each tuple.

    With ``time_constant`` τ (seconds), an update that happened ``a``
    seconds ago carries weight ``exp(-a/τ)``; the decayed count of a
    tuple updated at steady rate ``r`` converges to ``r·τ``, so the rate
    estimate is ``decayed_count/τ``. With ``time_constant=None`` the
    tracker keeps plain counts and estimates ``count/elapsed`` — right
    for stationary update processes.

    Counts are decayed lazily (only when touched), so cost per update is
    O(1) regardless of table size.
    """

    #: version headroom added on :meth:`load_state` (see popularity).
    RECOVERY_VERSION_JUMP = 1 << 32

    def __init__(
        self,
        clock: Optional[Clock] = None,
        time_constant: Optional[float] = None,
        origin: Optional[str] = None,
    ):
        if time_constant is not None and time_constant <= 0:
            raise ConfigError(
                f"time_constant must be positive, got {time_constant}"
            )
        self.clock = clock if clock is not None else VirtualClock()
        self.time_constant = time_constant
        self.origin = (
            origin if origin is not None else f"updates-{next(_ORIGIN_SEQ)}"
        )
        # Guards counts/last-seen/total as one unit: the lazy decay in
        # record_update is a read-modify-write over two dicts.
        self._lock = threading.RLock()
        self._counts: Dict[Key, float] = {}
        self._last_seen: Dict[Key, float] = {}
        self._started = self.clock.now()
        self._total_updates = 0
        self._version = 0
        self._changed: Dict[Key, int] = {}
        #: origin -> key -> (count-as-of-last-seen, last_seen, version)
        self._remote: Dict[str, Dict[Key, Tuple[float, float, int]]] = {}
        #: origin -> {"version", "total_updates"}
        self._remote_meta: Dict[str, Dict[str, float]] = {}
        #: after load_state: the snapshot's data high-water mark,
        #: advertised in :meth:`versions` instead of the jumped counter
        #: so peers reflect back own-origin entries the crash destroyed
        #: (see the popularity tracker for the full story).
        self._self_floor: Optional[int] = None

    # -- recording ---------------------------------------------------------

    def record_update(self, key: Key, at: Optional[float] = None) -> None:
        """Record one update to ``key``.

        ``at`` overrides the clock time — used by crash recovery, which
        replays journalled updates with the timestamps they originally
        committed at so decayed counts come out the same as if the
        process had never died.
        """
        now = self.clock.now() if at is None else at
        with self._lock:
            current = self._decayed_count(key, now)
            self._counts[key] = current + 1.0
            self._last_seen[key] = now
            self._total_updates += 1
            self._version += 1
            self._changed[key] = self._version

    def _decayed_count(self, key: Key, now: float) -> float:
        with self._lock:
            count = self._counts.get(key, 0.0)
            if count == 0.0 or self.time_constant is None:
                return count
            age = now - self._last_seen.get(key, now)
            if age <= 0:
                return count
            return count * math.exp(-age / self.time_constant)

    def prime(self, rates: Dict[Key, float], window: float = 1e6) -> None:
        """Initialise counters to their steady-state expectation.

        A burn-in shortcut for experiments: instead of replaying
        ``window`` seconds of update traffic, set each key's count to
        what a Poisson process at its given rate would have accumulated
        in expectation. With a decay time-constant τ the steady state is
        ``r·τ``; without one, the tracker is back-dated so that
        ``count/elapsed`` equals the rate. Tests verify primed and
        replayed trackers agree.
        """
        if window <= 0:
            raise ConfigError(f"window must be positive, got {window}")
        now = self.clock.now()
        with self._lock:
            for key, rate in rates.items():
                if rate < 0:
                    raise ConfigError(
                        f"rate for {key!r} must be >= 0, got {rate}"
                    )
                if rate == 0:
                    continue
                if self.time_constant is not None:
                    self._counts[key] = rate * self.time_constant
                else:
                    self._counts[key] = rate * window
                self._last_seen[key] = now
                self._version += 1
                self._changed[key] = self._version
            if self.time_constant is None:
                self._started = min(self._started, now - window)

    # -- queries ------------------------------------------------------------

    def _remote_count(self, key: Key, now: float) -> float:
        """Mirrored decayed count of ``key`` as of ``now``; lock held."""
        total = 0.0
        for entries in self._remote.values():
            entry = entries.get(key)
            if entry is None:
                continue
            count, last_seen, _version = entry
            if self.time_constant is not None and now > last_seen:
                count *= math.exp((last_seen - now) / self.time_constant)
            total += count
        return total

    def _effective_count(self, key: Key, now: float) -> float:
        """Local + mirrored decayed count of ``key``; lock held."""
        count = self._decayed_count(key, now)
        if self._remote:
            count += self._remote_count(key, now)
        return count

    @property
    def total_updates(self) -> int:
        """Number of updates recorded (undecayed, all known origins)."""
        with self._lock:
            total = self._total_updates
            for meta in self._remote_meta.values():
                total += int(meta["total_updates"])
            return total

    def count(self, key: Key) -> float:
        """Decayed update count of ``key`` as of now (all origins)."""
        with self._lock:
            return self._effective_count(key, self.clock.now())

    def rate(self, key: Key) -> float:
        """Estimated updates/second for ``key`` (0 for never-updated)."""
        now = self.clock.now()
        with self._lock:
            count = self._effective_count(key, now)
            if count <= 0:
                return 0.0
            if self.time_constant is not None:
                return count / self.time_constant
            elapsed = now - self._started
            if elapsed <= 0:
                # All updates happened "now"; report a large finite rate.
                return count
            return count / elapsed

    def rate_many(self, keys: Sequence[Key]) -> List[float]:
        """Rates for ``keys`` from one consistent snapshot.

        One (reentrant) lock acquisition covers the whole batch, so a
        concurrent ``record_update`` can't land between two keys of one
        priced result set.
        """
        with self._lock:
            return [self.rate(key) for key in keys]

    def _all_keys(self) -> set:
        """Every key with local or mirrored history; lock held."""
        keys = set(self._counts)
        for entries in self._remote.values():
            keys.update(entries)
        return keys

    def max_rate(self) -> float:
        """Largest estimated rate across tracked keys (0 if none)."""
        now = self.clock.now()
        best = 0.0
        with self._lock:
            for key in self._all_keys():
                count = self._effective_count(key, now)
                if self.time_constant is not None:
                    rate = count / self.time_constant
                else:
                    elapsed = now - self._started
                    rate = count / elapsed if elapsed > 0 else count
                best = max(best, rate)
        return best

    def snapshot(self) -> List[Tuple[Key, float]]:
        """All (key, rate) pairs, fastest-updated first."""
        with self._lock:
            pairs = [(key, self.rate(key)) for key in self._all_keys()]
        pairs.sort(key=lambda item: item[1], reverse=True)
        return pairs

    def tracked_keys(self) -> int:
        """Number of keys ever updated (all known origins)."""
        with self._lock:
            if not self._remote:
                return len(self._counts)
            return len(self._all_keys())

    def reset(self) -> None:
        """Forget all update history (mirrored origins included)."""
        with self._lock:
            self._counts.clear()
            self._last_seen.clear()
            self._started = self.clock.now()
            self._total_updates = 0
            self._version += 1
            self._changed.clear()
            self._remote = {}
            self._remote_meta = {}
            self._self_floor = None

    # -- replication ---------------------------------------------------------

    def versions(self) -> Dict[str, int]:
        """Per-origin version high-water marks this tracker holds."""
        with self._lock:
            own = (
                self._self_floor
                if self._self_floor is not None
                else self._version
            )
            versions = {self.origin: own}
            for origin, meta in self._remote_meta.items():
                versions[origin] = int(meta["version"])
            return versions

    def delta_since(self, versions: Optional[Dict[str, int]] = None) -> Dict:
        """Entries newer than ``versions``, one payload per known origin.

        Each entry is ``[key, count, last_seen, version]`` — the decayed
        count as of its own ``last_seen``, so the receiver resumes the
        decay without any clock exchange.
        """
        versions = dict(versions or {})
        with self._lock:
            since = versions.get(self.origin, 0)
            payloads = [
                {
                    "origin": self.origin,
                    "version": self._version,
                    "total_updates": self._total_updates,
                    "entries": [
                        [
                            list(key) if isinstance(key, tuple) else key,
                            self._counts.get(key, 0.0),
                            self._last_seen.get(key),
                            changed,
                        ]
                        for key, changed in self._changed.items()
                        if changed > since
                    ],
                }
            ]
            for origin, entries_map in self._remote.items():
                since = versions.get(origin, 0)
                meta = self._remote_meta[origin]
                entries = [
                    [
                        list(key) if isinstance(key, tuple) else key,
                        count,
                        last_seen,
                        version,
                    ]
                    for key, (count, last_seen, version) in
                    entries_map.items()
                    if version > since
                ]
                if not entries and meta["version"] <= since:
                    continue
                payloads.append(
                    {
                        "origin": origin,
                        "version": int(meta["version"]),
                        "total_updates": int(meta["total_updates"]),
                        "entries": entries,
                    }
                )
        return {"payloads": payloads}

    def merge(self, delta: Dict) -> int:
        """Fold a :meth:`delta_since` payload in; returns entries adopted.

        Updates are owner-only (each tuple lives on one shard), so
        per-(origin, key) last-version-wins adoption reproduces the
        owner's state exactly.
        """
        adopted = 0
        with self._lock:
            for payload in delta.get("payloads", ()):
                origin = payload.get("origin")
                if origin == self.origin:
                    adopted += self._merge_self(payload)
                else:
                    adopted += self._merge_remote(payload)
        return adopted

    def _merge_self(self, payload: Dict) -> int:
        """Adopt reflected own-origin entries where newer; lock held."""
        adopted = 0
        for raw_key, count, last_seen, version in payload.get("entries", ()):
            key = tuple(raw_key) if isinstance(raw_key, list) else raw_key
            if version <= self._changed.get(key, 0):
                continue
            self._counts[key] = float(count)
            if last_seen is not None:
                self._last_seen[key] = float(last_seen)
            self._changed[key] = int(version)
            adopted += 1
        self._version = max(self._version, int(payload.get("version", 0)))
        self._total_updates = max(
            self._total_updates, int(payload.get("total_updates", 0))
        )
        if self._self_floor is not None:
            self._self_floor = max(
                self._self_floor, int(payload.get("version", 0))
            )
        return adopted

    def _merge_remote(self, payload: Dict) -> int:
        """Last-version-wins adoption into one origin mirror; lock held."""
        origin = payload["origin"]
        entries_map = self._remote.setdefault(origin, {})
        meta = self._remote_meta.setdefault(
            origin, {"version": 0, "total_updates": 0}
        )
        adopted = 0
        for raw_key, count, last_seen, version in payload.get("entries", ()):
            key = tuple(raw_key) if isinstance(raw_key, list) else raw_key
            current = entries_map.get(key)
            if current is not None and current[2] >= version:
                continue
            entries_map[key] = (
                float(count),
                float(last_seen) if last_seen is not None else 0.0,
                int(version),
            )
            adopted += 1
        version = int(payload.get("version", 0))
        if version > meta["version"]:
            meta["version"] = version
            meta["total_updates"] = int(payload.get("total_updates", 0))
        return adopted

    # -- persistence --------------------------------------------------------

    def dump_state(self) -> Dict:
        """Serialise decayed counts and timing for a snapshot.

        Keys are stored as lists (JSON has no tuples) and restored as
        tuples by :meth:`load_state`. Entries carry their change
        versions, and mirrored origins are saved alongside, so a
        recovered shard re-enters gossip where it left off.
        """
        with self._lock:
            return {
                "time_constant": self.time_constant,
                "started": self._started,
                "total_updates": self._total_updates,
                "origin": self.origin,
                "version": self._version,
                "entries": [
                    [
                        list(key) if isinstance(key, tuple) else key,
                        count,
                        self._last_seen.get(key),
                        self._changed.get(key, 0),
                    ]
                    for key, count in self._counts.items()
                ],
                "remote": {
                    origin: {
                        "version": int(meta["version"]),
                        "total_updates": int(meta["total_updates"]),
                        "entries": [
                            [
                                list(key) if isinstance(key, tuple) else key,
                                count,
                                last_seen,
                                version,
                            ]
                            for key, (count, last_seen, version) in
                            self._remote[origin].items()
                        ],
                    }
                    for origin, meta in self._remote_meta.items()
                },
            }

    def load_state(self, payload: Dict) -> None:
        """Restore :meth:`dump_state` output, replacing current state.

        Counts resume decaying from their saved ``last_seen`` times, so
        a tracker restored mid-experiment produces the same rates as one
        that never stopped. Accepts pre-cluster snapshots (3-element
        entries, no versions) and stamps their entries at version 0. The
        version counter jumps :data:`RECOVERY_VERSION_JUMP` past the
        snapshot's high-water mark (see the popularity tracker).
        """
        with self._lock:
            self.time_constant = payload.get("time_constant")
            self._started = float(payload["started"])
            self._total_updates = int(payload["total_updates"])
            self.origin = payload.get("origin", self.origin)
            self._counts = {}
            self._last_seen = {}
            self._changed = {}
            for entry in payload["entries"]:
                raw_key, count, last_seen = entry[0], entry[1], entry[2]
                version = int(entry[3]) if len(entry) > 3 else 0
                key = tuple(raw_key) if isinstance(raw_key, list) else raw_key
                self._counts[key] = float(count)
                if last_seen is not None:
                    self._last_seen[key] = float(last_seen)
                if version:
                    self._changed[key] = version
            self._version = (
                int(payload.get("version", 0)) + self.RECOVERY_VERSION_JUMP
            )
            self._self_floor = int(payload.get("version", 0))
            self._remote = {}
            self._remote_meta = {}
            for origin, mirror in payload.get("remote", {}).items():
                self._remote[origin] = {
                    (
                        tuple(raw_key)
                        if isinstance(raw_key, list)
                        else raw_key
                    ): (
                        float(count),
                        float(last_seen) if last_seen is not None else 0.0,
                        int(version),
                    )
                    for raw_key, count, last_seen, version in mirror.get(
                        "entries", ()
                    )
                }
                self._remote_meta[origin] = {
                    "version": int(mirror.get("version", 0)),
                    "total_updates": int(mirror.get("total_updates", 0)),
                }
