"""Rate-limiting primitives for the §2.4 defenses.

Token buckets drive three distinct limits in this library: per-identity
query rates, per-subnet aggregate rates (the Sybil defense), and the
global registration rate (one new account per ``t`` seconds).
"""

from __future__ import annotations

from typing import Optional

from .clock import Clock, VirtualClock
from .errors import ConfigError


class TokenBucket:
    """Classic token bucket: sustained ``rate`` with ``burst`` capacity.

    ``try_acquire(cost)`` consumes tokens if available and reports the
    wait time otherwise; callers choose whether to retry, sleep, or deny.
    """

    def __init__(self, rate: float, burst: float, clock: Optional[Clock] = None):
        if rate <= 0:
            raise ConfigError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise ConfigError(f"burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock if clock is not None else VirtualClock()
        self._tokens = self.burst
        self._updated = self.clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._updated = now

    @property
    def tokens(self) -> float:
        """Tokens currently available."""
        self._refill()
        return self._tokens

    def try_acquire(self, cost: float = 1.0) -> float:
        """Attempt to consume ``cost`` tokens.

        Returns 0.0 on success, otherwise the seconds until enough
        tokens will have accumulated (the bucket is left untouched).
        """
        if cost <= 0:
            raise ConfigError(f"cost must be positive, got {cost}")
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return 0.0
        deficit = cost - self._tokens
        return deficit / self.rate

    def acquire(self, cost: float = 1.0) -> float:
        """Consume ``cost`` tokens, sleeping on the clock if needed.

        Returns the seconds actually waited. ``cost`` may exceed the
        burst size; the caller then waits for multiple refill periods.
        """
        if cost <= 0:
            raise ConfigError(f"cost must be positive, got {cost}")
        waited = 0.0
        while True:
            wait = self.try_acquire(cost if cost <= self.burst else self.burst)
            if wait == 0.0:
                if cost > self.burst:
                    cost -= self.burst
                    if cost <= 0:
                        return waited
                    continue
                return waited
            self.clock.sleep(wait)
            waited += wait


class FixedIntervalGate:
    """Admit at most one event per ``interval`` seconds.

    This is the paper's registration throttle: "if only one new user
    every t seconds is given an account", an adversary needs ``k·t``
    seconds to amass ``k`` identities.
    """

    def __init__(self, interval: float, clock: Optional[Clock] = None):
        if interval <= 0:
            raise ConfigError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self.clock = clock if clock is not None else VirtualClock()
        self._last: Optional[float] = None
        self.admitted = 0

    def try_admit(self) -> float:
        """Admit if the interval has elapsed; else return seconds to wait."""
        now = self.clock.now()
        if self._last is not None and now - self._last < self.interval:
            return self.interval - (now - self._last)
        self._last = now
        self.admitted += 1
        return 0.0

    def time_to_accumulate(self, count: int) -> float:
        """Lower bound on seconds needed to admit ``count`` more events."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        if count == 0:
            return 0.0
        now = self.clock.now()
        first_wait = 0.0
        if self._last is not None:
            remaining = self.interval - (now - self._last)
            first_wait = max(0.0, remaining)
        return first_wait + (count - 1) * self.interval
