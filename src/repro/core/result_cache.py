"""The delay-aware result cache: priced hits, epoch invalidation.

A production front door caches its Zipf head — exactly the popular
queries the paper's Eq. 1 says the legitimate workload concentrates on.
A *naive* cache would break the defense: serving popular tuples for
free both erases the small delays legitimate users are supposed to pay
and lets an adversary launder repeated probes past the guard. This
cache is built so that can't happen, by construction:

* **Hits are priced and recorded.** The cache replaces only the
  pipeline's execute stage (:mod:`repro.core.pipeline`). The account,
  price, record, and sleep stages still run against the cached result's
  ``touched`` set, so popularity counts, account charges, and the
  mandated delay are bit-identical between a hit and a miss. Only
  engine CPU is saved.
* **Keys are identity-independent.** Entries are keyed on
  ``(normalized SQL, snapshot epoch)`` — never on who asked. Admission
  and authorization run *before* the lookup, and pricing after it, so
  sharing results across identities leaks nothing the guard wasn't
  already willing to serve each of them at full price.
* **Any committed change invalidates.** The epoch is the engine's
  :attr:`~repro.engine.database.Database.mutation_epoch` — a monotonic
  counter bumped at every committed DML/DDL (and aligned with the
  write-ahead journal's ``last_seq`` when durability is on), so a
  cached result can never survive a change to the data it came from.
  The "Conjunctive Queries … under Updates" line of work motivates
  tracking the update stream this way; the optional TTL bounds
  staleness in *time* as well, the freshness-versus-delay tradeoff
  "Timely Private Information Retrieval" frames.
* **Entries are deep-frozen.** Rows are stored as tuples of tuples and
  every hit materialises fresh lists, so a caller mutating a returned
  result can never poison later hits.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..engine.executor import ResultSet
from .errors import ConfigError

__all__ = ["CachedResult", "ResultCache"]


@dataclass(frozen=True)
class CachedResult:
    """One SELECT result, deep-frozen for safe sharing across callers.

    Everything the downstream pipeline stages need survives the freeze:
    ``touched``/``rowids`` drive accounting and pricing, ``rows`` and
    ``columns`` the answer itself. Rows are tuples of scalar SQL values,
    so the structure is immutable all the way down.
    """

    columns: Tuple[str, ...]
    rows: Tuple[Tuple, ...]
    rowids: Tuple[int, ...]
    touched: Tuple[Tuple[str, int], ...]
    table: Optional[str]
    rowcount: int

    @classmethod
    def freeze(cls, result: ResultSet) -> "CachedResult":
        """Deep-copy a live result set into immutable storage form."""
        return cls(
            columns=tuple(result.columns),
            rows=tuple(tuple(row) for row in result.rows),
            rowids=tuple(result.rowids),
            touched=tuple(
                (table, rowid) for table, rowid in result.touched
            ),
            table=result.table,
            rowcount=result.rowcount,
        )

    def thaw(self) -> ResultSet:
        """A fresh :class:`ResultSet` for one caller.

        Builds new list containers on every call: the caller may append
        to or reorder its result freely without reaching the cache, and
        the rows themselves are immutable tuples.
        """
        return ResultSet(
            columns=list(self.columns),
            rows=list(self.rows),
            rowids=list(self.rowids),
            touched=list(self.touched),
            table=self.table,
            rowcount=self.rowcount,
            statement_kind="select",
            execution_path="cached",
        )


class ResultCache:
    """Thread-safe, size-bounded LRU of frozen SELECT results.

    Args:
        maxsize: maximum entries; the least-recently-used is evicted
            beyond it.
        ttl: seconds an entry stays servable, on the cache's clock.
            None disables time-based expiry (epoch invalidation still
            applies — TTL only matters for data that never changes).
        clock: time source for TTL stamps, a callable returning seconds
            (the guard passes its own clock so virtual-time tests and
            simulations expire deterministically). ``time.monotonic``
            by default.

    Epoch discipline: every :meth:`get`/:meth:`put` carries the
    caller's observed snapshot epoch. The cache remembers the highest
    epoch it has seen; observing a newer one sweeps every entry keyed
    below it (counted in ``invalidations``), and a :meth:`put` against
    an epoch older than the high-water mark is refused — the writer
    raced with a commit and its result may not describe any current
    snapshot.

    Counters (``hits``/``misses``/``evictions``/``invalidations``/
    ``expirations``) are cumulative and read via :meth:`info`.
    """

    def __init__(
        self,
        maxsize: int = 256,
        ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        if maxsize < 1:
            raise ConfigError(f"cache maxsize must be >= 1, got {maxsize}")
        if ttl is not None and ttl <= 0:
            raise ConfigError(f"cache ttl must be positive, got {ttl}")
        self.maxsize = maxsize
        self.ttl = ttl
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        #: (normalized sql, epoch) -> (frozen result, stored-at stamp)
        self._entries: "OrderedDict[Tuple[str, int], Tuple[CachedResult, float]]" = (
            OrderedDict()
        )
        self._epoch = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.expirations = 0

    # -- the hot path --------------------------------------------------------

    def get(self, sql: str, epoch: int) -> Optional[CachedResult]:
        """The frozen result for ``(sql, epoch)``, or None on a miss."""
        with self._lock:
            self._observe_epoch(epoch)
            key = (sql, epoch)
            item = self._entries.get(key)
            if item is not None and self.ttl is not None:
                if self._clock() - item[1] > self.ttl:
                    del self._entries[key]
                    self.expirations += 1
                    item = None
            if item is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return item[0]

    def put(self, sql: str, epoch: int, frozen: CachedResult) -> bool:
        """Store a result; returns False when refused as stale.

        A put against an epoch below the cache's high-water mark means a
        commit landed between the caller's epoch read and now — the
        result may describe either snapshot, so it is not cached.
        """
        with self._lock:
            self._observe_epoch(epoch)
            if epoch < self._epoch:
                return False
            key = (sql, epoch)
            self._entries[key] = (frozen, self._clock())
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
            return True

    def _observe_epoch(self, epoch: int) -> None:
        """Advance the high-water epoch, sweeping superseded entries.

        The key already separates epochs — a stale entry can never be
        *served* — so the sweep is memory hygiene plus the
        ``invalidations`` signal operators watch to see the update
        stream hitting the cache. O(entries), paid once per committed
        mutation, not per query.
        """
        if epoch <= self._epoch:
            return
        self._epoch = epoch
        stale = [key for key in self._entries if key[1] < epoch]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)

    # -- maintenance ---------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry; counters and the epoch mark are kept."""
        with self._lock:
            self._entries.clear()

    def info(self) -> Dict[str, float]:
        """Counters and occupancy, for metrics export and tests."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "expirations": self.expirations,
                "entries": len(self._entries),
                "capacity": self.maxsize,
                "epoch": self._epoch,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        info = self.info()
        return (
            f"ResultCache(entries={info['entries']}/{self.maxsize}, "
            f"hits={info['hits']}, misses={info['misses']}, "
            f"epoch={info['epoch']})"
        )
