"""Configuration for building a :class:`~repro.core.guard.DelayGuard`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .errors import ConfigError


@dataclass
class GuardConfig:
    """Declarative guard configuration.

    Attributes:
        policy: which delay policy to build — "popularity" (§2),
            "update" (§3), "both" (max of the two), "fixed" (naive
            baseline), or "none" (unprotected baseline).
        cap: maximum per-tuple delay d_max in seconds; None disables
            the cap (§2.2 strongly recommends keeping one).
        beta: extra penalty exponent for the popularity policy (eq. 1).
        unit: proportionality constant in seconds for the popularity
            policy.
        decay_rate: per-request popularity decay γ >= 1 (§2.3); 1.0
            keeps full history.
        popularity_mode: "raw" (paper normalisation) or "decayed".
        fixed_delay: per-tuple delay for the "fixed" baseline policy.
        update_c: the constant c of equation (9) for the update policy.
        update_time_constant: seconds for update-rate decay (None =
            stationary estimation over the full history).
        count_store: "memory", "write_behind", "space_saving", or
            "counting_sample" (§4.4 storage strategies).
        count_cache_size: cache size for the write-behind store.
        count_capacity: counter budget for the sampled stores.
        charge_returned_tuples: charge delay for each tuple returned by
            a SELECT (the paper's model: a multi-tuple result is the
            aggregate of single-tuple queries). If False, only the
            maximum per-tuple delay is charged (an ablation).
        record_accesses: update popularity counts on reads.
        record_updates: track update rates / last-update times on DML.
        max_result_rows: §1.1's strawman defense — refuse SELECTs whose
            result exceeds this many rows ("users must ask very
            selective queries"). None disables. Kept as a baseline: the
            paper's point is that a robot trivially defeats it with
            many selective queries, which the tests demonstrate.
        parse_cache_size: capacity of the SQL statement parse cache
            used by the guard's parse stage. None keeps the current
            (process-default) size. Note the cache is process-global —
            configuring it on one guard resizes it for every guard in
            the process and clears the cached statements.
        result_cache_size: capacity of the guard's delay-aware result
            cache — SELECT results keyed on (normalized SQL, snapshot
            epoch), where hits skip only the engine execute stage:
            account, price, record, and sleep still run, so the
            mandated delay and popularity counts are identical between
            a hit and a miss. None (the default) disables the cache
            entirely, which keeps the paper's Table 5 engine/accounting
            cost split unperturbed for the replication experiments;
            production front doors should turn it on.
        result_cache_ttl: seconds a cached result stays servable (on
            the guard's clock) even when no mutation invalidates it.
            None never expires by time — epoch invalidation alone
            already guarantees no stale data is served; a TTL adds a
            freshness bound for deployments that also want one.
        forensics: enable live extraction forensics — a
            :class:`~repro.core.detection.CoverageMonitor` fed by a
            pipeline stage after record, scored and exported by
            :class:`repro.obs.forensics.ForensicsMonitor` (per-identity
            coverage/novelty/extraction-ETA, audit flag events, the
            server's ``forensics`` op). Off by default: it adds a
            per-SELECT accounting cost and the replication experiments
            drive the monitor offline.
        forensics_coverage_threshold / forensics_novelty_threshold /
            forensics_window / forensics_min_requests: monitor
            thresholds (see :class:`CoverageMonitor`).
        forensics_max_identities: identities profiled individually
            before the long tail folds into the ``_other`` aggregate
            (memory bound for million-user deployments).
        forensics_max_keys_per_identity: cap on each identity's
            retrieved-key set (memory bound; coverage saturates at
            cap / population).
        node_id: stable identity for this guard's trackers in a
            cluster — the origin stamped on gossip deltas, so peers
            can mirror this shard's counts and a recovered shard can
            reclaim its own pre-crash entries. None (the default)
            generates a fresh process-unique origin, which is correct
            for every single-node deployment.
        vectorized_execution: run SELECTs on the engine's columnar
            executor (the default). Statement shapes it cannot prove
            reproducible fall back to the classic row-at-a-time path
            per statement; both paths emit bit-identical
            rows/rowids/touched, so pricing and popularity are
            unaffected either way. False pins the classic executor
            (ablation / debugging).
        scan_workers: fork this many read-only scan worker processes
            for large full scans (0, the default, stays single-
            process). Workers snapshot the database via fork and are
            respawned on any committed mutation; any worker failure
            falls back to the identical in-process scan. Requires
            ``vectorized_execution``.
        parallel_scan_min_rows: smallest full scan dispatched to the
            worker pool; smaller scans cost more in pipe traffic than
            they save.
    """

    policy: str = "popularity"
    cap: Optional[float] = 10.0
    beta: float = 0.0
    unit: float = 1.0
    decay_rate: float = 1.0
    popularity_mode: str = "raw"
    fixed_delay: float = 0.0
    update_c: float = 1.0
    update_time_constant: Optional[float] = None
    count_store: str = "memory"
    count_cache_size: int = 1024
    count_capacity: int = 4096
    charge_returned_tuples: bool = True
    record_accesses: bool = True
    record_updates: bool = True
    max_result_rows: Optional[int] = None
    parse_cache_size: Optional[int] = None
    result_cache_size: Optional[int] = None
    result_cache_ttl: Optional[float] = None
    forensics: bool = False
    forensics_coverage_threshold: float = 0.5
    forensics_novelty_threshold: float = 0.9
    forensics_window: int = 200
    forensics_min_requests: int = 100
    forensics_max_identities: int = 4096
    forensics_max_keys_per_identity: int = 100_000
    node_id: Optional[str] = None
    vectorized_execution: bool = True
    scan_workers: int = 0
    parallel_scan_min_rows: int = 4096

    _POLICIES = ("popularity", "update", "both", "fixed", "none")
    _STORES = ("memory", "write_behind", "space_saving", "counting_sample")

    def validate(self) -> "GuardConfig":
        """Check cross-field consistency; returns self for chaining."""
        if self.policy not in self._POLICIES:
            raise ConfigError(
                f"policy must be one of {self._POLICIES}, got {self.policy!r}"
            )
        if self.count_store not in self._STORES:
            raise ConfigError(
                f"count_store must be one of {self._STORES}, "
                f"got {self.count_store!r}"
            )
        if self.cap is not None and self.cap <= 0:
            raise ConfigError(f"cap must be positive, got {self.cap}")
        if self.decay_rate < 1.0:
            raise ConfigError(
                f"decay_rate must be >= 1.0, got {self.decay_rate}"
            )
        if self.count_store == "counting_sample" and self.decay_rate != 1.0:
            raise ConfigError(
                "counting_sample store does not support decayed tracking; "
                "use space_saving instead"
            )
        if self.fixed_delay < 0:
            raise ConfigError(
                f"fixed_delay must be >= 0, got {self.fixed_delay}"
            )
        if self.max_result_rows is not None and self.max_result_rows < 1:
            raise ConfigError(
                f"max_result_rows must be >= 1, got {self.max_result_rows}"
            )
        if self.parse_cache_size is not None and self.parse_cache_size < 1:
            raise ConfigError(
                f"parse_cache_size must be >= 1, got {self.parse_cache_size}"
            )
        if self.result_cache_size is not None and self.result_cache_size < 1:
            raise ConfigError(
                f"result_cache_size must be >= 1, "
                f"got {self.result_cache_size}"
            )
        if self.result_cache_ttl is not None and self.result_cache_ttl <= 0:
            raise ConfigError(
                f"result_cache_ttl must be positive, "
                f"got {self.result_cache_ttl}"
            )
        if (
            self.result_cache_ttl is not None
            and self.result_cache_size is None
        ):
            raise ConfigError(
                "result_cache_ttl without result_cache_size has no "
                "effect; set a cache size to enable the cache"
            )
        if self.scan_workers < 0:
            raise ConfigError(
                f"scan_workers must be >= 0, got {self.scan_workers}"
            )
        if self.scan_workers > 0 and not self.vectorized_execution:
            raise ConfigError(
                "scan_workers requires vectorized_execution; the classic "
                "executor has no parallel scan path"
            )
        if self.parallel_scan_min_rows < 1:
            raise ConfigError(
                f"parallel_scan_min_rows must be >= 1, "
                f"got {self.parallel_scan_min_rows}"
            )
        if not 0 < self.forensics_coverage_threshold <= 1:
            raise ConfigError(
                f"forensics_coverage_threshold must be in (0, 1], got "
                f"{self.forensics_coverage_threshold}"
            )
        if not 0 < self.forensics_novelty_threshold <= 1:
            raise ConfigError(
                f"forensics_novelty_threshold must be in (0, 1], got "
                f"{self.forensics_novelty_threshold}"
            )
        if self.forensics_window < 1:
            raise ConfigError(
                f"forensics_window must be >= 1, got {self.forensics_window}"
            )
        if self.forensics_min_requests < 1:
            raise ConfigError(
                f"forensics_min_requests must be >= 1, got "
                f"{self.forensics_min_requests}"
            )
        if self.forensics_max_identities < 1:
            raise ConfigError(
                f"forensics_max_identities must be >= 1, got "
                f"{self.forensics_max_identities}"
            )
        if self.forensics_max_keys_per_identity < 1:
            raise ConfigError(
                f"forensics_max_keys_per_identity must be >= 1, got "
                f"{self.forensics_max_keys_per_identity}"
            )
        return self
