"""Clock abstraction: real wall-clock time or simulated time.

The paper's adversary delays run to weeks; experiments therefore run on a
:class:`VirtualClock`, where ``sleep`` advances simulated time instantly.
:class:`RealClock` actually blocks, and is what a production deployment
of the guard would use.
"""

from __future__ import annotations

import time
from typing import List


class Clock:
    """Interface: monotonically non-decreasing time plus sleep."""

    def now(self) -> float:
        """Current time in seconds (arbitrary epoch, monotonic)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds`` (>= 0)."""
        raise NotImplementedError


class RealClock(Clock):
    """Wall-clock implementation backed by ``time.monotonic``/``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep for {seconds!r} seconds")
        if seconds:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Simulated clock: ``sleep`` advances time without blocking.

    Also records every sleep for test introspection.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        #: every sleep duration requested, in order.
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep for {seconds!r} seconds")
        self._now += seconds
        self.sleeps.append(seconds)

    def advance(self, seconds: float) -> None:
        """Advance time without recording a sleep (e.g. think time)."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds!r} seconds")
        self._now += seconds

    @property
    def total_slept(self) -> float:
        """Sum of all sleeps so far."""
        return sum(self.sleeps)
