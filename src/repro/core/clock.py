"""Clock abstraction: real wall-clock time or simulated time.

The paper's adversary delays run to weeks; experiments therefore run on a
:class:`VirtualClock`, where ``sleep`` advances simulated time instantly.
:class:`RealClock` actually blocks, and is what a production deployment
of the guard would use.

Both clocks are thread-safe. The server serves many connections against
one shared clock, so ``sleep``/``advance``/``now`` must be callable from
any handler thread: :class:`RealClock` is stateless (``time.monotonic``
and ``time.sleep`` are safe everywhere), and :class:`VirtualClock` takes
an internal lock around its timeline so concurrent sleeps serialise into
one consistent sequence of advances instead of losing increments.
"""

from __future__ import annotations

import threading
import time
from typing import List


class Clock:
    """Interface: monotonically non-decreasing time plus sleep.

    Implementations must be safe to share across threads.
    """

    def now(self) -> float:
        """Current time in seconds (arbitrary epoch, monotonic)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds`` (>= 0)."""
        raise NotImplementedError

    def sleep_until(self, deadline: float) -> float:
        """Block until ``deadline``; returns the seconds actually waited.

        Unlike :meth:`sleep`, concurrent sleepers with overlapping
        deadlines *coalesce*: a deadline already in the past waits zero
        seconds. Returns 0.0 when no wait was needed. The default just
        sleeps the remaining duration measured at call time.
        """
        remaining = max(0.0, deadline - self.now())
        if remaining:
            self.sleep(remaining)
        return remaining


class RealClock(Clock):
    """Wall-clock implementation backed by ``time.monotonic``/``time.sleep``.

    Stateless, so inherently thread-safe: concurrent sessions each block
    for their own duration without touching shared state.
    """

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep for {seconds!r} seconds")
        if seconds:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Simulated clock: ``sleep`` advances time without blocking.

    Also records every sleep for test introspection. A single lock
    guards the timeline and the sleep log, so ``self._now += seconds``
    from many threads never loses an advance and ``total_slept`` always
    equals the simulated time that has passed through ``sleep``.

    **Semantics under parallel sleepers.** ``sleep(d)`` models *charged*
    time: each call advances the timeline by its full duration, so with
    k threads sleeping d seconds "simultaneously" the clock moves k·d —
    the sum of what every caller was charged, exactly matching
    ``GuardStats.total_delay`` (the invariant the stress suite checks).
    That is the right model for *cost* accounting but not for
    *makespan*: k parallel real-world sleepers would finish after d
    wall seconds, not k·d. For makespan-style questions use
    :meth:`sleep_until`, which coalesces overlapping waits (a deadline
    already reached waits zero), or compare :attr:`elapsed` against the
    event-driven schedule of :mod:`repro.sim.concurrent`, which models
    true overlap explicitly.
    """

    def __init__(self, start: float = 0.0):
        self._lock = threading.Lock()
        self._start = float(start)
        self._now = float(start)
        #: every sleep duration requested, in order.
        self.sleeps: List[float] = []

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep for {seconds!r} seconds")
        with self._lock:
            self._now += seconds
            self.sleeps.append(seconds)

    def sleep_until(self, deadline: float) -> float:
        """Advance to ``deadline`` if it is ahead; returns seconds waited.

        Atomic: the remaining wait is computed and applied under the
        timeline lock, so two threads racing toward one deadline wait
        the *combined* gap exactly once between them (overlap
        coalesces), unlike two ``sleep`` calls which would both charge
        their full duration.
        """
        with self._lock:
            waited = max(0.0, deadline - self._now)
            if waited:
                self._now = deadline
                self.sleeps.append(waited)
            return waited

    def advance(self, seconds: float) -> None:
        """Advance time without recording a sleep (e.g. think time)."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds!r} seconds")
        with self._lock:
            self._now += seconds

    @property
    def total_slept(self) -> float:
        """Sum of all sleeps so far: the *charged* total.

        With parallel sleepers this exceeds the wall time a real
        deployment would observe (see the class docstring); it is the
        number to compare against ``GuardStats.total_delay``.
        """
        with self._lock:
            return sum(self.sleeps)

    @property
    def elapsed(self) -> float:
        """Simulated seconds since construction (makespan-style).

        ``now() - start``: how far the timeline has moved through
        sleeps *and* advances, the closest virtual analogue of
        wall-clock makespan.
        """
        with self._lock:
            return self._now - self._start
