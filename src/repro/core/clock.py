"""Clock abstraction: real wall-clock time or simulated time.

The paper's adversary delays run to weeks; experiments therefore run on a
:class:`VirtualClock`, where ``sleep`` advances simulated time instantly.
:class:`RealClock` actually blocks, and is what a production deployment
of the guard would use.

Both clocks are thread-safe. The server serves many connections against
one shared clock, so ``sleep``/``advance``/``now`` must be callable from
any handler thread: :class:`RealClock` is stateless (``time.monotonic``
and ``time.sleep`` are safe everywhere), and :class:`VirtualClock` takes
an internal lock around its timeline so concurrent sleeps serialise into
one consistent sequence of advances instead of losing increments.
"""

from __future__ import annotations

import threading
import time
from typing import List


class Clock:
    """Interface: monotonically non-decreasing time plus sleep.

    Implementations must be safe to share across threads.
    """

    def now(self) -> float:
        """Current time in seconds (arbitrary epoch, monotonic)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block (or simulate blocking) for ``seconds`` (>= 0)."""
        raise NotImplementedError


class RealClock(Clock):
    """Wall-clock implementation backed by ``time.monotonic``/``time.sleep``.

    Stateless, so inherently thread-safe: concurrent sessions each block
    for their own duration without touching shared state.
    """

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep for {seconds!r} seconds")
        if seconds:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Simulated clock: ``sleep`` advances time without blocking.

    Also records every sleep for test introspection. A single lock
    guards the timeline and the sleep log, so ``self._now += seconds``
    from many threads never loses an advance and ``total_slept`` always
    equals the simulated time that has passed through ``sleep``.
    """

    def __init__(self, start: float = 0.0):
        self._lock = threading.Lock()
        self._now = float(start)
        #: every sleep duration requested, in order.
        self.sleeps: List[float] = []

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot sleep for {seconds!r} seconds")
        with self._lock:
            self._now += seconds
            self.sleeps.append(seconds)

    def advance(self, seconds: float) -> None:
        """Advance time without recording a sleep (e.g. think time)."""
        if seconds < 0:
            raise ValueError(f"cannot advance by {seconds!r} seconds")
        with self._lock:
            self._now += seconds

    @property
    def total_slept(self) -> float:
        """Sum of all sleeps so far."""
        with self._lock:
            return sum(self.sleeps)
