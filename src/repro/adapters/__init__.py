"""Adapters: the delay defense over external database engines.

The reproduction's own engine (:mod:`repro.engine`) is the default
substrate, but the scheme is a *proxy layer*: anything that can report
which rows a query returned can be guarded. :mod:`repro.adapters.sqlite_proxy`
wraps Python's built-in ``sqlite3`` so the defense runs over a real,
persistent database file.
"""

from .sqlite_proxy import ProxyResult, SQLiteDelayProxy

__all__ = ["ProxyResult", "SQLiteDelayProxy"]
