"""The delay defense as a proxy over SQLite.

:class:`SQLiteDelayProxy` gives a real ``sqlite3`` database the paper's
front door: every SELECT is charged per returned tuple by popularity,
updates feed the update-rate tracker, and the §2.4 account limits apply
— all without touching the underlying schema (no count column is added;
counts live in the proxy, exactly as §2.3/§4.4 recommend via external
count storage).

How accounting works: the incoming SQL is parsed with this library's
own parser (so only its SQL subset is accepted — a real deployment
would fail closed on statements it cannot attribute). For a SELECT, the
proxy runs a companion query ``SELECT rowid FROM <table> [WHERE ...]
[ORDER BY ...] [LIMIT ...]`` to learn exactly which rows the user's
query touches, charges and records them, then runs the user's original
query for the results. DML statements likewise resolve their affected
rowids first.

Joins, GROUP BY and subqueries are rejected by the proxy (attribution
through SQLite would need rowid plumbing per table); the native engine
guard supports them.
"""

from __future__ import annotations

import sqlite3
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.accounts import AccountManager
from ..core.clock import Clock, VirtualClock
from ..core.config import GuardConfig
from ..core.delay_policy import (
    DelayPolicy,
    FixedDelayPolicy,
    NoDelayPolicy,
    PopularityDelayPolicy,
    UpdateRateDelayPolicy,
)
from ..core.errors import ConfigError
from ..core.guard import GuardStats
from ..core.popularity import PopularityTracker
from ..core.update_tracker import UpdateRateTracker
from ..engine.errors import EngineError, ParseError
from ..engine.parser.ast import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
)
from ..engine.parser.parser import parse_cached


@dataclass
class ProxyResult:
    """Result of a proxied statement."""

    rows: List[Tuple] = field(default_factory=list)
    columns: List[str] = field(default_factory=list)
    delay: float = 0.0
    rowids: List[int] = field(default_factory=list)
    rowcount: int = 0
    statement_kind: str = "select"


class SQLiteDelayProxy:
    """Wraps a ``sqlite3.Connection`` with the delay defense.

    Args:
        connection: an open sqlite3 connection (the proxy does not own
            it; close it yourself).
        config: guard configuration (same knobs as the native guard).
        clock: time source; virtual by default.
        accounts: optional §2.4 account manager.

    >>> import sqlite3
    >>> conn = sqlite3.connect(":memory:")
    >>> _ = conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    >>> _ = conn.execute("INSERT INTO t VALUES (1, 'x')")
    >>> proxy = SQLiteDelayProxy(conn, config=GuardConfig(cap=3.0))
    >>> result = proxy.execute("SELECT * FROM t WHERE id = 1")
    >>> (result.rows, result.delay)
    ([(1, 'x')], 3.0)
    """

    def __init__(
        self,
        connection: sqlite3.Connection,
        config: Optional[GuardConfig] = None,
        clock: Optional[Clock] = None,
        accounts: Optional[AccountManager] = None,
    ):
        self.connection = connection
        self.config = (config if config is not None else GuardConfig()).validate()
        self.clock = clock if clock is not None else VirtualClock()
        self.accounts = accounts
        self.stats = GuardStats()
        self.popularity = PopularityTracker(decay_rate=self.config.decay_rate)
        self.update_rates = UpdateRateTracker(
            clock=self.clock,
            time_constant=self.config.update_time_constant,
        )
        self.last_update_times = {}
        self.policy = self._build_policy()

    # -- policy -----------------------------------------------------------

    def _build_policy(self) -> DelayPolicy:
        config = self.config
        if config.policy == "none":
            return NoDelayPolicy()
        if config.policy == "fixed":
            return FixedDelayPolicy(config.fixed_delay)
        if config.policy == "update":
            return UpdateRateDelayPolicy(
                tracker=self.update_rates,
                population=self.population,
                c=config.update_c,
                cap=config.cap,
            )
        return PopularityDelayPolicy(
            tracker=self.popularity,
            population=self.population,
            cap=config.cap,
            beta=config.beta,
            unit=config.unit,
            mode=config.popularity_mode,
        )

    def population(self) -> int:
        """Total rows across all user tables in the SQLite database."""
        total = 0
        names = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchall()
        for (name,) in names:
            count = self.connection.execute(
                f'SELECT COUNT(*) FROM "{name}"'
            ).fetchone()
            total += count[0]
        return max(total, 1)

    # -- statement handling ----------------------------------------------------

    @staticmethod
    def _where_sql(statement) -> str:
        return f" WHERE {statement.where}" if statement.where else ""

    @staticmethod
    def _tail_sql(statement: SelectStatement) -> str:
        parts = []
        if statement.order_by:
            keys = ", ".join(
                f"{item.expression}{' DESC' if item.descending else ''}"
                for item in statement.order_by
            )
            parts.append(f" ORDER BY {keys}")
        if statement.limit is not None:
            parts.append(f" LIMIT {statement.limit}")
            if statement.offset is not None:
                parts.append(f" OFFSET {statement.offset}")
        return "".join(parts)

    def _rowids_for_select(self, statement: SelectStatement) -> List[int]:
        has_aggregate = any(item.aggregate for item in statement.items)
        sql = (
            f'SELECT rowid FROM "{statement.table}"'
            + self._where_sql(statement)
        )
        if not has_aggregate:
            sql += self._tail_sql(statement)
        return [row[0] for row in self.connection.execute(sql)]

    def _rowids_for_dml(self, statement) -> List[int]:
        sql = (
            f'SELECT rowid FROM "{statement.table}"'
            + self._where_sql(statement)
        )
        return [row[0] for row in self.connection.execute(sql)]

    def execute(
        self,
        sql: str,
        identity: Optional[str] = None,
        record: bool = True,
        sleep: bool = True,
    ) -> ProxyResult:
        """Proxy one statement through the defense to SQLite.

        Raises :class:`~repro.engine.errors.ParseError` for SQL outside
        the supported subset and
        :class:`~repro.core.errors.ConfigError` for attributable-but-
        unsupported shapes (joins, GROUP BY, subqueries).
        """
        accounting_start = time.perf_counter()
        if self.accounts is not None:
            if identity is None:
                raise ConfigError(
                    "this proxy requires an identity for every query"
                )
            try:
                self.accounts.authorize_query(identity)
            except Exception:
                self.stats.note_denied()
                raise
        statement = parse_cached(sql)
        if isinstance(statement, SelectStatement):
            if statement.joins or statement.group_by:
                raise ConfigError(
                    "the SQLite proxy cannot attribute joins or GROUP BY; "
                    "use the native engine guard for those"
                )
        accounting = time.perf_counter() - accounting_start

        if isinstance(statement, SelectStatement):
            return self._execute_select(
                statement, sql, identity, record, sleep, accounting
            )
        if isinstance(statement, (InsertStatement, UpdateStatement,
                                  DeleteStatement)):
            return self._execute_dml(statement, sql, accounting)
        # DDL and transaction control pass straight through.
        engine_start = time.perf_counter()
        self.connection.execute(sql)
        self.connection.commit()
        self.stats.note_query(
            0.0, time.perf_counter() - engine_start, accounting
        )
        return ProxyResult(statement_kind="ddl")

    def _execute_select(
        self, statement, sql, identity, record, sleep, accounting
    ) -> ProxyResult:
        accounting_start = time.perf_counter()
        table_key = statement.table.lower()
        rowids = self._rowids_for_select(statement)
        keys = [(table_key, rowid) for rowid in rowids]
        per_tuple = [self.policy.delay_for(key) for key in keys]
        delay = (
            sum(per_tuple)
            if self.config.charge_returned_tuples
            else max(per_tuple, default=0.0)
        )
        if record and self.config.record_accesses:
            for key in keys:
                self.popularity.record(key)
        if self.accounts is not None and identity is not None:
            self.accounts.record_retrieval(identity, len(keys))
        accounting += time.perf_counter() - accounting_start

        engine_start = time.perf_counter()
        cursor = self.connection.execute(sql)
        rows = cursor.fetchall()
        engine_elapsed = time.perf_counter() - engine_start

        self.stats.note_select(delay, len(keys))
        self.stats.note_query(delay, engine_elapsed, accounting)
        if delay > 0 and sleep:
            self.clock.sleep(delay)
        return ProxyResult(
            rows=rows,
            columns=[desc[0] for desc in cursor.description or []],
            delay=delay,
            rowids=rowids,
            rowcount=len(rows),
            statement_kind="select",
        )

    def _execute_dml(self, statement, sql, accounting) -> ProxyResult:
        accounting_start = time.perf_counter()
        table_key = statement.table.lower()
        if isinstance(statement, InsertStatement):
            affected_before: List[int] = []
        else:
            affected_before = self._rowids_for_dml(statement)
        accounting += time.perf_counter() - accounting_start

        engine_start = time.perf_counter()
        cursor = self.connection.execute(sql)
        self.connection.commit()
        engine_elapsed = time.perf_counter() - engine_start

        accounting_start = time.perf_counter()
        if isinstance(statement, InsertStatement):
            last = cursor.lastrowid or 0
            count = cursor.rowcount if cursor.rowcount > 0 else 1
            rowids = list(range(last - count + 1, last + 1))
        else:
            rowids = affected_before
        if self.config.record_updates:
            now = self.clock.now()
            for rowid in rowids:
                key = (table_key, rowid)
                self.update_rates.record_update(key)
                self.last_update_times[key] = now
        accounting += time.perf_counter() - accounting_start

        kind = type(statement).__name__.replace("Statement", "").lower()
        self.stats.note_query(0.0, engine_elapsed, accounting)
        return ProxyResult(
            rowids=rowids,
            rowcount=len(rowids),
            statement_kind=kind,
        )

    # -- analysis --------------------------------------------------------------

    def delay_for(self, table: str, rowid: int) -> float:
        """Current delay for one tuple."""
        return self.policy.delay_for((table.lower(), rowid))

    def extraction_cost(self, table: str) -> float:
        """Total delay to extract ``table`` under current counts."""
        rowids = [
            row[0]
            for row in self.connection.execute(
                f'SELECT rowid FROM "{table}"'
            )
        ]
        key = table.lower()
        return sum(self.policy.delay_for((key, rowid)) for rowid in rowids)
