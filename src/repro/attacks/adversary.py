"""Sequential extraction adversary (§1.1's front-door robot).

The adversary masquerades as a legitimate user and walks the key space
with selective single-tuple queries whose union is the entire relation —
"no different than one a genuine user might make". Two execution modes:

* :meth:`ExtractionAdversary.run` issues every query through the guard,
  advancing the clock by each charged delay (ground truth; used by
  tests and small experiments).
* :meth:`ExtractionAdversary.estimate` computes the same per-tuple
  delays from the guard's current counts without executing queries —
  the paper's own method for §4.1 ("we computed the delay that would be
  imposed on an adversary ... by examining the access counts after the
  trace was replayed"). This makes million-tuple extractions cheap to
  evaluate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigError
from ..core.guard import DelayGuard
from ..core.staleness import Snapshot, StalenessReport, stale_fraction
from ..workloads.generators import select_sql
from ..workloads.updates import UpdateProcess


@dataclass
class ExtractionResult:
    """Outcome of an extraction attempt.

    Attributes:
        total_delay: seconds of delay charged across all queries.
        queries: number of queries issued.
        tuples: number of tuples obtained.
        snapshot: the extracted copy (with per-tuple retrieval times).
        staleness: staleness evaluation, when an update source was
            available.
        per_tuple_delays: delay charged for each tuple, in retrieval
            order (present unless disabled for memory reasons).
    """

    total_delay: float
    queries: int
    tuples: int
    snapshot: Snapshot
    staleness: Optional[StalenessReport] = None
    per_tuple_delays: List[float] = field(default_factory=list)

    @property
    def mean_delay(self) -> float:
        """Average delay per retrieved tuple."""
        if self.tuples == 0:
            return 0.0
        return self.total_delay / self.tuples


class ExtractionAdversary:
    """Extracts a whole table through the guard, one tuple per query.

    Args:
        guard: the defended front door.
        table: the relation to steal.
        identity: account to query as (required if the guard enforces
            accounts).
        order: key-space walk order — "id" (ascending primary key) or
            "random" (shuffled; what a robot avoiding detection might
            do). Order does not change total delay, only which tuples
            end up stale.
        record: whether the adversary's own queries feed the popularity
            counts (True is the realistic setting; False reproduces the
            paper's post-trace evaluation).
        seed: shuffle seed for ``order="random"``.
    """

    def __init__(
        self,
        guard: DelayGuard,
        table: str,
        identity: Optional[str] = None,
        order: str = "id",
        record: bool = True,
        seed: Optional[int] = None,
    ):
        if order not in ("id", "random"):
            raise ConfigError(f"order must be 'id' or 'random', got {order!r}")
        self.guard = guard
        self.table = table
        self.identity = identity
        self.order = order
        self.record = record
        self.seed = seed

    def _target_ids(self) -> List[int]:
        heap = self.guard.database.catalog.table(self.table)
        position = heap.schema.position("id")
        ids = [row[position] for _, row in heap.scan()]
        ids.sort()
        if self.order == "random":
            random.Random(self.seed).shuffle(ids)
        return ids

    # -- ground-truth execution ---------------------------------------------

    def run(
        self,
        update_process: Optional[UpdateProcess] = None,
        rng: Optional[np.random.Generator] = None,
        keep_per_tuple: bool = True,
    ) -> ExtractionResult:
        """Extract every tuple through the guard, paying every delay.

        If ``update_process`` is given, staleness is evaluated two ways
        and the report reflects both sources: updates the guard actually
        observed (``guard.last_update_times``) plus Bernoulli draws from
        the process for the exposure window of each tuple — the
        statistically exact treatment of background updates that were
        not individually materialised.
        """
        clock = self.guard.clock
        snapshot = Snapshot(started_at=clock.now())
        total_delay = 0.0
        queries = 0
        per_tuple: List[float] = []
        heap = self.guard.database.catalog.table(self.table)
        id_position = heap.schema.position("id")

        for item in self._target_ids():
            result = self.guard.execute(
                select_sql(self.table, item),
                identity=self.identity,
                record=self.record,
            )
            queries += 1
            total_delay += result.delay
            if keep_per_tuple:
                per_tuple.append(result.delay)
            for row in result.result.rows:
                snapshot.add(row[id_position], row, clock.now())
        snapshot.completed_at = clock.now()

        staleness = self._evaluate_staleness(snapshot, update_process, rng)
        return ExtractionResult(
            total_delay=total_delay,
            queries=queries,
            tuples=len(snapshot),
            snapshot=snapshot,
            staleness=staleness,
            per_tuple_delays=per_tuple,
        )

    # -- static estimation ------------------------------------------------------

    def estimate(
        self,
        update_process: Optional[UpdateProcess] = None,
        rng: Optional[np.random.Generator] = None,
        keep_per_tuple: bool = False,
    ) -> ExtractionResult:
        """Compute extraction delay from current counts, without queries.

        The virtual retrieval times in the returned snapshot assume the
        extraction starts now and each tuple is obtained after its
        delay, so staleness evaluation is identical to :meth:`run` with
        ``record=False``.
        """
        clock = self.guard.clock
        start = clock.now()
        snapshot = Snapshot(started_at=start)
        elapsed = 0.0
        per_tuple: List[float] = []
        heap = self.guard.database.catalog.table(self.table)
        key_prefix = heap.name.lower()
        id_position = heap.schema.position("id")
        id_to_rowid = {
            row[id_position]: rowid for rowid, row in heap.scan()
        }
        queries = 0
        for item in self._target_ids():
            rowid = id_to_rowid[item]
            delay = self.guard.policy.delay_for((key_prefix, rowid))
            elapsed += delay
            queries += 1
            if keep_per_tuple:
                per_tuple.append(delay)
            snapshot.add(item, None, start + elapsed)
        snapshot.completed_at = start + elapsed

        staleness = self._evaluate_staleness(snapshot, update_process, rng)
        return ExtractionResult(
            total_delay=elapsed,
            queries=queries,
            tuples=len(snapshot),
            snapshot=snapshot,
            staleness=staleness,
            per_tuple_delays=per_tuple,
        )

    # -- staleness -----------------------------------------------------------------

    def _evaluate_staleness(
        self,
        snapshot: Snapshot,
        update_process: Optional[UpdateProcess],
        rng: Optional[np.random.Generator],
    ) -> Optional[StalenessReport]:
        observed = stale_fraction(snapshot, self.guard.last_update_times_for(
            self.table
        ))
        if update_process is None:
            if not self.guard.last_update_times:
                return None
            return observed
        # Bernoulli staleness for the un-materialised background process,
        # OR-ed with updates the guard actually saw.
        windows = np.zeros(update_process.population, dtype=np.float64)
        for item, extracted in snapshot.tuples.items():
            if 1 <= item <= update_process.population:
                windows[item - 1] = max(
                    0.0, snapshot.completed_at - extracted.extracted_at
                )
        flags = update_process.sample_stale_flags(windows, rng)
        observed_keys = {
            key
            for key, extracted in snapshot.tuples.items()
            if (updated := self.guard.last_update_times_for(self.table).get(key))
            is not None
            and extracted.extracted_at < updated <= snapshot.completed_at
        }
        stale = 0
        for item in snapshot.tuples:
            sampled = (
                1 <= item <= update_process.population and flags[item - 1]
            )
            if sampled or item in observed_keys:
                stale += 1
        return StalenessReport(
            total=len(snapshot),
            stale=stale,
            evaluated_at=snapshot.completed_at,
        )
