"""Parallel (Sybil) extraction and its cost model (§2.4).

An adversary who controls ``k`` identities partitions the key space and
queries the shards concurrently. Because the guard cannot attribute the
shards to one principal, each shard pays only its own delays; the attack
completes in (roughly) the *maximum* shard delay instead of the sum —
a k-fold speed-up — unless the §2.4 defenses make identities expensive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.accounts import AccountManager
from ..core.errors import AccessDenied, ConfigError
from ..core.guard import DelayGuard


@dataclass
class ParallelAttackResult:
    """Outcome of a simulated k-identity extraction.

    Attributes:
        identities: number of identities the adversary deployed.
        registration_wait: seconds spent acquiring the identities
            through the registration gate (0 without a gate).
        fees_paid: total registration fees.
        shard_delays: per-identity total query delay.
        wall_time: registration wait plus the slowest shard — the
            adversary's end-to-end time.
        total_work: sum of all shard delays (what a single identity
            would have paid).
    """

    identities: int
    registration_wait: float
    fees_paid: float
    shard_delays: List[float] = field(default_factory=list)

    @property
    def wall_time(self) -> float:
        """End-to-end attack time."""
        return self.registration_wait + max(self.shard_delays, default=0.0)

    @property
    def total_work(self) -> float:
        """Aggregate delay paid across identities."""
        return sum(self.shard_delays)

    @property
    def speedup(self) -> float:
        """total_work / wall_time — the benefit parallelism bought."""
        if self.wall_time == 0:
            return 1.0
        return self.total_work / self.wall_time


class ParallelAdversary:
    """Simulates a k-identity extraction against a guarded table.

    Shards are interleaved round-robin over the key space so each shard
    sees a representative mix of popular and unpopular tuples. Shard
    delays are computed from the guard's current counts (the §4.1
    estimation method); registration costs come from the guard's
    :class:`~repro.core.accounts.AccountManager` when present.
    """

    def __init__(
        self,
        guard: DelayGuard,
        table: str,
        identities: int,
        subnet: str = "203.0.113.0/24",
    ):
        if identities < 1:
            raise ConfigError(f"identities must be >= 1, got {identities}")
        self.guard = guard
        self.table = table
        self.identities = identities
        self.subnet = subnet

    def simulate(self) -> ParallelAttackResult:
        """Compute the attack's cost under the current guard state."""
        registration_wait = 0.0
        fees = 0.0
        accounts: Optional[AccountManager] = self.guard.accounts
        if accounts is not None:
            registration_wait = accounts.time_to_register(self.identities)
            fees = accounts.cost_to_register(self.identities)

        heap = self.guard.database.catalog.table(self.table)
        key_prefix = heap.name.lower()
        shard_delays = [0.0] * self.identities
        for position, rowid in enumerate(sorted(heap.rowids())):
            delay = self.guard.policy.delay_for((key_prefix, rowid))
            shard_delays[position % self.identities] += delay
        return ParallelAttackResult(
            identities=self.identities,
            registration_wait=registration_wait,
            fees_paid=fees,
            shard_delays=shard_delays,
        )

    def register_identities(self, prefix: str = "sybil") -> List[str]:
        """Actually push identities through the registration gate.

        Sleeps on the guard's clock whenever the gate refuses, so the
        clock advances by the §2.4 lower bound. Returns the identity
        names. Requires the guard to have an account manager.
        """
        accounts = self.guard.accounts
        if accounts is None:
            raise ConfigError("guard has no account manager to register with")
        names: List[str] = []
        for index in range(self.identities):
            name = f"{prefix}-{index}"
            while True:
                try:
                    accounts.register(name, subnet=self.subnet)
                    break
                except AccessDenied as denied:
                    self.guard.clock.sleep(max(denied.retry_after, 1e-9))
            names.append(name)
        return names
