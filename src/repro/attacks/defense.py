"""Defense-side cost analysis for parallel attacks (§2.4).

A k-identity adversary facing total (single-identity) extraction delay
``D`` and a registration gate of one account per ``t`` seconds finishes
in roughly ``k·t + D/k`` — identities cost time, parallelism saves it.
These helpers find the adversary's best k, and size ``t`` (or the
registration fee) so that parallelism buys nothing.
"""

from __future__ import annotations

import math

from ..core.errors import ConfigError


def parallel_attack_time(
    extraction_delay: float, identities: int, registration_interval: float
) -> float:
    """End-to-end time for a k-identity attack: ``k·t + D/k``."""
    if identities < 1:
        raise ConfigError(f"identities must be >= 1, got {identities}")
    if extraction_delay < 0 or registration_interval < 0:
        raise ConfigError("delay and interval must be non-negative")
    return identities * registration_interval + extraction_delay / identities


def optimal_parallelism(
    extraction_delay: float, registration_interval: float
) -> int:
    """The k minimising ``k·t + D/k``: ``k* = sqrt(D/t)`` (at least 1)."""
    if extraction_delay < 0:
        raise ConfigError("extraction_delay must be non-negative")
    if registration_interval <= 0:
        # Free identities: unbounded parallelism; report a sentinel of
        # one identity per tuple being the practical maximum.
        raise ConfigError(
            "optimal_parallelism is undefined without a registration gate"
        )
    k = math.sqrt(extraction_delay / registration_interval)
    if k <= 1:
        return 1
    floor_k, ceil_k = int(math.floor(k)), int(math.ceil(k))
    best = min(
        (floor_k, ceil_k),
        key=lambda candidate: parallel_attack_time(
            extraction_delay, candidate, registration_interval
        ),
    )
    return max(1, best)


def best_parallel_attack_time(
    extraction_delay: float, registration_interval: float
) -> float:
    """The attack time at the adversary's best k: about ``2·sqrt(D·t)``."""
    k = optimal_parallelism(extraction_delay, registration_interval)
    return parallel_attack_time(extraction_delay, k, registration_interval)


def registration_interval_for_target(
    extraction_delay: float, target_attack_time: float
) -> float:
    """Size the gate so even the best parallel attack takes the target.

    Solves ``2·sqrt(D·t) >= target`` for t: ``t = target² / (4·D)``.
    A target equal to D itself means parallelism gains nothing — the
    paper's criterion ("comparable to the delay imposed on an adversary
    with a single identity").
    """
    if extraction_delay <= 0:
        raise ConfigError("extraction_delay must be positive")
    if target_attack_time <= 0:
        raise ConfigError("target_attack_time must be positive")
    return (target_attack_time ** 2) / (4.0 * extraction_delay)


def fee_for_parity(data_value: float, identities: int) -> float:
    """Per-account fee making k-way registration cost the data's value.

    The paper's alternative gate: "charge a small fee for registration,
    computed so that a parallel adversary would have to spend as much in
    registration fees as to collect the data separately."
    """
    if data_value < 0:
        raise ConfigError("data_value must be non-negative")
    if identities < 1:
        raise ConfigError(f"identities must be >= 1, got {identities}")
    return data_value / identities
