"""Adversary models and defense analysis (§2.4).

Sequential extraction robots, parallel (Sybil) adversaries, storefront
relays, and the cost models for sizing registration gates and fees
against them.
"""

from .adversary import ExtractionAdversary, ExtractionResult
from .defense import (
    best_parallel_attack_time,
    fee_for_parity,
    optimal_parallelism,
    parallel_attack_time,
    registration_interval_for_target,
)
from .parallel import ParallelAdversary, ParallelAttackResult
from .storefront import StorefrontAttack, StorefrontResult

__all__ = [
    "ExtractionAdversary",
    "ExtractionResult",
    "ParallelAdversary",
    "ParallelAttackResult",
    "StorefrontAttack",
    "StorefrontResult",
    "best_parallel_attack_time",
    "fee_for_parity",
    "optimal_parallelism",
    "parallel_attack_time",
    "registration_interval_for_target",
]
