"""Storefront attacks (§2.4): reselling the provider's data live.

A storefront adversary does not crawl; it registers an ordinary account
and *relays* its own customers' queries to the source provider. Its
query mix therefore looks exactly like a legitimate workload — delays
barely hurt it. What does hurt it is the per-identity query quota (all
of its customers funnel through one account) and the economics: serving
a customer costs the storefront at least what the source charges.

This module simulates a storefront relaying a legitimate trace and
reports how far it gets before quotas throttle it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..core.errors import AccessDenied, ConfigError
from ..core.guard import DelayGuard
from ..workloads.generators import select_sql
from ..workloads.traces import Trace


@dataclass
class StorefrontResult:
    """Outcome of a storefront relay session.

    Attributes:
        relayed: customer queries successfully relayed.
        denied: queries refused by the provider's limits.
        coverage: fraction of the population the storefront has cached.
        total_delay: delay the storefront's customers absorbed.
        wait_events: times the storefront had to back off (seconds).
    """

    relayed: int = 0
    denied: int = 0
    coverage: float = 0.0
    total_delay: float = 0.0
    wait_events: List[float] = field(default_factory=list)


class StorefrontAttack:
    """Relays a legitimate query trace through a single identity.

    Args:
        guard: the defended provider.
        table: relation being resold.
        identity: the storefront's registered account.
        cache: if True, repeated customer queries for an item the
            storefront already fetched are served from its cache and
            not relayed (the "cached storefront" variant) — raising
            coverage per relayed query but still bounded by quotas.
        give_up_after: stop after this many consecutive denials
            (storefront customers will not wait a day).
    """

    def __init__(
        self,
        guard: DelayGuard,
        table: str,
        identity: str,
        cache: bool = False,
        give_up_after: int = 3,
    ):
        if give_up_after < 1:
            raise ConfigError(f"give_up_after must be >= 1, got {give_up_after}")
        self.guard = guard
        self.table = table
        self.identity = identity
        self.cache = cache
        self.give_up_after = give_up_after

    def relay(self, customer_trace: Trace) -> StorefrontResult:
        """Relay a customer trace until it ends or quotas end it."""
        result = StorefrontResult()
        cached: Set[int] = set()
        consecutive_denials = 0
        for event in customer_trace:
            if event.kind != "query":
                continue
            if self.cache and event.item in cached:
                continue
            try:
                guarded = self.guard.execute(
                    select_sql(self.table, event.item), identity=self.identity
                )
            except AccessDenied as denied:
                result.denied += 1
                result.wait_events.append(denied.retry_after)
                consecutive_denials += 1
                if consecutive_denials >= self.give_up_after:
                    break
                continue
            consecutive_denials = 0
            result.relayed += 1
            result.total_delay += guarded.delay
            cached.add(event.item)
        result.coverage = len(cached) / customer_trace.population
        return result
