"""A TCP front door for the data-provider service.

:class:`DelayServer` exposes a :class:`~repro.service.DataProviderService`
over a JSON-lines protocol — one JSON object per line in each direction
— and :class:`DelayClient` is its Python client. This is the deployment
shape the paper assumes: clients cannot reach the database except
through the guarded front door, and delays are served while the
connection waits.

Protocol requests::

    {"op": "register", "identity": "alice", "subnet": "10.0.0.0/8"}
    {"op": "query", "sql": "SELECT ...", "identity": "alice"}
    {"op": "report"}
    {"op": "ping"}

Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": "...", "reason": "...", "retry_after": 1.5}``.

The service is guarded by a lock (one statement at a time); with a
:class:`~repro.core.clock.RealClock` the lock is *not* held while the
delay is served, so slow (penalised) queries do not stall other
clients.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Dict, Optional, Tuple

from .core.errors import AccessDenied, ConfigError, DelayDefenseError
from .engine.errors import EngineError
from .service import DataProviderService


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "DelayServer" = self.server.delay_server  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            response = server.handle_request(line)
            self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
            self.wfile.flush()
            if response.get("op") == "bye":
                break


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class DelayServer:
    """Serves a :class:`DataProviderService` over TCP.

    Args:
        service: the guarded provider to expose.
        host/port: bind address; port 0 picks a free port.
    """

    def __init__(
        self,
        service: DataProviderService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self._lock = threading.Lock()
        self._tcp = _TcpServer((host, port), _Handler)
        self._tcp.delay_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._tcp.server_address  # type: ignore[return-value]

    def start(self) -> None:
        """Serve in a background thread until :meth:`stop`."""
        if self._thread is not None:
            raise ConfigError("server already started")
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "DelayServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request dispatch -----------------------------------------------------

    def handle_request(self, line: str) -> Dict:
        """Process one JSON request line into a response dict."""
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            return {"ok": False, "error": f"bad json: {error}"}
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "request must be {'op': ...}"}
        op = request["op"]
        try:
            if op == "ping":
                return {"ok": True, "op": "pong"}
            if op == "bye":
                return {"ok": True, "op": "bye"}
            if op == "register":
                return self._handle_register(request)
            if op == "query":
                return self._handle_query(request)
            if op == "report":
                return self._handle_report()
            return {"ok": False, "error": f"unknown op {op!r}"}
        except AccessDenied as denied:
            return {
                "ok": False,
                "error": str(denied),
                "reason": denied.reason,
                "retry_after": denied.retry_after,
            }
        except (EngineError, DelayDefenseError) as error:
            return {"ok": False, "error": str(error)}

    def _handle_register(self, request: Dict) -> Dict:
        identity = request.get("identity")
        if not identity:
            return {"ok": False, "error": "register needs an identity"}
        with self._lock:
            account = self.service.register(
                identity, subnet=request.get("subnet", "0.0.0.0/0")
            )
        return {
            "ok": True,
            "identity": account.identity,
            "registered_at": account.registered_at,
        }

    def _handle_query(self, request: Dict) -> Dict:
        sql = request.get("sql")
        if not sql:
            return {"ok": False, "error": "query needs sql"}
        with self._lock:
            # Compute + record under the lock, but do NOT serve the
            # sleep while holding it: other clients must progress.
            result = self.service.guard.execute(
                sql, identity=request.get("identity"), sleep=False
            )
        if result.delay > 0:
            self.service.clock.sleep(result.delay)
        return {
            "ok": True,
            "columns": result.result.columns,
            "rows": [list(row) for row in result.result.rows],
            "delay": result.delay,
            "rowcount": result.result.rowcount,
        }

    def _handle_report(self) -> Dict:
        with self._lock:
            report = self.service.report()
        return {
            "ok": True,
            "users": report.users,
            "queries": report.queries,
            "denied": report.denied,
            "median_user_delay": report.median_user_delay,
            "extraction_cost": report.extraction_cost,
            "max_extraction_cost": report.max_extraction_cost,
        }


class ServerError(DelayDefenseError):
    """Raised by :class:`DelayClient` when the server reports an error."""

    def __init__(self, payload: Dict):
        super().__init__(payload.get("error", "server error"))
        self.payload = payload
        self.reason = payload.get("reason")
        self.retry_after = payload.get("retry_after", 0.0)


class DelayClient:
    """JSON-lines client for :class:`DelayServer`.

    >>> # with DelayServer(service) as server:
    >>> #     client = DelayClient(*server.address)
    >>> #     client.query("SELECT * FROM t WHERE id = 1")
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._socket = socket.create_connection((host, port), timeout)
        self._file = self._socket.makefile("rwb")

    def _call(self, request: Dict) -> Dict:
        self._file.write((json.dumps(request) + "\n").encode("utf-8"))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServerError({"error": "connection closed by server"})
        response = json.loads(line.decode("utf-8"))
        if not response.get("ok"):
            raise ServerError(response)
        return response

    def ping(self) -> bool:
        """Round-trip health check."""
        return self._call({"op": "ping"})["op"] == "pong"

    def register(self, identity: str, subnet: str = "0.0.0.0/0") -> Dict:
        """Register an identity with the provider."""
        return self._call(
            {"op": "register", "identity": identity, "subnet": subnet}
        )

    def query(self, sql: str, identity: Optional[str] = None) -> Dict:
        """Run one statement; returns columns/rows/delay."""
        request: Dict = {"op": "query", "sql": sql}
        if identity is not None:
            request["identity"] = identity
        return self._call(request)

    def report(self) -> Dict:
        """Fetch the operator report."""
        return self._call({"op": "report"})

    def close(self) -> None:
        """Say goodbye and close the connection."""
        try:
            self._call({"op": "bye"})
        except (ServerError, OSError):
            pass
        self._file.close()
        self._socket.close()

    def __enter__(self) -> "DelayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
