"""A TCP front door for the data-provider service.

:class:`DelayServer` exposes a :class:`~repro.service.DataProviderService`
over a JSON-lines protocol — one JSON object per line in each direction
— and :class:`DelayClient` is its Python client. This is the deployment
shape the paper assumes: clients cannot reach the database except
through the guarded front door, and delays are served while the
connection waits.

Protocol requests::

    {"op": "register", "identity": "alice", "subnet": "10.0.0.0/8"}
    {"op": "query", "sql": "SELECT ...", "identity": "alice"}
    {"op": "report"}
    {"op": "metrics", "format": "json" | "prometheus"}
    {"op": "trace", "limit": 20}
    {"op": "checkpoint"}
    {"op": "ping"}

Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": "...", "reason": "...", "retry_after": 1.5}``.

The ``metrics`` and ``trace`` ops expose the service's shared
:class:`~repro.obs.Observability` bundle: one scrape returns guard
counters/histograms and server counters together, as JSON or as
Prometheus text exposition. Scrapes read the registry directly and
never block behind query traffic, so monitoring stays responsive while
a penalised query is being served.

Concurrency model
-----------------

Each connection gets its own handler thread, and there is **no global
statement lock**: queries flow straight into the guard's staged
pipeline (:mod:`repro.core.pipeline`), whose stages synchronise on the
component each touches. The engine itself arbitrates data access with
a writer-preferring read/write lock
(:class:`~repro.engine.rwlock.ReadWriteLock`): SELECT/EXPLAIN run
concurrently under the shared read side, while DML/DDL/transaction
control take the exclusive write side. Trackers, the account manager,
and the stats/metrics objects carry their own internal locks, so the
counts the delay formula (eq. 1) reads are never mid-update — a
multi-tuple query is priced against one consistent tracker snapshot.

The *sleep* that serves a delay happens on the connection's own
handler thread (the guard is called with ``sleep=False``): with a
:class:`~repro.core.clock.RealClock` each connection blocks only
itself, and with a :class:`~repro.core.clock.VirtualClock` the
(thread-safe) clock advances atomically. A penalised query therefore
never stalls other clients — only its own connection waits.

The server's remaining lock covers registration only, keeping the
registration throttle's gate ordering deterministic; statements never
pass through it.

Per-connection robustness: reads are bounded by ``read_timeout`` and
``max_request_bytes``; a handler crash is recorded in
:attr:`DelayServer.handler_errors` and answered with an error response
instead of silently killing the thread; and :meth:`DelayServer.stop`
drains in-flight connections before closing.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from .core.errors import AccessDenied, ConfigError, DelayDefenseError
from .engine.errors import EngineError
from .service import DataProviderService

#: Ops the server dispatches; anything else counts as "unknown" in the
#: per-op request metric so adversarial op names cannot mint series.
KNOWN_OPS = (
    "ping",
    "bye",
    "register",
    "query",
    "report",
    "metrics",
    "trace",
    "checkpoint",
)


class _Handler(socketserver.StreamRequestHandler):
    def setup(self) -> None:
        server: "DelayServer" = self.server.delay_server  # type: ignore[attr-defined]
        if server.read_timeout is not None:
            self.request.settimeout(server.read_timeout)
        super().setup()

    def handle(self) -> None:
        server: "DelayServer" = self.server.delay_server  # type: ignore[attr-defined]
        server._connection_opened(self.request)
        try:
            self._serve(server)
        finally:
            server._connection_closed(self.request)

    def _serve(self, server: "DelayServer") -> None:
        limit = server.max_request_bytes
        while not server._draining.is_set():
            try:
                raw = self.rfile.readline(limit + 1)
            except (socket.timeout, OSError):
                # Idle past the read timeout, or the peer vanished:
                # drop the connection without disturbing anyone else.
                return
            if not raw:
                return  # client closed its end
            if len(raw) > limit:
                self._respond(
                    {
                        "ok": False,
                        "error": f"request exceeds {limit} bytes",
                        "reason": "request_too_large",
                    }
                )
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                response = server.handle_request(line)
            except Exception as error:  # noqa: BLE001 — isolate the connection
                # handle_request already maps expected errors; anything
                # that escapes is a server bug. Record it (tests assert
                # this list is empty) and keep the thread alive.
                server._record_handler_error(error)
                response = {
                    "ok": False,
                    "error": f"internal server error: {error}",
                    "reason": "internal_error",
                }
            try:
                self._respond(response)
            except (socket.timeout, OSError):
                return
            if response.get("op") == "bye":
                return

    def _respond(self, response: Dict) -> None:
        self.wfile.write((json.dumps(response) + "\n").encode("utf-8"))
        self.wfile.flush()


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class DelayServer:
    """Serves a :class:`DataProviderService` over TCP.

    Args:
        service: the guarded provider to expose.
        host/port: bind address; port 0 picks a free port.
        read_timeout: seconds a connection may sit idle between requests
            before it is dropped (None disables the timeout).
        max_request_bytes: longest accepted request line; longer lines
            are answered with ``request_too_large`` and the connection
            is closed.
        drain_timeout: how long :meth:`stop` waits for in-flight
            connections to finish before closing anyway.
        max_handler_errors: how many recent handler exceptions to retain
            in :attr:`handler_errors` (older ones fall off; the exact
            lifetime count lives in the ``server_handler_errors_total``
            metric, so bounding the list loses no information).
    """

    def __init__(
        self,
        service: DataProviderService,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout: Optional[float] = 30.0,
        max_request_bytes: int = 64 * 1024,
        drain_timeout: float = 5.0,
        max_handler_errors: int = 64,
    ):
        if read_timeout is not None and read_timeout <= 0:
            raise ConfigError(
                f"read_timeout must be positive, got {read_timeout}"
            )
        if max_request_bytes < 1:
            raise ConfigError(
                f"max_request_bytes must be >= 1, got {max_request_bytes}"
            )
        if drain_timeout < 0:
            raise ConfigError(
                f"drain_timeout must be >= 0, got {drain_timeout}"
            )
        if max_handler_errors < 1:
            raise ConfigError(
                f"max_handler_errors must be >= 1, got {max_handler_errors}"
            )
        self.service = service
        self.read_timeout = read_timeout
        self.max_request_bytes = max_request_bytes
        self.drain_timeout = drain_timeout
        #: recent unexpected exceptions that escaped request handling,
        #: newest last, bounded so a long-running server cannot leak; a
        #: healthy server keeps this empty. The lifetime total is
        #: :attr:`handler_errors_total`.
        self.handler_errors: Deque[BaseException] = deque(
            maxlen=max_handler_errors
        )
        #: exact lifetime count of handler errors (survives ring wrap).
        self.handler_errors_total = 0
        self.obs = service.obs
        # Registration only. Queries are NOT serialised here: the
        # guard's pipeline and the engine's read/write lock provide all
        # statement-level synchronisation.
        self._lock = threading.Lock()
        self._draining = threading.Event()
        self._conn_cond = threading.Condition()
        self._connections: Dict[int, socket.socket] = {}
        if self.obs.enabled:
            self._register_metrics()
        self._tcp = _TcpServer((host, port), _Handler)
        self._tcp.delay_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None
        self._stopped = False

    def _register_metrics(self) -> None:
        """Create the server's metric handles in the shared registry."""
        registry = self.obs.registry
        self._m_requests = registry.counter(
            "server_requests_total", "Requests received, by op", ("op",)
        )
        self._m_denied = registry.counter(
            "server_denied_total",
            "Requests answered with a denial, by reason",
            ("reason",),
        )
        self._m_handler_errors = registry.counter(
            "server_handler_errors_total",
            "Unexpected exceptions that escaped request handling",
        )
        self._m_connections = registry.counter(
            "server_connections_total", "Connections accepted"
        )
        registry.gauge(
            "server_in_flight_connections",
            "Connections currently being served",
        ).set_function(lambda: self.active_connections)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._tcp.server_address  # type: ignore[return-value]

    @property
    def active_connections(self) -> int:
        """Connections currently being served."""
        with self._conn_cond:
            return len(self._connections)

    def start(self) -> None:
        """Serve in a background thread until :meth:`stop`.

        A stopped server may be started again: :meth:`stop` closed the
        listening socket, so a fresh one is bound to the same address
        (silently serving on the closed socket would accept nothing and
        every client would see connection refused).
        """
        if self._thread is not None:
            raise ConfigError("server already started")
        if self._stopped:
            address = self._tcp.server_address
            self._tcp = _TcpServer(address, _Handler)
            self._tcp.delay_server = self  # type: ignore[attr-defined]
            self._stopped = False
        self._draining.clear()
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop accepting, drain in-flight connections, then close.

        Connections still active after ``drain_timeout`` seconds are
        forcibly shut down so their handler threads unblock and exit.
        """
        self._tcp.shutdown()
        self._draining.set()
        deadline = time.monotonic() + self.drain_timeout
        with self._conn_cond:
            while self._connections:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._conn_cond.wait(remaining)
            lingering = list(self._connections.values())
        for connection in lingering:
            # Unblocks a handler sitting in readline; its thread then
            # deregisters itself on the way out.
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        with self._conn_cond:
            deadline = time.monotonic() + 1.0
            while self._connections:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._conn_cond.wait(remaining)
        self._tcp.server_close()
        self._stopped = True
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "DelayServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection bookkeeping ------------------------------------------------

    def _connection_opened(self, connection: socket.socket) -> None:
        with self._conn_cond:
            self._connections[id(connection)] = connection
        if self.obs.enabled:
            self._m_connections.inc()

    def _connection_closed(self, connection: socket.socket) -> None:
        with self._conn_cond:
            self._connections.pop(id(connection), None)
            self._conn_cond.notify_all()

    def _record_handler_error(self, error: BaseException) -> None:
        with self._conn_cond:
            self.handler_errors.append(error)
            self.handler_errors_total += 1
        if self.obs.enabled:
            self._m_handler_errors.inc()

    # -- request dispatch -----------------------------------------------------

    def handle_request(self, line: str) -> Dict:
        """Process one JSON request line into a response dict."""
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            return {"ok": False, "error": f"bad json: {error}"}
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "request must be {'op': ...}"}
        op = request["op"]
        if self.obs.enabled:
            self._m_requests.inc(op=op if op in KNOWN_OPS else "unknown")
        try:
            if op == "ping":
                return {"ok": True, "op": "pong"}
            if op == "bye":
                return {"ok": True, "op": "bye"}
            if op == "register":
                return self._handle_register(request)
            if op == "query":
                return self._handle_query(request)
            if op == "report":
                return self._handle_report()
            if op == "metrics":
                return self._handle_metrics(request)
            if op == "trace":
                return self._handle_trace(request)
            if op == "checkpoint":
                return self._handle_checkpoint()
            return {"ok": False, "error": f"unknown op {op!r}"}
        except AccessDenied as denied:
            if self.obs.enabled:
                self._m_denied.inc(reason=denied.reason or "denied")
            return {
                "ok": False,
                "error": str(denied),
                "reason": denied.reason,
                "retry_after": denied.retry_after,
            }
        except (EngineError, DelayDefenseError) as error:
            return {"ok": False, "error": str(error)}

    def _handle_register(self, request: Dict) -> Dict:
        identity = request.get("identity")
        if not identity:
            return {"ok": False, "error": "register needs an identity"}
        with self._lock:
            account = self.service.register(
                identity, subnet=request.get("subnet", "0.0.0.0/0")
            )
        return {
            "ok": True,
            "identity": account.identity,
            "registered_at": account.registered_at,
        }

    def _handle_query(self, request: Dict) -> Dict:
        sql = request.get("sql")
        if not sql:
            return {"ok": False, "error": "query needs sql"}
        # No statement gate: the pipeline stages and the engine's
        # read/write lock synchronise everything, so concurrent
        # handlers overlap except inside conflicting engine statements.
        result = self.service.guard.execute(
            sql, identity=request.get("identity"), sleep=False
        )
        if result.delay > 0:
            # The shared clock must be thread-safe: RealClock blocks
            # only this connection, VirtualClock advances its timeline
            # atomically.
            sleep_start = time.perf_counter()
            self.service.clock.sleep(result.delay)
            if result.trace is not None:
                # The guard finished its trace before we served the
                # sleep; append the stage it couldn't see so the
                # recorded lifecycle covers the client's full wait.
                result.trace.extend(
                    "sleep", sleep_start, time.perf_counter()
                )
        return {
            "ok": True,
            "columns": result.result.columns,
            "rows": [list(row) for row in result.result.rows],
            "delay": result.delay,
            "rowcount": result.result.rowcount,
        }

    def _handle_report(self) -> Dict:
        # Lock-free: report() reads the engine under its read lock and
        # the trackers/stats under their own locks.
        report = self.service.report()
        return {
            "ok": True,
            "users": report.users,
            "queries": report.queries,
            "denied": report.denied,
            "median_user_delay": report.median_user_delay,
            "extraction_cost": report.extraction_cost,
            "max_extraction_cost": report.max_extraction_cost,
        }

    def _handle_metrics(self, request: Dict) -> Dict:
        # Registry reads take only per-metric locks: a scrape during a
        # long penalised query returns immediately.
        fmt = request.get("format", "json")
        if fmt == "json":
            return {"ok": True, "metrics": self.obs.registry.to_json()}
        if fmt == "prometheus":
            return {
                "ok": True,
                "content_type": "text/plain; version=0.0.4",
                "text": self.obs.registry.render_prometheus(),
            }
        return {
            "ok": False,
            "error": f"unknown metrics format {fmt!r}; "
            "use 'json' or 'prometheus'",
        }

    def _handle_checkpoint(self) -> Dict:
        """Snapshot service state and truncate the journal.

        The target is always the service's configured ``snapshot_path``
        — a client-supplied path would let any remote peer write files
        wherever the server process can. A service without a configured
        path answers with a :class:`~repro.core.errors.ConfigError`
        message.
        """
        seq = self.service.checkpoint()
        return {
            "ok": True,
            "journal_seq": seq,
            "checkpoints_completed": self.service.checkpoints_completed,
        }

    def _handle_trace(self, request: Dict) -> Dict:
        limit = request.get("limit", 20)
        if not isinstance(limit, int) or limit < 1:
            return {"ok": False, "error": f"limit must be >= 1, got {limit}"}
        return {
            "ok": True,
            "traces": self.obs.tracer.to_json(limit),
            "finished_total": self.obs.tracer.finished_total,
        }


class ServerError(DelayDefenseError):
    """Raised by :class:`DelayClient` when the server reports an error.

    Attributes:
        reason: the machine-readable denial reason, when the server sent
            one (e.g. ``query_quota``, ``user_rate``).
        retry_after: seconds after which the request may succeed, when
            the server knows (0.0 otherwise).
    """

    def __init__(self, payload: Dict):
        super().__init__(payload.get("error", "server error"))
        self.payload = payload
        self.reason = payload.get("reason")
        self.retry_after = payload.get("retry_after", 0.0)


class ConnectionClosed(ServerError):
    """The transport died: no response arrived for the request.

    Distinct from an application-level denial (plain
    :class:`ServerError`): the caller cannot know whether the request
    was processed, so retrying may repeat side effects.
    """

    def __init__(self, detail: str = "connection closed by server"):
        super().__init__({"error": detail})


class DelayClient:
    """JSON-lines client for :class:`DelayServer`.

    >>> # with DelayServer(service) as server:
    >>> #     client = DelayClient(*server.address)
    >>> #     client.query("SELECT * FROM t WHERE id = 1")
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._socket = socket.create_connection((host, port), timeout)
        self._file = self._socket.makefile("rwb")
        #: retry_after from the most recent denial (0.0 when none).
        self.last_retry_after = 0.0

    def _call(self, request: Dict) -> Dict:
        try:
            self._file.write((json.dumps(request) + "\n").encode("utf-8"))
            self._file.flush()
            line = self._file.readline()
        except OSError as error:
            raise ConnectionClosed(f"transport failure: {error}") from error
        if not line:
            raise ConnectionClosed()
        try:
            response = json.loads(line.decode("utf-8", errors="replace"))
        except json.JSONDecodeError as error:
            # A half-written line (server died mid-response) is a
            # transport failure, not an application denial: the caller
            # cannot know whether the request took effect.
            raise ConnectionClosed(
                f"garbled server response: {error}"
            ) from error
        if not isinstance(response, dict):
            raise ConnectionClosed(
                f"garbled server response: expected an object, "
                f"got {type(response).__name__}"
            )
        if not response.get("ok"):
            error = ServerError(response)
            self.last_retry_after = error.retry_after
            raise error
        self.last_retry_after = 0.0
        return response

    def ping(self) -> bool:
        """Round-trip health check."""
        return self._call({"op": "ping"})["op"] == "pong"

    def register(self, identity: str, subnet: str = "0.0.0.0/0") -> Dict:
        """Register an identity with the provider."""
        return self._call(
            {"op": "register", "identity": identity, "subnet": subnet}
        )

    def query(
        self,
        sql: str,
        identity: Optional[str] = None,
        retries: int = 0,
        max_retry_wait: float = 5.0,
    ) -> Dict:
        """Run one statement; returns columns/rows/delay.

        Args:
            retries: how many times to retry after a denial that carries
                a ``retry_after`` hint (waiting it out in real time).
                Transport failures (:class:`ConnectionClosed`) are never
                retried — the request may already have been applied.
            max_retry_wait: give up instead of honouring a hint longer
                than this many seconds.
        """
        request: Dict = {"op": "query", "sql": sql}
        if identity is not None:
            request["identity"] = identity
        attempts_left = retries
        while True:
            try:
                return self._call(request)
            except ConnectionClosed:
                raise
            except ServerError as denied:
                wait = denied.retry_after
                if (
                    attempts_left <= 0
                    or wait <= 0
                    or wait > max_retry_wait
                ):
                    raise
                attempts_left -= 1
                time.sleep(wait)

    def report(self) -> Dict:
        """Fetch the operator report."""
        return self._call({"op": "report"})

    def checkpoint(self) -> Dict:
        """Ask the server to snapshot its state and truncate its journal."""
        return self._call({"op": "checkpoint"})

    def metrics(self, format: str = "json") -> Dict:
        """Scrape the server's metrics registry.

        Args:
            format: ``"json"`` (structured snapshots under ``metrics``)
                or ``"prometheus"`` (text exposition under ``text``).
        """
        return self._call({"op": "metrics", "format": format})

    def traces(self, limit: int = 20) -> Dict:
        """Fetch the most recent query-lifecycle traces, newest first."""
        return self._call({"op": "trace", "limit": limit})

    def close(self) -> None:
        """Say goodbye and close the connection."""
        try:
            self._call({"op": "bye"})
        except (ServerError, OSError):
            pass
        self._file.close()
        self._socket.close()

    def __enter__(self) -> "DelayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
