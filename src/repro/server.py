"""A TCP front door for the data-provider service.

:class:`DelayServer` exposes a :class:`~repro.service.DataProviderService`
over a JSON-lines protocol — one JSON object per line in each direction
— and :class:`DelayClient` is its Python client. This is the deployment
shape the paper assumes: clients cannot reach the database except
through the guarded front door, and delays are served while the
connection waits.

Protocol requests::

    {"op": "register", "identity": "alice", "subnet": "10.0.0.0/8"}
    {"op": "query", "sql": "SELECT ...", "identity": "alice",
     "deadline_ms": 250, "priority": 7}
    {"op": "report"}
    {"op": "metrics", "format": "json" | "prometheus"}
    {"op": "trace", "limit": 20}
    {"op": "forensics", "limit": 10}
    {"op": "health"}
    {"op": "checkpoint"}
    {"op": "ping"}

Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": "...", "reason": "...", "retry_after": 1.5}``.

Overload resilience
-------------------

The delay defense only works while the front door stays up: the guard
prices adversaries into hours of waiting, so the cheapest attack is not
to pay — it is to exhaust the server with connections or park it in
delay sleeps. The server therefore treats *threads* as the scarce
resource and bounds every way a client could consume one:

* **Bounded admission.** A fixed pool of ``max_workers`` threads
  executes requests; parsed requests wait in a bounded priority queue
  (``max_queue``). A request arriving at a full queue is either traded
  against a strictly-lower-priority queued request or **shed** with a
  fast ``{"ok": false, "reason": "overloaded", "retry_after": ...}``
  answer — never accepted and stalled. ``max_connections`` bounds
  concurrently-open connections the same way: connection number
  ``max_connections + 1`` receives the overload answer immediately and
  is closed.
* **Event-driven I/O.** One selector thread owns every socket (accept,
  read, write, idle timeout); neither an idle connection nor a slow
  reader holds a thread. Process thread count is ``max_workers`` plus a
  small constant, independent of connection count.
* **Delay parking, not delay sleeping.** A priced delay is served by a
  timer heap (the *parking lot*), not by a worker blocked in ``sleep``:
  the worker finishes in microseconds and the response is released when
  the delay has elapsed. The lot holds at most ``max_parked`` entries;
  over capacity, the entry with the **largest priced delay is shed
  first** — heavily-delayed (adversary-shaped) traffic is sacrificed
  before cheap popular-tuple queries, preserving the paper's
  legitimate/adversary asymmetry under overload.
* **End-to-end deadlines.** Clients may attach ``deadline_ms``; the
  budget is checked before work starts, at every pipeline stage
  boundary, and against the priced delay itself — a mandated delay
  longer than the remaining budget is rejected up front with the full
  delay as ``retry_after`` instead of holding resources it cannot
  repay.

Everything is observable: queue depth, parked delays, shed counts by
reason, deadline aborts, and injected faults all land in the shared
metrics registry (``metrics`` op, JSON or Prometheus exposition).

Concurrency model
-----------------

There is **no global statement lock**: worker threads run the guard's
staged pipeline (:mod:`repro.core.pipeline`) directly, the engine
arbitrates data access with a writer-preferring read/write lock, and
trackers/stats carry their own internal locks. The server's one
remaining lock covers registration only. A penalised query never
blocks another client: its delay waits in the parking lot while the
workers serve everyone else.

Per-connection robustness: reads are bounded by ``read_timeout`` and
``max_request_bytes``; a handler crash is recorded in
:attr:`DelayServer.handler_errors` and answered with an error response
instead of silently killing a worker; and :meth:`DelayServer.stop`
drains in-flight requests (bounded by ``drain_timeout``) and cancels
parked delays, so shutdown is never held hostage by a penalised
query's multi-hour sleep.
"""

from __future__ import annotations

import heapq
import json
import random
import selectors
import socket
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from .core.errors import AccessDenied, ConfigError, DelayDefenseError
from .core.resilience import BackoffPolicy, BreakerOpen, CircuitBreaker
from .engine.errors import EngineError
from .obs import SloTracker, build_info
from .service import DataProviderService
from .testing.faults import fire, injector

#: Ops the server dispatches; anything else counts as "unknown" in the
#: per-op request metric so adversarial op names cannot mint series.
KNOWN_OPS = (
    "ping",
    "bye",
    "register",
    "query",
    "report",
    "metrics",
    "trace",
    "checkpoint",
    "forensics",
    "health",
)

#: Valid client priority range; higher is more important.
PRIORITY_MIN, PRIORITY_MAX = 0, 9
#: Priority assumed when the client sends none.
PRIORITY_DEFAULT = 5

#: Largest accepted deadline: one day in milliseconds.
DEADLINE_MS_MAX = 86_400_000.0


class _Request:
    """One parsed request travelling from the I/O loop to a worker."""

    __slots__ = (
        "conn",
        "payload",
        "op",
        "received_at",
        "deadline_at",
        "priority",
        "seq",
    )

    def __init__(
        self,
        conn: "_Connection",
        payload: Dict,
        seq: int,
        received_at: float,
        deadline_at: Optional[float],
        priority: int,
    ):
        self.conn = conn
        self.payload = payload
        self.op = payload.get("op")
        self.seq = seq
        self.received_at = received_at
        self.deadline_at = deadline_at
        self.priority = priority


class _Connection:
    """Per-socket state owned by the I/O loop thread.

    Only the I/O thread touches the buffers and flags; workers and the
    delay scheduler communicate through the loop's command queue.
    """

    __slots__ = (
        "sock",
        "inbuf",
        "outbuf",
        "busy",
        "close_after_write",
        "last_activity",
        "closed",
    )

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        #: a request from this connection is admitted/parked and has not
        #: been answered yet; further complete lines wait in ``inbuf``.
        self.busy = False
        self.close_after_write = False
        self.last_activity = time.monotonic()
        self.closed = False


class _AdmissionQueue:
    """Bounded priority queue between the I/O loop and the workers.

    Pop order is highest priority first, FIFO within a priority. When
    full, :meth:`offer` trades the lowest-priority (newest within that
    priority) queued entry for a strictly-higher-priority newcomer, or
    refuses the newcomer — the caller sheds whichever lost.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._cond = threading.Condition()
        self._heap: List[Tuple[int, int, _Request]] = []
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    def offer(
        self, request: _Request
    ) -> Tuple[bool, Optional[_Request]]:
        """Try to admit ``request``.

        Returns ``(admitted, victim)``: ``victim`` is a previously
        queued request evicted to make room (to be shed by the caller);
        ``admitted`` False means the newcomer itself must be shed.
        """
        key = (-request.priority, request.seq, request)
        with self._cond:
            if self._closed:
                return False, None
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, key)
                self._cond.notify()
                return True, None
            worst = max(self._heap)
            if -worst[0] < request.priority:
                index = self._heap.index(worst)
                self._heap[index] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                heapq.heappush(self._heap, key)
                self._cond.notify()
                return True, worst[2]
            return False, None

    def pop(self) -> Optional[_Request]:
        """Blocking pop; returns None once closed and drained."""
        with self._cond:
            while not self._heap and not self._closed:
                self._cond.wait(0.5)
            if not self._heap:
                return None
            return heapq.heappop(self._heap)[2]

    def drain(self) -> List[_Request]:
        """Remove and return everything still queued."""
        with self._cond:
            drained = [entry[2] for entry in self._heap]
            self._heap.clear()
            return drained

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class _Parked:
    """One response waiting out its priced delay in the parking lot."""

    __slots__ = ("due", "seq", "request", "response", "delay", "trace",
                 "sleep_start")

    def __init__(self, due, seq, request, response, delay, trace,
                 sleep_start):
        self.due = due
        self.seq = seq
        self.request = request
        self.response = response
        self.delay = delay
        self.trace = trace
        self.sleep_start = sleep_start


class _DelayScheduler:
    """Serves priced delays on a timer heap instead of worker sleeps.

    A single thread waits for the earliest due entry and releases its
    response through the I/O loop. Capacity is bounded: inserting past
    ``capacity`` evicts the entry with the *largest* priced delay
    (possibly the newcomer), which the server answers with an overload
    shed carrying the full delay as ``retry_after`` — the cheapest
    queries ride out overload, the most expensive are sacrificed first.
    """

    def __init__(self, server: "DelayServer", capacity: int):
        self._server = server
        self.capacity = capacity
        self._cond = threading.Condition()
        self._heap: List[Tuple[float, int, _Parked]] = []
        self._seq = 0
        self._running = False
        self._thread: Optional[threading.Thread] = None

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    def start(self) -> None:
        with self._cond:
            self._running = True
        self._thread = threading.Thread(
            target=self._run, name="repro-delay-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        with self._cond:
            self._running = False
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def park(
        self,
        request: _Request,
        response: Dict,
        delay: float,
        trace,
    ) -> Optional[Dict]:
        """Park ``response`` until ``delay`` has elapsed.

        Returns None when the response will be delivered later, or the
        shed response the worker should send right away when the
        newcomer itself lost the capacity fight (it carried the
        largest delay) or the scheduler is shutting down.
        """
        now = time.monotonic()
        evicted: List[_Parked] = []
        with self._cond:
            if not self._running:
                return self._server._shed_response(
                    "shutting_down", retry_after=delay
                )
            self._seq += 1
            entry = _Parked(
                due=now + delay,
                seq=self._seq,
                request=request,
                response=response,
                delay=delay,
                trace=trace,
                sleep_start=time.perf_counter(),
            )
            heapq.heappush(self._heap, (entry.due, entry.seq, entry))
            while len(self._heap) > self.capacity:
                index = max(
                    range(len(self._heap)),
                    key=lambda i: self._heap[i][2].delay,
                )
                evicted.append(self._heap[index][2])
                self._heap[index] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
            self._cond.notify()
        shed_self = None
        for victim in evicted:
            shed = self._server._shed_response(
                "overloaded",
                retry_after=victim.delay,
                detail="delay capacity exceeded; largest delay shed first",
            )
            self._server._note_shed("delay_parking")
            if victim is entry:
                shed_self = shed
            else:
                self._server._send_response(victim.request.conn, shed)
        return shed_self

    def cancel_all(self, reason: str) -> int:
        """Answer every parked entry with a denial; returns the count.

        Used by :meth:`DelayServer.stop` so shutdown is bounded by
        ``drain_timeout`` even when a penalised query still owes hours
        of delay — the caller gets ``retry_after`` equal to what it
        still owed, and no data.
        """
        now = time.monotonic()
        with self._cond:
            cancelled = [entry for _, _, entry in self._heap]
            self._heap.clear()
            self._cond.notify_all()
        for entry in cancelled:
            self._server._send_response(
                entry.request.conn,
                self._server._shed_response(
                    reason, retry_after=max(0.0, entry.due - now)
                ),
            )
        return len(cancelled)

    def _run(self) -> None:
        while True:
            with self._cond:
                if not self._running:
                    return
                if not self._heap:
                    self._cond.wait(0.5)
                    continue
                due = self._heap[0][0]
                now = time.monotonic()
                if due > now:
                    self._cond.wait(min(due - now, 0.5))
                    continue
                entry = heapq.heappop(self._heap)[2]
            self._deliver(entry)

    def _deliver(self, entry: _Parked) -> None:
        if entry.trace is not None:
            entry.trace.extend(
                "sleep", entry.sleep_start, time.perf_counter()
            )
        self._server._send_response(entry.request.conn, entry.response)


class _IOLoop(threading.Thread):
    """The selector thread: owns accept, read, write, and timeouts."""

    def __init__(self, server: "DelayServer", listener: socket.socket):
        super().__init__(name="repro-io-loop", daemon=True)
        self._server = server
        self._listener = listener
        self._selector = selectors.DefaultSelector()
        self._commands: Deque[Tuple] = deque()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._running = True
        self.connections: Dict[int, _Connection] = {}
        self._listener.setblocking(False)
        self._selector.register(listener, selectors.EVENT_READ, "accept")
        self._selector.register(
            self._wake_r, selectors.EVENT_READ, "wake"
        )

    # -- cross-thread API ----------------------------------------------------

    def submit(self, command: Tuple) -> None:
        """Queue a command for the loop thread and wake it."""
        self._commands.append(command)
        try:
            self._wake_w.send(b"x")
        except OSError:
            pass

    def shutdown(self) -> None:
        self._running = False
        self.submit(("noop",))

    def busy_count(self) -> int:
        """Connections with an unanswered request (approximate read)."""
        return sum(
            1 for conn in list(self.connections.values()) if conn.busy
        )

    # -- the loop ------------------------------------------------------------

    def run(self) -> None:
        try:
            while self._running:
                events = self._selector.select(timeout=0.2)
                self._drain_commands()
                for key, mask in events:
                    if key.data == "accept":
                        self._accept()
                    elif key.data == "wake":
                        self._drain_wake()
                    else:
                        conn: _Connection = key.data
                        if mask & selectors.EVENT_READ:
                            self._read(conn)
                        if mask & selectors.EVENT_WRITE and not conn.closed:
                            self._flush(conn)
                self._sweep_idle()
        finally:
            for conn in list(self.connections.values()):
                self._close(conn)
            try:
                self._selector.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._selector.close()
            self._wake_r.close()
            self._wake_w.close()

    def _drain_wake(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except OSError:
            pass

    def _drain_commands(self) -> None:
        while self._commands:
            command = self._commands.popleft()
            kind = command[0]
            if kind == "send":
                _, conn, data, close_after = command
                self._enqueue_send(conn, data, close_after)
            elif kind == "close":
                self._close(command[1])

    # -- accept --------------------------------------------------------------

    def _accept(self) -> None:
        server = self._server
        while True:
            try:
                sock, _ = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            try:
                fire("server.accept")
            except Exception:
                sock.close()
                continue
            if server._draining.is_set():
                sock.close()
                continue
            if len(self.connections) >= server.max_connections:
                # Fast shed: the kindest thing a saturated server can
                # do is answer *immediately* so the client backs off
                # instead of timing out.
                server._note_shed("connection_limit")
                try:
                    sock.setblocking(False)
                    sock.send(
                        (
                            json.dumps(
                                server._shed_response(
                                    "overloaded",
                                    retry_after=server.overload_retry_after,
                                    detail=(
                                        "connection limit "
                                        f"({server.max_connections}) reached"
                                    ),
                                )
                            )
                            + "\n"
                        ).encode("utf-8")
                    )
                except OSError:
                    pass
                sock.close()
                continue
            sock.setblocking(False)
            conn = _Connection(sock)
            self.connections[id(conn)] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            server._connection_opened()

    # -- read side -----------------------------------------------------------

    def _read(self, conn: _Connection) -> None:
        try:
            fire("server.read")
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except Exception:
            # OSError from the peer, or an injected read fault: either
            # way this connection failed — the loop must survive.
            self._close(conn)
            return
        if not data:
            self._close(conn)
            return
        conn.inbuf += data
        conn.last_activity = time.monotonic()
        self._pump(conn)

    def _pump(self, conn: _Connection) -> None:
        """Dispatch complete lines while the connection is idle."""
        server = self._server
        limit = server.max_request_bytes
        while not conn.busy and not conn.closed:
            newline = conn.inbuf.find(b"\n")
            if newline < 0:
                if len(conn.inbuf) > limit:
                    self._enqueue_send(
                        conn,
                        server._encode(
                            {
                                "ok": False,
                                "error": (
                                    f"request exceeds {limit} bytes"
                                ),
                                "reason": "request_too_large",
                            }
                        ),
                        close_after=True,
                    )
                return
            raw = bytes(conn.inbuf[:newline])
            del conn.inbuf[: newline + 1]
            if len(raw) > limit:
                self._enqueue_send(
                    conn,
                    server._encode(
                        {
                            "ok": False,
                            "error": f"request exceeds {limit} bytes",
                            "reason": "request_too_large",
                        }
                    ),
                    close_after=True,
                )
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            server._dispatch_line(conn, line)

    # -- write side ----------------------------------------------------------

    def _enqueue_send(
        self, conn: _Connection, data: bytes, close_after: bool = False
    ) -> None:
        if conn.closed:
            return
        conn.outbuf += data
        # Answering marks the request cycle complete; the next
        # pipelined line (if any) may dispatch.
        conn.busy = False
        if close_after:
            conn.close_after_write = True
        self._flush(conn)
        if not conn.closed and not conn.close_after_write:
            self._pump(conn)

    def _flush(self, conn: _Connection) -> None:
        try:
            fire("server.write")
            while conn.outbuf:
                sent = conn.sock.send(conn.outbuf)
                del conn.outbuf[:sent]
        except (BlockingIOError, InterruptedError):
            self._want_write(conn, True)
            return
        except Exception:
            # OSError from the peer, or an injected write fault: the
            # connection is unusable either way.
            self._close(conn)
            return
        self._want_write(conn, False)
        if conn.close_after_write:
            self._close(conn)

    def _want_write(self, conn: _Connection, wanted: bool) -> None:
        events = selectors.EVENT_READ | (
            selectors.EVENT_WRITE if wanted else 0
        )
        try:
            self._selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):
            pass

    # -- lifecycle -----------------------------------------------------------

    def _sweep_idle(self) -> None:
        timeout = self._server.read_timeout
        if timeout is None:
            return
        now = time.monotonic()
        for conn in list(self.connections.values()):
            if (
                not conn.busy
                and not conn.outbuf
                and now - conn.last_activity > timeout
            ):
                self._close(conn)

    def _close(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        self.connections.pop(id(conn), None)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass
        self._server._connection_closed()


class DelayServer:
    """Serves a :class:`DataProviderService` over TCP.

    Args:
        service: the guarded provider to expose.
        host/port: bind address; port 0 picks a free port.
        read_timeout: seconds a connection may sit idle between requests
            before it is dropped (None disables the timeout).
        max_request_bytes: longest accepted request line; longer lines
            are answered with ``request_too_large`` and the connection
            is closed.
        drain_timeout: how long :meth:`stop` waits for in-flight
            requests (queued, executing, or parked in delay) before
            cancelling whatever is left.
        max_handler_errors: how many recent handler exceptions to retain
            in :attr:`handler_errors`.
        max_workers: fixed worker-thread pool size. Thread count is
            bounded by ``max_workers`` plus a small constant (I/O loop,
            delay scheduler, acceptor) regardless of connection count.
        max_queue: admission-queue capacity; a request arriving at a
            full queue is shed (or trades places with a queued
            lower-priority request). Defaults to ``max_connections``,
            so well-behaved request-response clients are never shed at
            the queue before the connection limit bites.
        max_connections: concurrently open connections; further
            connects receive a fast ``overloaded`` answer and a close.
        max_parked: delay-parking-lot capacity. Over it, the largest
            priced delay is shed first with the full delay as
            ``retry_after``.
        overload_retry_after: the ``retry_after`` hint attached to
            queue/connection sheds.
        cache_fast_path: serve result-cache hits directly on the I/O
            loop, skipping the admission queue and worker-pool round
            trip entirely. A hit is still authorized, priced, recorded,
            and delayed exactly like a worker-served query (the guard's
            ``cache_only`` probe runs the full accounting pipeline); a
            miss falls through to normal admission having charged
            nothing. Only applies when the guard has a result cache.
    """

    def __init__(
        self,
        service: DataProviderService,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout: Optional[float] = 30.0,
        max_request_bytes: int = 64 * 1024,
        drain_timeout: float = 5.0,
        max_handler_errors: int = 64,
        max_workers: int = 8,
        max_queue: Optional[int] = None,
        max_connections: int = 128,
        max_parked: Optional[int] = None,
        overload_retry_after: float = 1.0,
        cache_fast_path: bool = True,
    ):
        if read_timeout is not None and read_timeout <= 0:
            raise ConfigError(
                f"read_timeout must be positive, got {read_timeout}"
            )
        if max_request_bytes < 1:
            raise ConfigError(
                f"max_request_bytes must be >= 1, got {max_request_bytes}"
            )
        if drain_timeout < 0:
            raise ConfigError(
                f"drain_timeout must be >= 0, got {drain_timeout}"
            )
        if max_handler_errors < 1:
            raise ConfigError(
                f"max_handler_errors must be >= 1, got {max_handler_errors}"
            )
        if max_workers < 1:
            raise ConfigError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if max_connections < 1:
            raise ConfigError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        if max_queue is None:
            max_queue = max_connections
        if max_queue < 1:
            raise ConfigError(f"max_queue must be >= 1, got {max_queue}")
        if max_parked is None:
            max_parked = max_connections
        if max_parked < 1:
            raise ConfigError(
                f"max_parked must be >= 1, got {max_parked}"
            )
        if overload_retry_after < 0:
            raise ConfigError(
                f"overload_retry_after must be >= 0, "
                f"got {overload_retry_after}"
            )
        self.service = service
        self.read_timeout = read_timeout
        self.max_request_bytes = max_request_bytes
        self.drain_timeout = drain_timeout
        self.max_workers = max_workers
        self.max_queue = max_queue
        self.max_connections = max_connections
        self.max_parked = max_parked
        self.overload_retry_after = overload_retry_after
        self.cache_fast_path = cache_fast_path
        #: lifetime count of queries answered on the I/O loop straight
        #: from the result cache (no worker-pool round trip).
        self.cache_fast_path_hits = 0
        #: recent unexpected exceptions that escaped request handling,
        #: newest last, bounded so a long-running server cannot leak; a
        #: healthy server keeps this empty. The lifetime total is
        #: :attr:`handler_errors_total`.
        self.handler_errors: Deque[BaseException] = deque(
            maxlen=max_handler_errors
        )
        #: exact lifetime count of handler errors (survives ring wrap).
        self.handler_errors_total = 0
        #: lifetime count of shed requests, by reason.
        self.shed_counts: Dict[str, int] = {}
        self.obs = service.obs
        # Registration only. Queries are NOT serialised here: the
        # guard's pipeline and the engine's read/write lock provide all
        # statement-level synchronisation.
        self._lock = threading.Lock()
        self._draining = threading.Event()
        self._conn_cond = threading.Condition()
        self._connection_count = 0
        self._request_seq = 0
        self._seq_lock = threading.Lock()
        self._queue = _AdmissionQueue(max_queue)
        self._sleeper = _DelayScheduler(self, max_parked)
        self._busy_workers = 0
        self._listener = self._bind(host, port)
        self._address: Tuple[str, int] = self._listener.getsockname()
        self._io: Optional[_IOLoop] = None
        self._workers: List[threading.Thread] = []
        self._started = False
        self._stopped = False
        self._started_at: Optional[float] = None
        #: rolling availability / latency SLO windows for the ``health``
        #: op. Latencies recorded here exclude the priced delay: the
        #: delay is the defense working, not service slowness.
        self.slo = SloTracker()
        if self.obs.enabled:
            self._register_metrics()

    @staticmethod
    def _bind(host: str, port: int) -> socket.socket:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(128)
        return listener

    def _register_metrics(self) -> None:
        """Create the server's metric handles in the shared registry."""
        registry = self.obs.registry
        self._m_requests = registry.counter(
            "server_requests_total", "Requests received, by op", ("op",)
        )
        self._m_denied = registry.counter(
            "server_denied_total",
            "Requests answered with a denial, by reason",
            ("reason",),
        )
        self._m_handler_errors = registry.counter(
            "server_handler_errors_total",
            "Unexpected exceptions that escaped request handling",
        )
        self._m_connections = registry.counter(
            "server_connections_total", "Connections accepted"
        )
        self._m_shed = registry.counter(
            "server_shed_total",
            "Requests shed by overload protection, by shed point",
            ("reason",),
        )
        registry.gauge(
            "server_in_flight_connections",
            "Connections currently being served",
        ).set_function(lambda: self.active_connections)
        registry.gauge(
            "server_queue_depth",
            "Requests waiting for a worker in the admission queue",
        ).set_function(lambda: len(self._queue))
        registry.gauge(
            "server_queue_capacity", "Admission-queue capacity"
        ).set_function(lambda: self.max_queue)
        registry.gauge(
            "server_parked_delays",
            "Responses currently waiting out a priced delay",
        ).set_function(lambda: len(self._sleeper))
        registry.gauge(
            "server_workers", "Worker-pool size"
        ).set_function(lambda: self.max_workers)
        registry.gauge(
            "server_workers_busy",
            "Workers currently executing a request",
        ).set_function(lambda: self._busy_workers)
        registry.counter(
            "faults_injected_total",
            "Faults fired by the chaos-testing injector",
        ).set_function(lambda: injector.fired_total)
        registry.gauge(
            "server_uptime_seconds",
            "Seconds since the server last started serving",
        ).set_function(lambda: self.uptime_seconds)
        registry.counter(
            "server_cache_fast_path_hits_total",
            "Queries answered on the I/O loop straight from the "
            "result cache",
        ).set_function(lambda: self.cache_fast_path_hits)
        registry.gauge(
            "repro_build_info",
            "Build information; value is always 1",
            ("version", "python"),
        ).set(1, **build_info())

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port)."""
        return self._address

    @property
    def active_connections(self) -> int:
        """Connections currently being served."""
        with self._conn_cond:
            return self._connection_count

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a worker."""
        return len(self._queue)

    @property
    def parked_delays(self) -> int:
        """Responses currently waiting out a priced delay."""
        return len(self._sleeper)

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the last :meth:`start` (0.0 before the first)."""
        if self._started_at is None:
            return 0.0
        return max(0.0, time.monotonic() - self._started_at)

    def start(self) -> None:
        """Serve in background threads until :meth:`stop`.

        A stopped server may be started again: :meth:`stop` closed the
        listening socket, so a fresh one is bound to the same address.
        """
        if self._started:
            raise ConfigError("server already started")
        if self._stopped:
            self._listener = self._bind(*self._address)
            self._address = self._listener.getsockname()
            self._queue = _AdmissionQueue(self.max_queue)
            self._sleeper = _DelayScheduler(self, self.max_parked)
            self._stopped = False
        self._draining.clear()
        self._io = _IOLoop(self, self._listener)
        self._io.start()
        self._sleeper.start()
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-worker-{index}",
                daemon=True,
            )
            for index in range(self.max_workers)
        ]
        for worker in self._workers:
            worker.start()
        self._started = True
        self._started_at = time.monotonic()

    def stop(self) -> None:
        """Stop accepting, drain in-flight work, then close.

        The drain covers queued requests, executing requests, and
        delays parked in the scheduler — all bounded by
        ``drain_timeout``. Whatever is left when the budget runs out is
        answered with a ``shutting_down`` denial (parked entries
        report the delay they still owed as ``retry_after``), so
        shutdown is never held hostage by a penalised query.
        """
        if not self._started:
            self._teardown()
            return
        self._draining.set()
        deadline = time.monotonic() + self.drain_timeout
        while time.monotonic() < deadline:
            busy = (
                len(self._queue)
                or len(self._sleeper)
                or self._busy_workers
                or (self._io is not None and self._io.busy_count())
            )
            if not busy:
                break
            time.sleep(0.01)
        # Cancel whatever outlived the drain budget.
        self._queue.close()
        for request in self._queue.drain():
            self._send_response(
                request.conn, self._shed_response("shutting_down")
            )
        self._sleeper.cancel_all("shutting_down")
        self._sleeper.stop()
        for worker in self._workers:
            worker.join(timeout=2)
        self._workers = []
        # Give final responses a moment to flush before closing sockets.
        flush_deadline = time.monotonic() + 1.0
        while time.monotonic() < flush_deadline:
            if self._io is None or not self._io.busy_count():
                break
            time.sleep(0.01)
        self._teardown()

    def _teardown(self) -> None:
        if self._io is not None:
            self._io.shutdown()
            self._io.join(timeout=5)
            self._io = None
        try:
            self._listener.close()
        except OSError:
            pass
        self._started = False
        self._stopped = True

    def __enter__(self) -> "DelayServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- connection bookkeeping ------------------------------------------------

    def _connection_opened(self) -> None:
        with self._conn_cond:
            self._connection_count += 1
        if self.obs.enabled:
            self._m_connections.inc()

    def _connection_closed(self) -> None:
        with self._conn_cond:
            self._connection_count -= 1
            self._conn_cond.notify_all()

    def _record_handler_error(self, error: BaseException) -> None:
        with self._conn_cond:
            self.handler_errors.append(error)
            self.handler_errors_total += 1
        if self.obs.enabled:
            self._m_handler_errors.inc()

    # -- shedding helpers ------------------------------------------------------

    def _shed_response(
        self,
        reason: str,
        retry_after: float = 0.0,
        detail: str = "",
    ) -> Dict:
        message = {
            "overloaded": "server overloaded",
            "shutting_down": "server shutting down",
        }.get(reason, reason)
        if detail:
            message = f"{message}: {detail}"
        return {
            "ok": False,
            "error": message,
            "reason": reason,
            "retry_after": retry_after,
        }

    def _note_shed(self, point: str) -> None:
        with self._conn_cond:
            self.shed_counts[point] = self.shed_counts.get(point, 0) + 1
        self.service.guard.stats.note_shed()
        self.slo.note("shed")
        if self.obs.enabled:
            self._m_shed.inc(reason=point)
        audit = self.obs.audit
        if audit is not None:
            audit.emit("query_shed", point=point)

    # -- request intake (I/O loop thread) --------------------------------------

    def _encode(self, payload: Dict) -> bytes:
        return (json.dumps(payload) + "\n").encode("utf-8")

    def _send_response(
        self,
        conn: _Connection,
        payload: Dict,
        close_after: bool = False,
    ) -> None:
        """Hand a response to the I/O loop for delivery (any thread)."""
        io = self._io
        if io is None:
            return
        io.submit(("send", conn, self._encode(payload), close_after))

    def _dispatch_line(self, conn: _Connection, line: str) -> None:
        """Parse, validate, and admit one request line (I/O thread).

        Anything that can be answered without a worker — parse errors,
        invalid fields, admission sheds — is answered here, so a
        saturated worker pool never delays the fast rejection path.
        """
        received_at = time.monotonic()
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            self._send_response(
                conn, {"ok": False, "error": f"bad json: {error}"}
            )
            return
        if not isinstance(payload, dict) or "op" not in payload:
            self._send_response(
                conn,
                {"ok": False, "error": "request must be {'op': ...}"},
            )
            return
        op = payload["op"]
        if self.obs.enabled:
            self._m_requests.inc(op=op if op in KNOWN_OPS else "unknown")
        invalid = self._validate_request(payload)
        if invalid is not None:
            if self.obs.enabled:
                self._m_denied.inc(reason="bad_request")
            self._send_response(conn, invalid)
            return
        if self._draining.is_set():
            self._send_response(conn, self._shed_response("shutting_down"))
            return
        deadline_at = None
        if payload.get("deadline_ms") is not None:
            deadline_at = received_at + payload["deadline_ms"] / 1000.0
        if (
            op == "query"
            and self.cache_fast_path
            and getattr(self.service.guard, "result_cache", None) is not None
            and self._try_cache_fast_path(
                conn, payload, received_at, deadline_at
            )
        ):
            return
        priority = payload.get("priority", PRIORITY_DEFAULT)
        with self._seq_lock:
            self._request_seq += 1
            seq = self._request_seq
        request = _Request(
            conn=conn,
            payload=payload,
            seq=seq,
            received_at=received_at,
            deadline_at=deadline_at,
            priority=int(priority),
        )
        conn.busy = True
        admitted, victim = self._queue.offer(request)
        if victim is not None:
            self._note_shed("queue_full")
            self._send_response(
                victim.conn,
                self._shed_response(
                    "overloaded",
                    retry_after=self.overload_retry_after,
                    detail="displaced by a higher-priority request",
                ),
            )
        if not admitted:
            self._note_shed("queue_full")
            self._send_response(
                conn,
                self._shed_response(
                    "overloaded",
                    retry_after=self.overload_retry_after,
                    detail=f"admission queue full ({self.max_queue})",
                ),
            )

    def _try_cache_fast_path(
        self,
        conn: _Connection,
        payload: Dict,
        received_at: float,
        deadline_at: Optional[float],
    ) -> bool:
        """Answer a query from the result cache on the I/O loop.

        Returns True when the request was fully answered here (a cache
        hit, a denial, or a statement error) and False when it must
        continue through the admission queue — a miss probe returns
        before the authorize stage, so the account has not been
        charged and the worker-pool run charges exactly once.
        """
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql:
            return False
        guard = self.service.guard
        try:
            result = guard.execute(
                sql,
                identity=payload.get("identity"),
                sleep=False,
                deadline_at=deadline_at,
                cache_only=True,
            )
        except AccessDenied as denied:
            self.slo.note("denied")
            if self.obs.enabled:
                self._m_denied.inc(reason=denied.reason or "denied")
            self._send_response(
                conn,
                {
                    "ok": False,
                    "error": str(denied),
                    "reason": denied.reason,
                    "retry_after": denied.retry_after,
                },
            )
            return True
        except (EngineError, DelayDefenseError) as error:
            self.slo.note("denied")
            self._send_response(conn, {"ok": False, "error": str(error)})
            return True
        if result is None:
            return False
        self.cache_fast_path_hits += 1
        self.slo.note("ok", latency=time.monotonic() - received_at)
        response = {
            "ok": True,
            "columns": result.result.columns,
            "rows": [list(row) for row in result.result.rows],
            "delay": result.delay,
            "rowcount": result.result.rowcount,
            "cached": True,
        }
        if result.delay <= 0:
            self._send_response(conn, response)
            return True
        if hasattr(self.service.clock, "advance"):
            sleep_start = time.perf_counter()
            self.service.clock.sleep(result.delay)
            if result.trace is not None:
                result.trace.extend("sleep", sleep_start, time.perf_counter())
            self._send_response(conn, response)
            return True
        with self._seq_lock:
            self._request_seq += 1
            seq = self._request_seq
        request = _Request(
            conn=conn,
            payload=payload,
            seq=seq,
            received_at=received_at,
            deadline_at=deadline_at,
            priority=int(payload.get("priority", PRIORITY_DEFAULT)),
        )
        conn.busy = True
        parked = self._sleeper.park(
            request, response, result.delay, result.trace
        )
        if parked is not None:
            self._send_response(conn, parked)
        return True

    @staticmethod
    def _validate_request(payload: Dict) -> Optional[Dict]:
        """Type/range-check client-supplied fields.

        Returns a structured ``bad_request`` response for invalid
        input, None when the request is well-formed. Bad values are a
        client bug (or a probe), not a handler exception.
        """

        def bad(message: str) -> Dict:
            return {"ok": False, "error": message, "reason": "bad_request"}

        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if isinstance(deadline_ms, bool) or not isinstance(
                deadline_ms, (int, float)
            ):
                return bad(
                    "deadline_ms must be a number of milliseconds, got "
                    f"{type(deadline_ms).__name__}"
                )
            if (
                deadline_ms != deadline_ms  # NaN
                or deadline_ms <= 0
                or deadline_ms > DEADLINE_MS_MAX
            ):
                return bad(
                    f"deadline_ms must be in (0, {DEADLINE_MS_MAX:.0f}], "
                    f"got {deadline_ms}"
                )
        priority = payload.get("priority")
        if priority is not None:
            if isinstance(priority, bool) or not isinstance(priority, int):
                return bad(
                    "priority must be an integer, got "
                    f"{type(priority).__name__}"
                )
            if not PRIORITY_MIN <= priority <= PRIORITY_MAX:
                return bad(
                    f"priority must be in [{PRIORITY_MIN}, "
                    f"{PRIORITY_MAX}], got {priority}"
                )
        identity = payload.get("identity")
        if identity is not None and not isinstance(identity, str):
            return bad(
                f"identity must be a string, got {type(identity).__name__}"
            )
        if payload.get("op") == "query":
            sql = payload.get("sql")
            if sql is not None and not isinstance(sql, str):
                return bad(
                    f"sql must be a string, got {type(sql).__name__}"
                )
        return None

    # -- request execution (worker threads) ------------------------------------

    def _worker_loop(self) -> None:
        while True:
            request = self._queue.pop()
            if request is None:
                return
            with self._conn_cond:
                self._busy_workers += 1
            try:
                response = self._execute_request(request)
            except Exception as error:  # noqa: BLE001 — isolate the worker
                # Expected errors were mapped below; anything escaping
                # is a server bug. Record it (tests assert this list is
                # empty) and keep the worker alive.
                self._record_handler_error(error)
                self.slo.note("error")
                response = {
                    "ok": False,
                    "error": f"internal server error: {error}",
                    "reason": "internal_error",
                }
            finally:
                with self._conn_cond:
                    self._busy_workers -= 1
            if response is not None:
                self._send_response(
                    request.conn,
                    response,
                    close_after=response.get("op") == "bye",
                )

    def _execute_request(self, request: _Request) -> Optional[Dict]:
        """Run one admitted request; None means a parked delay will
        answer it later."""
        try:
            fire("server.handler")
            if (
                request.deadline_at is not None
                and time.monotonic() >= request.deadline_at
            ):
                # The budget died in the queue: answer before doing
                # work the client no longer wants.
                raise AccessDenied("deadline_exceeded")
            if request.op == "query":
                return self._handle_query_async(request)
            return self._route_op(request.payload)
        except AccessDenied as denied:
            self.slo.note("denied")
            if self.obs.enabled:
                self._m_denied.inc(reason=denied.reason or "denied")
            return {
                "ok": False,
                "error": str(denied),
                "reason": denied.reason,
                "retry_after": denied.retry_after,
            }
        except (EngineError, DelayDefenseError) as error:
            # A refused or malformed statement is the request's fault,
            # not the server's: a denial for SLO purposes, not an error.
            self.slo.note("denied")
            return {"ok": False, "error": str(error)}

    def _handle_query_async(self, request: _Request) -> Optional[Dict]:
        """Execute a query; park its delay instead of sleeping on it."""
        payload = request.payload
        sql = payload.get("sql")
        if not sql:
            return {
                "ok": False,
                "error": "query needs sql",
                "reason": "bad_request",
            }
        result = self.service.guard.execute(
            sql,
            identity=payload.get("identity"),
            sleep=False,
            deadline_at=request.deadline_at,
        )
        # SLO latency deliberately excludes the priced delay served
        # below: the delay is the defense working, not slowness.
        self.slo.note(
            "ok", latency=time.monotonic() - request.received_at
        )
        response = {
            "ok": True,
            "columns": result.result.columns,
            "rows": [list(row) for row in result.result.rows],
            "delay": result.delay,
            "rowcount": result.result.rowcount,
            "cached": result.cached,
        }
        if result.delay <= 0:
            return response
        if hasattr(self.service.clock, "advance"):
            # Simulated clock: charging the delay is instantaneous, so
            # there is nothing to park — account it and answer.
            sleep_start = time.perf_counter()
            self.service.clock.sleep(result.delay)
            if result.trace is not None:
                result.trace.extend(
                    "sleep", sleep_start, time.perf_counter()
                )
            return response
        return self._sleeper.park(
            request, response, result.delay, result.trace
        )

    # -- request dispatch (synchronous / embedded path) -------------------------

    def handle_request(self, line: str) -> Dict:
        """Process one JSON request line into a response dict.

        The synchronous embedding API (also used by tests): delays are
        served inline on the caller's thread. The TCP path instead
        flows through the admission queue, worker pool, and delay
        parking lot.
        """
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            return {"ok": False, "error": f"bad json: {error}"}
        if not isinstance(request, dict) or "op" not in request:
            return {"ok": False, "error": "request must be {'op': ...}"}
        op = request["op"]
        if self.obs.enabled:
            self._m_requests.inc(op=op if op in KNOWN_OPS else "unknown")
        invalid = self._validate_request(request)
        if invalid is not None:
            if self.obs.enabled:
                self._m_denied.inc(reason="bad_request")
            return invalid
        try:
            if op == "query":
                return self._handle_query_sync(request)
            return self._route_op(request)
        except AccessDenied as denied:
            self.slo.note("denied")
            if self.obs.enabled:
                self._m_denied.inc(reason=denied.reason or "denied")
            return {
                "ok": False,
                "error": str(denied),
                "reason": denied.reason,
                "retry_after": denied.retry_after,
            }
        except (EngineError, DelayDefenseError) as error:
            # A refused or malformed statement is the request's fault,
            # not the server's: a denial for SLO purposes, not an error.
            self.slo.note("denied")
            return {"ok": False, "error": str(error)}

    def _route_op(self, request: Dict) -> Dict:
        """Dispatch every op except ``query`` (shared by both paths)."""
        op = request["op"]
        if op == "ping":
            return {"ok": True, "op": "pong"}
        if op == "bye":
            return {"ok": True, "op": "bye"}
        if op == "register":
            return self._handle_register(request)
        if op == "report":
            return self._handle_report()
        if op == "metrics":
            return self._handle_metrics(request)
        if op == "trace":
            return self._handle_trace(request)
        if op == "forensics":
            return self._handle_forensics(request)
        if op == "health":
            return self._handle_health()
        if op == "checkpoint":
            return self._handle_checkpoint()
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _handle_register(self, request: Dict) -> Dict:
        identity = request.get("identity")
        if not identity:
            return {"ok": False, "error": "register needs an identity"}
        with self._lock:
            account = self.service.register(
                identity, subnet=request.get("subnet", "0.0.0.0/0")
            )
        return {
            "ok": True,
            "identity": account.identity,
            "registered_at": account.registered_at,
        }

    def _handle_query_sync(self, request: Dict) -> Dict:
        """The embedded query path: serve the delay on this thread."""
        sql = request.get("sql")
        if not sql:
            return {
                "ok": False,
                "error": "query needs sql",
                "reason": "bad_request",
            }
        started = time.monotonic()
        deadline_at = None
        if request.get("deadline_ms") is not None:
            deadline_at = started + request["deadline_ms"] / 1000.0
        result = self.service.guard.execute(
            sql,
            identity=request.get("identity"),
            sleep=False,
            deadline_at=deadline_at,
        )
        # Latency excludes the priced delay served below (see the
        # async path).
        self.slo.note("ok", latency=time.monotonic() - started)
        if result.delay > 0:
            sleep_start = time.perf_counter()
            self.service.clock.sleep(result.delay)
            if result.trace is not None:
                result.trace.extend(
                    "sleep", sleep_start, time.perf_counter()
                )
        return {
            "ok": True,
            "columns": result.result.columns,
            "rows": [list(row) for row in result.result.rows],
            "delay": result.delay,
            "rowcount": result.result.rowcount,
            "cached": result.cached,
        }

    def _handle_report(self) -> Dict:
        # Lock-free: report() reads the engine under its read lock and
        # the trackers/stats under their own locks.
        report = self.service.report()
        return {
            "ok": True,
            "users": report.users,
            "queries": report.queries,
            "denied": report.denied,
            "median_user_delay": report.median_user_delay,
            "extraction_cost": report.extraction_cost,
            "max_extraction_cost": report.max_extraction_cost,
        }

    def _handle_metrics(self, request: Dict) -> Dict:
        # Registry reads take only per-metric locks: a scrape during a
        # long penalised query returns immediately.
        fmt = request.get("format", "json")
        if fmt == "json":
            return {"ok": True, "metrics": self.obs.registry.to_json()}
        if fmt == "prometheus":
            return {
                "ok": True,
                "content_type": "text/plain; version=0.0.4",
                "text": self.obs.registry.render_prometheus(),
            }
        return {
            "ok": False,
            "error": f"unknown metrics format {fmt!r}; "
            "use 'json' or 'prometheus'",
        }

    def _handle_checkpoint(self) -> Dict:
        """Snapshot service state and truncate the journal.

        The target is always the service's configured ``snapshot_path``
        — a client-supplied path would let any remote peer write files
        wherever the server process can. A service without a configured
        path answers with a :class:`~repro.core.errors.ConfigError`
        message.
        """
        seq = self.service.checkpoint()
        return {
            "ok": True,
            "journal_seq": seq,
            "checkpoints_completed": self.service.checkpoints_completed,
        }

    def _handle_trace(self, request: Dict) -> Dict:
        limit = request.get("limit", 20)
        if not isinstance(limit, int) or limit < 1:
            return {"ok": False, "error": f"limit must be >= 1, got {limit}"}
        return {
            "ok": True,
            "traces": self.obs.tracer.to_json(limit),
            "finished_total": self.obs.tracer.finished_total,
        }

    def _handle_forensics(self, request: Dict) -> Dict:
        """Top risk-ranked identities from the live forensics monitor."""
        forensics = self.service.guard.forensics
        if forensics is None:
            return {
                "ok": False,
                "error": (
                    "forensics is not enabled on this guard; set "
                    "GuardConfig(forensics=True)"
                ),
                "reason": "not_enabled",
            }
        limit = request.get("limit", 10)
        if (
            isinstance(limit, bool)
            or not isinstance(limit, int)
            or limit < 1
        ):
            return {"ok": False, "error": f"limit must be >= 1, got {limit}"}
        payload = {"ok": True, "identities": forensics.top(limit)}
        payload.update(forensics.summary())
        return payload

    def _handle_health(self) -> Dict:
        """One self-describing operational snapshot for dashboards.

        Everything an operator needs to answer "is the defense healthy
        and holding?": saturation of every bounded resource, rolling
        availability/latency SLO windows, durability (journal lag since
        the last checkpoint), live per-table staleness guarantees
        (S_max, eqs. 8-12), forensic flag counts, and the process-wide
        client circuit breakers.
        """
        guard = self.service.guard
        forensics = guard.forensics
        with DelayClient._shared_breakers_lock:
            breaker_items = list(DelayClient._shared_breakers.items())
        queue_depth = len(self._queue)
        cluster = (
            self.service.cluster_health()
            if hasattr(self.service, "cluster_health")
            else None
        )
        return {
            "ok": True,
            "status": "draining" if self._draining.is_set() else "serving",
            "build": build_info(),
            "uptime_seconds": self.uptime_seconds,
            "server": {
                "queue_depth": queue_depth,
                "queue_capacity": self.max_queue,
                "queue_saturation": queue_depth / self.max_queue,
                "parked_delays": len(self._sleeper),
                "max_parked": self.max_parked,
                "workers": self.max_workers,
                "workers_busy": self._busy_workers,
                "connections": self.active_connections,
                "max_connections": self.max_connections,
                "shed_counts": dict(self.shed_counts),
                "handler_errors_total": self.handler_errors_total,
                "cache_fast_path_hits": self.cache_fast_path_hits,
            },
            "cluster": cluster,
            "slo": self.slo.report(),
            "durability": self.service.durability_health(),
            "staleness": guard.refresh_staleness_gauges(),
            "forensics": (
                forensics.summary() if forensics is not None else None
            ),
            "audit": (
                self.obs.audit.stats()
                if self.obs.audit is not None
                else None
            ),
            "breakers": {
                f"{host}:{port}": breaker.snapshot()
                for (host, port), breaker in breaker_items
            },
        }


class ServerError(DelayDefenseError):
    """Raised by :class:`DelayClient` when the server reports an error.

    Attributes:
        reason: the machine-readable denial reason, when the server sent
            one (e.g. ``query_quota``, ``user_rate``, ``overloaded``,
            ``deadline_exceeded``, ``bad_request``).
        retry_after: seconds after which the request may succeed, when
            the server knows (0.0 otherwise).
    """

    def __init__(self, payload: Dict):
        super().__init__(payload.get("error", "server error"))
        self.payload = payload
        self.reason = payload.get("reason")
        self.retry_after = payload.get("retry_after", 0.0)


class ConnectionClosed(ServerError):
    """The transport died: no response arrived for the request.

    Distinct from an application-level denial (plain
    :class:`ServerError`): the caller cannot know whether the request
    was processed, so retrying may repeat side effects.
    """

    def __init__(self, detail: str = "connection closed by server"):
        super().__init__({"error": detail})


#: Denial reasons :meth:`DelayClient.query` never retries: waiting and
#: resending the identical request cannot change the answer.
NON_RETRYABLE_REASONS = frozenset(
    {"deadline_exceeded", "bad_request", "request_too_large"}
)


class DelayClient:
    """JSON-lines client for :class:`DelayServer`.

    Resilience: :meth:`query` retries transport failures and overload
    sheds with capped exponential backoff and full jitter (so a fleet
    of shed clients does not stampede back in lockstep), honours
    ``retry_after`` hints from throttle denials, and never retries
    semantic denials. An optional per-endpoint circuit breaker
    (``breaker=True``, or pass a
    :class:`~repro.core.resilience.CircuitBreaker`) fails calls fast
    locally after repeated transport/overload failures, probing the
    endpoint again after its ``probe_interval``.

    >>> # with DelayServer(service) as server:
    >>> #     client = DelayClient(*server.address)
    >>> #     client.query("SELECT * FROM t WHERE id = 1")
    """

    #: process-wide per-endpoint breakers, shared by every client that
    #: asked for ``breaker=True`` against the same (host, port).
    _shared_breakers: Dict[Tuple[str, int], CircuitBreaker] = {}
    _shared_breakers_lock = threading.Lock()

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        breaker: Union[CircuitBreaker, bool, None] = None,
        backoff: Optional[BackoffPolicy] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        if breaker is True:
            breaker = self.shared_breaker(host, port)
        elif breaker is False:
            breaker = None
        self.breaker: Optional[CircuitBreaker] = breaker
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        #: retry_after from the most recent denial (0.0 when none).
        self.last_retry_after = 0.0
        #: lifetime retry/reconnect counts for this client.
        self.retries_performed = 0
        self.reconnects_performed = 0
        self._connect()

    @classmethod
    def shared_breaker(
        cls,
        host: str,
        port: int,
        failure_threshold: int = 5,
        probe_interval: float = 1.0,
    ) -> CircuitBreaker:
        """The process-wide breaker for one endpoint (created on first
        use); every client passing ``breaker=True`` shares it, so one
        client's failures protect the rest of the process."""
        key = (host, port)
        with cls._shared_breakers_lock:
            existing = cls._shared_breakers.get(key)
            if existing is None:
                existing = CircuitBreaker(
                    endpoint=f"{host}:{port}",
                    failure_threshold=failure_threshold,
                    probe_interval=probe_interval,
                )
                cls._shared_breakers[key] = existing
            return existing

    def _connect(self) -> None:
        self._socket = socket.create_connection(
            (self.host, self.port), self.timeout
        )
        self._file = self._socket.makefile("rwb")

    def _reconnect(self) -> None:
        try:
            self._file.close()
            self._socket.close()
        except OSError:
            pass
        self._connect()
        self.reconnects_performed += 1

    def _call(self, request: Dict) -> Dict:
        """One request/response round trip, feeding the breaker.

        Breaker accounting: transport failures and overload sheds count
        as failures (the endpoint is unhealthy); any other answer —
        including semantic denials — counts as a success (the server
        answered competently).
        """
        if self.breaker is not None:
            self.breaker.before_call()
        try:
            response = self._roundtrip(request)
        except ConnectionClosed:
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        except ServerError as error:
            if self.breaker is not None:
                if error.reason == "overloaded":
                    self.breaker.record_failure()
                else:
                    self.breaker.record_success()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return response

    def _roundtrip(self, request: Dict) -> Dict:
        try:
            self._file.write((json.dumps(request) + "\n").encode("utf-8"))
            self._file.flush()
            line = self._file.readline()
        except OSError as error:
            raise ConnectionClosed(f"transport failure: {error}") from error
        if not line:
            raise ConnectionClosed()
        try:
            response = json.loads(line.decode("utf-8", errors="replace"))
        except json.JSONDecodeError as error:
            # A half-written line (server died mid-response) is a
            # transport failure, not an application denial: the caller
            # cannot know whether the request took effect.
            raise ConnectionClosed(
                f"garbled server response: {error}"
            ) from error
        if not isinstance(response, dict):
            raise ConnectionClosed(
                f"garbled server response: expected an object, "
                f"got {type(response).__name__}"
            )
        if not response.get("ok"):
            error = ServerError(response)
            self.last_retry_after = error.retry_after
            raise error
        self.last_retry_after = 0.0
        return response

    def ping(self) -> bool:
        """Round-trip health check."""
        return self._call({"op": "ping"})["op"] == "pong"

    def register(self, identity: str, subnet: str = "0.0.0.0/0") -> Dict:
        """Register an identity with the provider."""
        return self._call(
            {"op": "register", "identity": identity, "subnet": subnet}
        )

    def query(
        self,
        sql: str,
        identity: Optional[str] = None,
        retries: int = 0,
        max_retry_wait: float = 5.0,
        max_retry_elapsed: float = 30.0,
        deadline_ms: Optional[float] = None,
        priority: Optional[int] = None,
    ) -> Dict:
        """Run one statement; returns columns/rows/delay.

        Args:
            retries: how many times to retry a *retryable* failure:
                a transport failure (:class:`ConnectionClosed` — the
                client reconnects first), an ``overloaded`` shed, or a
                denial carrying a ``retry_after`` hint. Semantic
                denials (``bad_request``, ``deadline_exceeded``,
                ``request_too_large``, or any hint-less refusal) are
                never retried — resending the same request cannot
                change the answer.
            max_retry_wait: give up instead of honouring a hint longer
                than this many seconds; also caps each backoff draw.
            max_retry_elapsed: total wall-clock budget across all
                retry waits; once spent, the last error surfaces.
            deadline_ms: end-to-end budget forwarded to the server; the
                guard aborts the request once it cannot finish (and
                rejects a mandated delay that would not fit, reporting
                the full delay as ``retry_after``).
            priority: 0 (expendable) .. 9 (critical); under overload
                the server sheds lower priorities first.
        """
        request: Dict = {"op": "query", "sql": sql}
        if identity is not None:
            request["identity"] = identity
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        if priority is not None:
            request["priority"] = priority
        attempts_left = retries
        attempt = 0
        started = time.monotonic()
        while True:
            try:
                return self._call(request)
            except ConnectionClosed:
                if attempts_left <= 0:
                    raise
                wait = self.backoff.wait(attempt)
                self._wait_to_retry(wait, started, max_retry_elapsed)
                attempts_left -= 1
                attempt += 1
                self.retries_performed += 1
                try:
                    self._reconnect()
                except OSError as error:
                    if attempts_left <= 0:
                        raise ConnectionClosed(
                            f"reconnect failed: {error}"
                        ) from error
            except ServerError as denied:
                wait = denied.retry_after
                retryable = denied.reason == "overloaded" or (
                    wait > 0 and denied.reason not in NON_RETRYABLE_REASONS
                )
                if not retryable or attempts_left <= 0:
                    raise
                if wait > max_retry_wait:
                    raise
                if wait <= 0:
                    wait = self.backoff.wait(attempt)
                self._wait_to_retry(wait, started, max_retry_elapsed)
                attempts_left -= 1
                attempt += 1
                self.retries_performed += 1

    @staticmethod
    def _wait_to_retry(
        wait: float, started: float, max_retry_elapsed: float
    ) -> None:
        """Sleep before a retry, unless it would bust the total budget."""
        elapsed = time.monotonic() - started
        if elapsed + wait > max_retry_elapsed:
            raise ServerError(
                {
                    "error": (
                        "retry budget exhausted after "
                        f"{elapsed:.2f}s (cap {max_retry_elapsed}s)"
                    ),
                    "reason": "retry_budget",
                }
            )
        if wait > 0:
            time.sleep(wait)

    def report(self) -> Dict:
        """Fetch the operator report."""
        return self._call({"op": "report"})

    def checkpoint(self) -> Dict:
        """Ask the server to snapshot its state and truncate its journal."""
        return self._call({"op": "checkpoint"})

    def metrics(self, format: str = "json") -> Dict:
        """Scrape the server's metrics registry.

        Args:
            format: ``"json"`` (structured snapshots under ``metrics``)
                or ``"prometheus"`` (text exposition under ``text``).
        """
        return self._call({"op": "metrics", "format": format})

    def traces(self, limit: int = 20) -> Dict:
        """Fetch the most recent query-lifecycle traces, newest first."""
        return self._call({"op": "trace", "limit": limit})

    def forensics(self, limit: int = 10) -> Dict:
        """Fetch the top risk-ranked identities from live forensics."""
        return self._call({"op": "forensics", "limit": limit})

    def health(self) -> Dict:
        """Fetch the server's health / SLO / staleness snapshot."""
        return self._call({"op": "health"})

    def resilience_stats(self) -> Dict:
        """Client-side resilience state: breaker + retry counters."""
        return {
            "breaker": (
                self.breaker.snapshot() if self.breaker is not None else None
            ),
            "retries_performed": self.retries_performed,
            "reconnects_performed": self.reconnects_performed,
        }

    def close(self) -> None:
        """Say goodbye and close the connection.

        Closing is best-effort: a peer that already went away (or shed
        this connection) must not turn cleanup into a new exception.
        """
        try:
            self._roundtrip({"op": "bye"})
        except (ServerError, OSError):
            pass
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "DelayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
