"""Statement execution against a catalog.

The executor consumes parsed statements, uses the planner for access-path
selection, and produces :class:`ResultSet` objects. Result sets carry the
base-table rows that contributed to the result — the hook the delay
layer uses to charge per-tuple delays and maintain popularity counts
without modifying the engine. For joined queries, ``touched`` lists
every contributing ``(table, rowid)`` pair across all joined tables.

Concurrency audit: the executor is stateless between calls (it holds
only the catalog reference), and the whole SELECT path — planning,
subquery binding, scans, joins, aggregation — allocates its intermediate
state per call and never writes through to tables, indexes, or the
catalog. Concurrent SELECTs under the engine's shared read lock are
therefore safe; the mutating handlers (``execute_insert`` etc.) run only
under the exclusive write side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .catalog import Catalog
from .errors import CatalogError, ExecutionError
from .expr import (
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    InSet,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Logical,
    Negate,
    Not,
    ScalarSubquery,
    predicate_holds,
)
from .parser.ast import (
    CreateIndexStatement,
    CreateTableStatement,
    DeleteStatement,
    DropTableStatement,
    InsertStatement,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStatement,
    UpdateStatement,
)
from .schema import TableSchema
from .table import HeapTable, Row
from .types import SQLValue, sort_key

#: A contributing base row: (lower-cased table name, rowid).
Touched = Tuple[str, int]

#: A working row during SELECT execution: the base rows it came from,
#: plus the name->value evaluation context.
Context = Tuple[Tuple[Touched, ...], Dict[str, SQLValue]]


@dataclass
class ResultSet:
    """The result of executing one statement.

    Attributes:
        columns: output column names, in order.
        rows: output rows as tuples.
        rowids: base-table rowids of the *driving* table that
            contributed to the output (one per output row for a plain
            SELECT, after LIMIT/OFFSET; every matching rowid for
            aggregates; affected rowids for DML).
        touched: every contributing (table, rowid) pair, across joins.
            For single-table statements this mirrors ``rowids``.
        table: name of the driving base table, if any.
        rowcount: rows affected, for DML statements.
        statement_kind: "select" | "insert" | "update" | "delete" | "ddl".
        execution_path: which engine path produced this result —
            "classic" (row-at-a-time), "vectorized", "parallel"
            (vectorized + scan workers), or "cached" (thawed from the
            result cache). Observability only; never affects content.
    """

    columns: List[str] = field(default_factory=list)
    rows: List[Tuple[SQLValue, ...]] = field(default_factory=list)
    rowids: List[int] = field(default_factory=list)
    touched: List[Touched] = field(default_factory=list)
    table: Optional[str] = None
    rowcount: int = 0
    statement_kind: str = "select"
    execution_path: str = "classic"

    def scalar(self) -> SQLValue:
        """Return the single value of a 1×1 result (or raise)."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.rows[0]) if self.rows else 0}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> List[SQLValue]:
        """Return one output column as a list."""
        try:
            position = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(f"no result column {name!r}") from None
        return [row[position] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, SQLValue]]:
        """Return rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Executor:
    """Executes parsed statements against a :class:`Catalog`."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- dispatch ---------------------------------------------------------

    def execute(self, statement) -> ResultSet:
        """Execute any supported statement AST node."""
        if isinstance(statement, SelectStatement):
            return self.execute_select(statement)
        if isinstance(statement, InsertStatement):
            return self.execute_insert(statement)
        if isinstance(statement, UpdateStatement):
            return self.execute_update(statement)
        if isinstance(statement, DeleteStatement):
            return self.execute_delete(statement)
        if isinstance(statement, CreateTableStatement):
            return self.execute_create_table(statement)
        if isinstance(statement, CreateIndexStatement):
            return self.execute_create_index(statement)
        if isinstance(statement, DropTableStatement):
            return self.execute_drop_table(statement)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    # -- subquery binding ---------------------------------------------------

    def _bind_subqueries(
        self,
        expression: Optional[Expression],
        extra_touched: List[Touched],
    ) -> Optional[Expression]:
        """Replace subquery nodes with their evaluated results.

        Subqueries are uncorrelated: each runs exactly once, here. The
        tuples they read are appended to ``extra_touched`` so the delay
        layer charges them like any other retrieval.
        """
        if expression is None:
            return None
        if isinstance(expression, ScalarSubquery):
            result = self.execute_select(expression.select)
            extra_touched.extend(result.touched)
            if len(result.columns) != 1:
                raise ExecutionError(
                    "scalar subquery must return exactly one column"
                )
            if len(result.rows) > 1:
                raise ExecutionError(
                    "scalar subquery returned more than one row"
                )
            value = result.rows[0][0] if result.rows else None
            return Literal(value)
        if isinstance(expression, InSubquery):
            result = self.execute_select(expression.select)
            extra_touched.extend(result.touched)
            if len(result.columns) != 1:
                raise ExecutionError(
                    "IN-subquery must return exactly one column"
                )
            values = tuple(row[0] for row in result.rows)
            return InSet(
                operand=self._bind_subqueries(
                    expression.operand, extra_touched
                ),
                values=tuple(v for v in values if v is not None),
                negated=expression.negated,
                contains_null=any(v is None for v in values),
            )
        bind = lambda child: self._bind_subqueries(child, extra_touched)
        if isinstance(expression, Comparison):
            return Comparison(
                expression.op, bind(expression.left), bind(expression.right)
            )
        if isinstance(expression, Arithmetic):
            return Arithmetic(
                expression.op, bind(expression.left), bind(expression.right)
            )
        if isinstance(expression, Logical):
            return Logical(
                expression.op, bind(expression.left), bind(expression.right)
            )
        if isinstance(expression, Not):
            return Not(bind(expression.operand))
        if isinstance(expression, Negate):
            return Negate(bind(expression.operand))
        if isinstance(expression, IsNull):
            return IsNull(bind(expression.operand), expression.negated)
        if isinstance(expression, InList):
            return InList(
                bind(expression.operand),
                tuple(bind(item) for item in expression.items),
                expression.negated,
            )
        if isinstance(expression, Between):
            return Between(
                bind(expression.operand),
                bind(expression.low),
                bind(expression.high),
                expression.negated,
            )
        if isinstance(expression, Like):
            return Like(
                bind(expression.operand),
                bind(expression.pattern),
                expression.negated,
            )
        return expression  # Literal, ColumnRef, InSet: nothing to bind

    # -- SELECT: row sourcing ----------------------------------------------

    @staticmethod
    def _fragment(
        table: HeapTable,
        label: str,
        row: Optional[Row],
        shared: frozenset,
    ) -> Dict[str, SQLValue]:
        """Build the context fragment one base row contributes.

        Keys: ``label.col`` always; bare ``col`` only when the name is
        not shared with another table in the FROM clause (shared names
        must be qualified, as in standard SQL).
        """
        fragment: Dict[str, SQLValue] = {}
        for position, column in enumerate(table.schema.columns):
            name = column.name.lower()
            value = row[position] if row is not None else None
            fragment[f"{label}.{name}"] = value
            if name not in shared:
                fragment[name] = value
        return fragment

    def _select_sources(
        self, statement: SelectStatement
    ) -> List[Tuple[HeapTable, str]]:
        """All (table, label) pairs in FROM order; labels lower-cased."""
        driving = self.catalog.table(statement.table)
        sources = [
            (driving, (statement.table_alias or driving.name).lower())
        ]
        for join in statement.joins:
            table = self.catalog.table(join.table)
            sources.append((table, (join.alias or table.name).lower()))
        labels = [label for _, label in sources]
        if len(set(labels)) != len(labels):
            raise ExecutionError(
                f"duplicate table alias in FROM clause: {labels}"
            )
        return sources

    def _shared_columns(
        self, sources: List[Tuple[HeapTable, str]]
    ) -> frozenset:
        seen: Dict[str, int] = {}
        for table, _label in sources:
            for column in table.schema.columns:
                name = column.name.lower()
                seen[name] = seen.get(name, 0) + 1
        return frozenset(name for name, count in seen.items() if count > 1)

    def _collect_contexts(self, statement: SelectStatement) -> List[Context]:
        """Produce joined row contexts for a SELECT."""
        from .planner import candidate_rowids, choose_access_path

        sources = self._select_sources(statement)
        shared = self._shared_columns(sources)
        driving, driving_label = sources[0]
        driving_key = driving.name.lower()

        # Driving table: use the planner only for single-table selects
        # (join predicates reference other tables, so path matching on
        # the WHERE clause is only safe without joins).
        if statement.joins:
            rowids = driving.rowids()
        else:
            path = choose_access_path(self.catalog, driving, statement.where)
            rowids = candidate_rowids(self.catalog, driving, path)

        contexts: List[Context] = []
        for rowid in rowids:
            row = driving.get(rowid)
            if row is None:
                continue
            contexts.append(
                (
                    ((driving_key, rowid),),
                    self._fragment(driving, driving_label, row, shared),
                )
            )

        for join, (table, label) in zip(statement.joins, sources[1:]):
            contexts = self._apply_join(contexts, join, table, label, shared)

        if statement.where is not None:
            contexts = [
                context
                for context in contexts
                if predicate_holds(statement.where, context[1])
            ]
        return contexts

    def _apply_join(
        self,
        contexts: List[Context],
        join: JoinClause,
        table: HeapTable,
        label: str,
        shared: frozenset,
    ) -> List[Context]:
        table_key = table.name.lower()
        right_rows: List[Tuple[Touched, Dict[str, SQLValue]]] = [
            ((table_key, rowid), self._fragment(table, label, row, shared))
            for rowid, row in table.scan()
        ]
        null_fragment = self._fragment(table, label, None, shared)

        # Hash-join fast path: ON is `left_col = right_col` where one
        # side resolves against the left contexts and the other against
        # the joined table's fragment.
        equi = self._equi_join_keys(join.condition, contexts, right_rows)
        result: List[Context] = []
        if equi is not None:
            left_key, right_key = equi
            buckets: Dict[SQLValue, List[Tuple[Touched, Dict[str, SQLValue]]]]
            buckets = {}
            for touched, fragment in right_rows:
                value = fragment[right_key]
                if value is None:
                    continue
                buckets.setdefault(value, []).append((touched, fragment))
            for touched, context in contexts:
                value = context.get(left_key)
                matches = buckets.get(value, []) if value is not None else []
                for right_touched, fragment in matches:
                    result.append(
                        (touched + (right_touched,), {**context, **fragment})
                    )
                if not matches and join.outer:
                    result.append((touched, {**context, **null_fragment}))
            return result

        # General nested-loop join.
        for touched, context in contexts:
            matched = False
            for right_touched, fragment in right_rows:
                merged = {**context, **fragment}
                if predicate_holds(join.condition, merged):
                    result.append((touched + (right_touched,), merged))
                    matched = True
            if not matched and join.outer:
                result.append((touched, {**context, **null_fragment}))
        return result

    @staticmethod
    def _equi_join_keys(
        condition: Expression,
        contexts: List[Context],
        right_rows: List[Tuple[Touched, Dict[str, SQLValue]]],
    ) -> Optional[Tuple[str, str]]:
        if not isinstance(condition, Comparison) or condition.op != "=":
            return None
        if not isinstance(condition.left, ColumnRef) or not isinstance(
            condition.right, ColumnRef
        ):
            return None
        if not contexts or not right_rows:
            return None
        left_keys = contexts[0][1]
        right_keys = right_rows[0][1]
        a = condition.left.name.lower()
        b = condition.right.name.lower()
        if a in left_keys and b in right_keys and b not in left_keys:
            return a, b
        if b in left_keys and a in right_keys and a not in left_keys:
            return b, a
        return None

    # -- SELECT: shaping ------------------------------------------------------

    def execute_select(self, statement: SelectStatement) -> ResultSet:
        # Bind any WHERE/HAVING subqueries first; the tuples they read
        # are prepended to the final result's `touched` list.
        subquery_touched: List[Touched] = []
        bound_where = self._bind_subqueries(statement.where, subquery_touched)
        bound_having = self._bind_subqueries(
            statement.having, subquery_touched
        )
        if (
            bound_where is not statement.where
            or bound_having is not statement.having
        ):
            from dataclasses import replace

            statement = replace(
                statement, where=bound_where, having=bound_having
            )
        result = self._execute_bound_select(statement)
        if subquery_touched:
            result.touched = subquery_touched + result.touched
        return result

    def _execute_bound_select(self, statement: SelectStatement) -> ResultSet:
        contexts = self._collect_contexts(statement)
        has_aggregate = any(item.aggregate for item in statement.items)

        if statement.group_by:
            return self._grouped_result(statement, contexts)
        if has_aggregate:
            return self._aggregate_result(statement, contexts)

        if statement.order_by:
            contexts = self._sorted(contexts, statement.order_by)

        sources = self._select_sources(statement)
        columns = self._output_columns(statement, sources)
        projected: List[Tuple[Tuple[Touched, ...], Tuple[SQLValue, ...]]] = []
        for touched, context in contexts:
            projected.append(
                (touched, self._project(statement, sources, context))
            )

        if statement.distinct:
            seen = set()
            unique = []
            for touched, row in projected:
                key = tuple(sort_key(value) for value in row)
                if key not in seen:
                    seen.add(key)
                    unique.append((touched, row))
            projected = unique

        offset = statement.offset or 0
        if offset:
            projected = projected[offset:]
        if statement.limit is not None:
            projected = projected[: statement.limit]

        driving = self.catalog.table(statement.table)
        return ResultSet(
            columns=columns,
            rows=[row for _, row in projected],
            rowids=[
                rowid
                for touched, _ in projected
                for name, rowid in touched[:1]
            ],
            touched=[
                pair for touched, _ in projected for pair in touched
            ],
            table=driving.name,
            rowcount=len(projected),
            statement_kind="select",
        )

    def _output_columns(
        self,
        statement: SelectStatement,
        sources: List[Tuple[HeapTable, str]],
    ) -> List[str]:
        columns: List[str] = []
        for item in statement.items:
            if item.star:
                for table, _label in sources:
                    columns.extend(table.schema.column_names())
            elif item.alias:
                columns.append(item.alias)
            elif item.aggregate:
                columns.append(self._aggregate_label(item))
            else:
                columns.append(str(item.expression))
        return columns

    def _project(
        self,
        statement: SelectStatement,
        sources: List[Tuple[HeapTable, str]],
        context: Dict[str, SQLValue],
    ) -> Tuple[SQLValue, ...]:
        values: List[SQLValue] = []
        for item in statement.items:
            if item.star:
                for table, label in sources:
                    values.extend(
                        context[f"{label}.{column.name.lower()}"]
                        for column in table.schema.columns
                    )
            else:
                values.append(item.expression.evaluate(context))
        return tuple(values)

    def _sorted(
        self, contexts: List[Context], order_by: Sequence[OrderItem]
    ) -> List[Context]:
        result = list(contexts)
        for item in reversed(order_by):
            result.sort(
                key=lambda pair: sort_key(item.expression.evaluate(pair[1])),
                reverse=item.descending,
            )
        return result

    # -- aggregates -------------------------------------------------------------

    def _aggregate_result(
        self, statement: SelectStatement, contexts: List[Context]
    ) -> ResultSet:
        for item in statement.items:
            if not item.aggregate:
                raise ExecutionError(
                    "mixing aggregates with plain columns requires GROUP BY"
                )
        columns: List[str] = []
        values: List[SQLValue] = []
        for item in statement.items:
            columns.append(item.alias or self._aggregate_label(item))
            values.append(self._compute_aggregate(item, contexts))
        rows = [tuple(values)]
        rowids = [
            rowid for touched, _ in contexts for _name, rowid in touched[:1]
        ]
        touched = [pair for group, _ in contexts for pair in group]
        # LIMIT/OFFSET must trim rowids/touched consistently with rows
        # (the plain and grouped paths already do): an aggregate row
        # dropped by OFFSET or LIMIT 0 was never served, so its
        # contributing tuples must not be charged or recorded.
        offset = statement.offset or 0
        if offset:
            rows = rows[offset:]
        if statement.limit is not None:
            rows = rows[: statement.limit]
        if not rows:
            rowids = []
            touched = []
        return ResultSet(
            columns=columns,
            rows=rows,
            rowids=rowids,
            touched=touched,
            table=statement.table,
            rowcount=len(rows),
            statement_kind="select",
        )

    def _grouped_result(
        self, statement: SelectStatement, contexts: List[Context]
    ) -> ResultSet:
        for item in statement.items:
            if item.star:
                raise ExecutionError("SELECT * is not valid with GROUP BY")
        groups: Dict[Tuple, List[Context]] = {}
        order: List[Tuple] = []
        for context in contexts:
            key = tuple(
                sort_key(expression.evaluate(context[1]))
                for expression in statement.group_by
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(context)

        columns: List[str] = [
            item.alias
            or (
                self._aggregate_label(item)
                if item.aggregate
                else str(item.expression)
            )
            for item in statement.items
        ]

        rows: List[Tuple[SQLValue, ...]] = []
        row_touched: List[List[Touched]] = []
        for key in order:
            members = groups[key]
            first_context = members[0][1]
            values: List[SQLValue] = []
            for item in statement.items:
                if item.aggregate:
                    values.append(self._compute_aggregate(item, members))
                else:
                    values.append(item.expression.evaluate(first_context))
            if statement.having is not None:
                having_context = self._having_context(
                    statement, columns, values, first_context
                )
                if not predicate_holds(statement.having, having_context):
                    continue
            rows.append(tuple(values))
            row_touched.append(
                [pair for touched, _ in members for pair in touched]
            )

        combined = list(zip(rows, row_touched))
        if statement.order_by:
            combined = self._sort_grouped(combined, columns, statement)

        offset = statement.offset or 0
        if offset:
            combined = combined[offset:]
        if statement.limit is not None:
            combined = combined[: statement.limit]

        return ResultSet(
            columns=columns,
            rows=[row for row, _ in combined],
            rowids=[
                rowid
                for _, touched in combined
                for name, rowid in touched[:1]
            ],
            touched=[pair for _, touched in combined for pair in touched],
            table=statement.table,
            rowcount=len(combined),
            statement_kind="select",
        )

    def _sort_grouped(self, combined, columns, statement):
        """Stable multi-key ORDER BY over grouped output rows.

        Sort keys may reference select-list aliases or aggregate labels.
        """
        lowered = [column.lower() for column in columns]

        def context_of(row):
            return dict(zip(lowered, row))

        result = list(combined)
        for item in reversed(statement.order_by):
            result.sort(
                key=lambda pair: sort_key(
                    item.expression.evaluate(context_of(pair[0]))
                ),
                reverse=item.descending,
            )
        return result

    def _having_context(
        self, statement, columns, values, first_context
    ) -> Dict[str, SQLValue]:
        """Context for HAVING: group-row values by alias/label, plus the
        underlying first-row context for grouping columns."""
        context = dict(first_context)
        for column, value in zip(columns, values):
            context[column.lower()] = value
        return context

    @staticmethod
    def _aggregate_label(item: SelectItem) -> str:
        inner = "*" if item.expression is None else str(item.expression)
        prefix = "DISTINCT " if item.distinct else ""
        return f"{item.aggregate}({prefix}{inner})"

    @staticmethod
    def _compute_aggregate(
        item: SelectItem, contexts: List[Context]
    ) -> SQLValue:
        func = item.aggregate
        if func == "COUNT" and item.expression is None:
            return len(contexts)
        assert item.expression is not None
        observed = [
            item.expression.evaluate(context) for _, context in contexts
        ]
        return Executor._aggregate_of_values(func, item.distinct, observed)

    @staticmethod
    def _aggregate_of_values(
        func: str, distinct: bool, observed: List[SQLValue]
    ) -> SQLValue:
        """Aggregate already-evaluated values.

        Shared by the classic and vectorized executors so both paths
        aggregate bit-identically — including Python's sequential
        ``sum`` order for SUM/AVG (numpy's pairwise summation rounds
        differently and must never be substituted here).
        """
        observed = [value for value in observed if value is not None]
        if distinct:
            unique: List[SQLValue] = []
            seen = set()
            for value in observed:
                key = sort_key(value)
                if key not in seen:
                    seen.add(key)
                    unique.append(value)
            observed = unique
        if func == "COUNT":
            return len(observed)
        if not observed:
            return None
        if func == "MIN":
            return min(observed, key=sort_key)
        if func == "MAX":
            return max(observed, key=sort_key)
        for value in observed:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ExecutionError(f"{func} expects numeric values")
        if func == "SUM":
            return sum(observed)
        if func == "AVG":
            return sum(observed) / len(observed)
        raise ExecutionError(f"unknown aggregate {func!r}")

    # -- DML ------------------------------------------------------------------

    def execute_insert(self, statement: InsertStatement) -> ResultSet:
        table = self.catalog.table(statement.table)
        schema = table.schema
        inserted: List[int] = []
        for value_exprs in statement.rows:
            values = [expression.evaluate({}) for expression in value_exprs]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise ExecutionError(
                        f"INSERT specifies {len(statement.columns)} columns "
                        f"but {len(values)} values"
                    )
                row = schema.row_from_mapping(dict(zip(statement.columns, values)))
            else:
                row = schema.validate_row(values)
            inserted.append(table.insert(row))
        key = table.name.lower()
        return ResultSet(
            table=table.name,
            rowids=inserted,
            touched=[(key, rowid) for rowid in inserted],
            rowcount=len(inserted),
            statement_kind="insert",
        )

    def execute_update(self, statement: UpdateStatement) -> ResultSet:
        from .planner import candidate_rowids, choose_access_path

        subquery_touched: List[Touched] = []
        bound = self._bind_subqueries(statement.where, subquery_touched)
        if bound is not statement.where:
            from dataclasses import replace

            statement = replace(statement, where=bound)
        table = self.catalog.table(statement.table)
        schema = table.schema
        names = [c.name.lower() for c in schema.columns]
        positions = {
            column: schema.position(column)
            for column, _ in statement.assignments
        }
        path = choose_access_path(self.catalog, table, statement.where)
        # Materialize targets first: mutating during a scan is unsafe.
        targets: List[Tuple[int, Row]] = []
        for rowid in candidate_rowids(self.catalog, table, path):
            row = table.get(rowid)
            if row is None:
                continue
            if predicate_holds(statement.where, dict(zip(names, row))):
                targets.append((rowid, row))
        updated: List[int] = []
        for rowid, row in targets:
            context = dict(zip(names, row))
            new_row = list(row)
            for column, expression in statement.assignments:
                new_row[positions[column]] = expression.evaluate(context)
            table.update(rowid, new_row)
            updated.append(rowid)
        key = table.name.lower()
        return ResultSet(
            table=table.name,
            rowids=updated,
            touched=[(key, rowid) for rowid in updated],
            rowcount=len(updated),
            statement_kind="update",
        )

    def execute_delete(self, statement: DeleteStatement) -> ResultSet:
        from .planner import candidate_rowids, choose_access_path

        subquery_touched: List[Touched] = []
        bound = self._bind_subqueries(statement.where, subquery_touched)
        if bound is not statement.where:
            from dataclasses import replace

            statement = replace(statement, where=bound)
        table = self.catalog.table(statement.table)
        names = [c.name.lower() for c in table.schema.columns]
        path = choose_access_path(self.catalog, table, statement.where)
        targets: List[int] = []
        for rowid in candidate_rowids(self.catalog, table, path):
            row = table.get(rowid)
            if row is None:
                continue
            if predicate_holds(statement.where, dict(zip(names, row))):
                targets.append(rowid)
        for rowid in targets:
            table.delete(rowid)
        key = table.name.lower()
        return ResultSet(
            table=table.name,
            rowids=targets,
            touched=[(key, rowid) for rowid in targets],
            rowcount=len(targets),
            statement_kind="delete",
        )

    # -- DDL ------------------------------------------------------------------

    def execute_create_table(self, statement: CreateTableStatement) -> ResultSet:
        schema = TableSchema(statement.table, list(statement.columns))
        self.catalog.create_table(schema, if_not_exists=statement.if_not_exists)
        return ResultSet(table=statement.table, statement_kind="ddl")

    def execute_create_index(self, statement: CreateIndexStatement) -> ResultSet:
        self.catalog.create_index(
            statement.name, statement.table, statement.column, statement.kind
        )
        return ResultSet(table=statement.table, statement_kind="ddl")

    def execute_drop_table(self, statement: DropTableStatement) -> ResultSet:
        dropped = self.catalog.drop_table(
            statement.table, if_exists=statement.if_exists
        )
        return ResultSet(
            table=statement.table,
            rowcount=1 if dropped else 0,
            statement_kind="ddl",
        )
