"""Crash recovery: snapshot + journal-replay, and checkpointing.

This module ties :mod:`repro.engine.persistence` (atomic snapshots) and
:mod:`repro.engine.journal` (the write-ahead journal) into a recovery
story:

- :func:`checkpoint_database` writes a snapshot that records the
  journal's high-water ``seq`` and then truncates the journal — all
  under one exclusive write lock, so the snapshot and the cut are one
  point in time.
- :func:`recover_database` loads the latest valid snapshot (if any) and
  re-applies the journal's surviving records *after* the snapshot's
  ``seq``. A crash between "snapshot replaced" and "journal truncated"
  therefore cannot double-apply: those records' sequence numbers are at
  or below the snapshot's recorded high-water mark and are skipped.
- :func:`replay_journal` / :func:`replay_entry` are the building blocks
  the service layer reuses: each replayed record reports which table
  and rowids it touched (and the timestamp it originally committed at),
  so the delay guard's update-rate trackers can be rebuilt faithfully.

Torn journal tails are truncated, not fatal — see
:mod:`repro.engine.journal`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .database import Database
from .errors import JournalError
from .journal import JournalScan, scan_journal
from .persistence import (
    PersistenceError,
    atomic_write_json,
    dump_database,
    load_database,
)
from .schema import Column, TableSchema


@dataclass(frozen=True)
class ReplayedEntry:
    """One journal record re-applied during recovery.

    Attributes:
        seq: the record's journal sequence number.
        kind: ``"sql"``, ``"rows"``, or ``"schema"``.
        table: the driving table the record touched, if any.
        rowids: rowids the re-applied mutation affected (inserted,
            updated, or deleted) — the keys the guard's update trackers
            are rebuilt from.
        ts: service-clock timestamp the record was originally committed
            at, when the journal was stamped with one.
        tracked: whether the statement originally passed through the
            delay guard — only these re-feed the guard's update
            trackers on recovery.
    """

    seq: int
    kind: str
    table: Optional[str]
    rowids: Tuple[int, ...]
    ts: Optional[float]
    tracked: bool = False


@dataclass
class RecoveryReport:
    """What a recovery pass did, for operators and metrics.

    Attributes:
        snapshot_loaded: whether a snapshot file was found and loaded.
        snapshot_seq: the journal ``seq`` the snapshot covered (0 when
            none, or when the snapshot predates checkpointing).
        replayed_statements: journal records re-applied.
        skipped_records: records at or below ``snapshot_seq``, already
            contained in the snapshot (non-zero exactly when a crash hit
            the checkpoint's snapshot/truncate window).
        torn_bytes_truncated: invalid trailing journal bytes dropped.
        last_seq: highest journal sequence number seen.
        duration_seconds: wall-clock time recovery took.
        entries: per-record replay details, in journal order.
    """

    snapshot_loaded: bool = False
    snapshot_seq: int = 0
    replayed_statements: int = 0
    skipped_records: int = 0
    torn_bytes_truncated: int = 0
    last_seq: int = 0
    duration_seconds: float = 0.0
    entries: List[ReplayedEntry] = field(default_factory=list)


def replay_entry(database: Database, payload: Dict) -> ReplayedEntry:
    """Re-apply one journal payload to ``database``.

    Dispatches on the payload's ``"k"`` discriminator:

    - ``"sql"`` — re-execute the recorded SQL text.
    - ``"rows"`` — re-run a bulk load (:meth:`Database.insert_rows`).
    - ``"schema"`` — re-create a table from its serialised columns.

    An unknown kind raises :class:`JournalError`: it means the journal
    was written by newer code, and silently skipping it would recover a
    diverged database.
    """
    kind = payload.get("k")
    seq = int(payload.get("seq", 0))
    ts = payload.get("ts")
    tracked = bool(payload.get("g"))
    if kind == "sql":
        result = database.execute(payload["sql"])
        return ReplayedEntry(
            seq=seq,
            kind=kind,
            table=result.table,
            rowids=tuple(result.rowids),
            ts=ts,
            tracked=tracked,
        )
    if kind == "rows":
        rowids = database.insert_rows(payload["table"], payload["rows"])
        return ReplayedEntry(
            seq=seq,
            kind=kind,
            table=payload["table"],
            rowids=tuple(rowids),
            ts=ts,
            tracked=tracked,
        )
    if kind == "schema":
        database.create_table(
            TableSchema(
                payload["table"],
                [Column.from_dict(column) for column in payload["columns"]],
            )
        )
        return ReplayedEntry(
            seq=seq, kind=kind, table=payload["table"], rowids=(), ts=ts
        )
    raise JournalError(f"unknown journal record kind {kind!r}")


def replay_journal(
    database: Database,
    journal_path: Union[str, Path],
    after_seq: int = 0,
) -> Tuple[List[ReplayedEntry], JournalScan]:
    """Re-apply a journal's records with ``seq > after_seq``.

    The database must not have a journal attached — replayed statements
    must not be re-journalled. Returns the replayed entries (in journal
    order) and the underlying scan, whose ``torn``/byte counts feed the
    recovery report.
    """
    if database.journal is not None:
        raise JournalError(
            "detach the journal before replay: re-applying records "
            "would re-journal them"
        )
    scan = scan_journal(journal_path)
    entries = []
    for record in scan.records:
        if record.seq <= after_seq:
            continue
        entries.append(replay_entry(database, record.payload))
    return entries, scan


def checkpoint_database(
    database: Database, snapshot_path: Union[str, Path]
) -> int:
    """Snapshot the database atomically, then truncate its journal.

    Runs entirely under the exclusive write side of the engine lock, so
    the snapshot, its recorded ``journal_seq``, and the truncation are a
    single point in time — no committed statement can fall between them.
    Returns the ``journal_seq`` the snapshot covers (0 when the database
    has no journal attached).
    """
    with database.write_txn():
        journal = database.journal
        payload = dump_database(database)
        seq = journal.last_seq if journal is not None else 0
        payload["journal_seq"] = seq
        atomic_write_json(snapshot_path, payload, indent=1)
        if journal is not None:
            journal.truncate()
        return seq


def recover_database(
    snapshot_path: Optional[Union[str, Path]] = None,
    journal_path: Optional[Union[str, Path]] = None,
) -> Tuple[Database, RecoveryReport]:
    """Rebuild a database from its snapshot and journal after a crash.

    Either path may be absent or point at a missing file — recovery of a
    never-checkpointed database is just journal replay from empty, and
    recovery without a journal is just a snapshot load. The journal is
    *not* left attached; callers that want to keep journalling should
    open a :class:`~repro.engine.journal.WriteAheadJournal` on the same
    path (which truncates the torn tail durably) and attach it.
    """
    started = time.perf_counter()
    report = RecoveryReport()
    database = None
    if snapshot_path is not None and Path(snapshot_path).exists():
        try:
            payload = json.loads(Path(snapshot_path).read_text())
        except json.JSONDecodeError as error:
            raise PersistenceError(
                f"corrupt snapshot file: {error}"
            ) from error
        database = load_database(payload)
        report.snapshot_loaded = True
        report.snapshot_seq = int(payload.get("journal_seq", 0))
    if database is None:
        database = Database()
    if journal_path is not None:
        entries, scan = replay_journal(
            database, journal_path, after_seq=report.snapshot_seq
        )
        report.entries = entries
        report.replayed_statements = len(entries)
        report.skipped_records = len(scan.records) - len(entries)
        report.last_seq = max(scan.last_seq, report.snapshot_seq)
        if scan.torn:
            report.torn_bytes_truncated = scan.total_bytes - scan.valid_bytes
    else:
        report.last_seq = report.snapshot_seq
    report.duration_seconds = time.perf_counter() - started
    return database, report
