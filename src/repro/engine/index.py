"""Secondary indexes: hash (equality) and ordered (range).

Indexes subscribe to their table's mutation stream, so they stay
consistent automatically. The ordered index keeps a sorted key list with
binary-search insertion — O(log n) search, O(n) insert worst case — which
is ample for the workloads in this reproduction while remaining simple
and correct.

Concurrency audit: ``lookup``/``lookup_in``/``range`` are pure reads.
Indexes are built eagerly in ``__init__`` (CREATE INDEX runs under the
engine's exclusive write side) and updated only via the mutation stream,
which also fires under the write side — there is no lazily-built state
for a reader to trip over, so no read-to-write lock upgrade is needed.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .errors import CatalogError
from .table import HeapTable, Row
from .types import SQLValue, sort_key


class Index:
    """Base class: an index over a single column of a heap table."""

    kind = "abstract"

    def __init__(self, name: str, table: HeapTable, column: str):
        self.name = name
        self.table = table
        self.column = table.schema.column(column).name
        self._position = table.schema.position(column)
        # Build from existing rows, then subscribe for future changes.
        for rowid, row in table.scan():
            self._add(row[self._position], rowid)
        table.subscribe(self._on_mutation)

    def detach(self) -> None:
        """Stop tracking the table (used when dropping the index)."""
        self.table.unsubscribe(self._on_mutation)

    def _on_mutation(
        self, event: str, rowid: int, row: Row, old: Optional[Row] = None
    ) -> None:
        key = row[self._position]
        if event == "insert":
            self._add(key, rowid)
        elif event == "delete":
            self._remove(key, rowid)
        elif event == "update":
            # The observer receives the new row; find and remove the old
            # entry for this rowid, then add the new one.
            self._remove_rowid(rowid)
            self._add(key, rowid)

    # Subclass interface -----------------------------------------------------

    def _add(self, key: SQLValue, rowid: int) -> None:
        raise NotImplementedError

    def _remove(self, key: SQLValue, rowid: int) -> None:
        raise NotImplementedError

    def _remove_rowid(self, rowid: int) -> None:
        raise NotImplementedError

    def lookup(self, key: SQLValue) -> List[int]:
        """Return rowids whose indexed column equals ``key``."""
        raise NotImplementedError


class HashIndex(Index):
    """Equality-only index backed by a dict of key -> rowid set."""

    kind = "hash"

    def __init__(self, name: str, table: HeapTable, column: str):
        self._buckets: Dict[SQLValue, Set[int]] = {}
        self._by_rowid: Dict[int, SQLValue] = {}
        super().__init__(name, table, column)

    def _add(self, key: SQLValue, rowid: int) -> None:
        self._buckets.setdefault(key, set()).add(rowid)
        self._by_rowid[rowid] = key

    def _remove(self, key: SQLValue, rowid: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[key]
        self._by_rowid.pop(rowid, None)

    def _remove_rowid(self, rowid: int) -> None:
        key = self._by_rowid.get(rowid)
        if rowid in self._by_rowid:
            self._remove(key, rowid)

    def lookup(self, key: SQLValue) -> List[int]:
        return sorted(self._buckets.get(key, ()))

    def __repr__(self) -> str:
        return f"HashIndex({self.name!r} on {self.table.name}.{self.column})"


class OrderedIndex(Index):
    """Sorted index supporting equality and range lookups.

    NULL keys are excluded from range scans (SQL semantics: comparisons
    with NULL are unknown) but are still tracked for equality via
    :meth:`lookup` with ``key=None`` returning nothing, matching the
    behaviour of ``WHERE col = NULL`` (never true).
    """

    kind = "ordered"

    def __init__(self, name: str, table: HeapTable, column: str):
        self._keys: List[Tuple] = []  # sort_key(value)
        self._entries: List[Tuple[SQLValue, int]] = []  # parallel (value, rowid)
        self._by_rowid: Dict[int, SQLValue] = {}
        self._nulls: Set[int] = set()
        super().__init__(name, table, column)

    def _add(self, key: SQLValue, rowid: int) -> None:
        if key is None:
            self._nulls.add(rowid)
            self._by_rowid[rowid] = None
            return
        composite = (sort_key(key), rowid)
        position = bisect.bisect_left(self._keys, composite)
        self._keys.insert(position, composite)
        self._entries.insert(position, (key, rowid))
        self._by_rowid[rowid] = key

    def _remove(self, key: SQLValue, rowid: int) -> None:
        if key is None:
            self._nulls.discard(rowid)
            self._by_rowid.pop(rowid, None)
            return
        composite = (sort_key(key), rowid)
        position = bisect.bisect_left(self._keys, composite)
        if position < len(self._keys) and self._keys[position] == composite:
            del self._keys[position]
            del self._entries[position]
        self._by_rowid.pop(rowid, None)

    def _remove_rowid(self, rowid: int) -> None:
        if rowid in self._by_rowid:
            self._remove(self._by_rowid[rowid], rowid)

    def lookup(self, key: SQLValue) -> List[int]:
        if key is None:
            return []
        target = sort_key(key)
        low = bisect.bisect_left(self._keys, (target, 0))
        result = []
        for position in range(low, len(self._keys)):
            value, rowid = self._entries[position]
            if sort_key(value) != target:
                break
            result.append(rowid)
        return result

    def range(
        self,
        low: Optional[SQLValue] = None,
        high: Optional[SQLValue] = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> List[int]:
        """Return rowids with indexed value in the given range.

        ``None`` bounds are unbounded on that side. NULL values never
        match a range.
        """
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._keys, (sort_key(low), 0))
        else:
            start = bisect.bisect_right(self._keys, (sort_key(low), float("inf")))
        result = []
        high_key = sort_key(high) if high is not None else None
        for position in range(start, len(self._keys)):
            value, rowid = self._entries[position]
            value_key = sort_key(value)
            if high_key is not None:
                if high_inclusive and value_key > high_key:
                    break
                if not high_inclusive and value_key >= high_key:
                    break
            result.append(rowid)
        return result

    def min_key(self) -> Optional[SQLValue]:
        """Smallest non-NULL indexed value, or None if empty."""
        return self._entries[0][0] if self._entries else None

    def max_key(self) -> Optional[SQLValue]:
        """Largest non-NULL indexed value, or None if empty."""
        return self._entries[-1][0] if self._entries else None

    def __repr__(self) -> str:
        return f"OrderedIndex({self.name!r} on {self.table.name}.{self.column})"


def create_index(
    name: str, table: HeapTable, column: str, kind: str = "ordered"
) -> Index:
    """Factory: build a ``hash`` or ``ordered`` index on ``table.column``."""
    if kind == "hash":
        return HashIndex(name, table, column)
    if kind == "ordered":
        return OrderedIndex(name, table, column)
    raise CatalogError(f"unknown index kind {kind!r}")
