"""Table schemas: named, typed columns with lightweight constraints."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import CatalogError, ConstraintError
from .types import DataType, SQLValue


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Attributes:
        name: column name (case-insensitive for lookup, case-preserving
            for display).
        dtype: the declared :class:`~repro.engine.types.DataType`.
        nullable: whether NULL is permitted.
        primary_key: whether this column is (part of) the primary key.
    """

    name: str
    dtype: DataType
    nullable: bool = True
    primary_key: bool = False

    def validate(self, value: SQLValue) -> SQLValue:
        """Check ``value`` against this column's type and nullability."""
        if value is None:
            if not self.nullable or self.primary_key:
                raise ConstraintError(f"column {self.name!r} may not be NULL")
            return None
        return self.dtype.validate(value, self.name)

    def to_dict(self) -> Dict:
        """JSON-compatible form, used by snapshots and journal records."""
        return {
            "name": self.name,
            "type": self.dtype.value,
            "nullable": self.nullable,
            "primary_key": self.primary_key,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Column":
        """Rebuild a column from :meth:`to_dict` output."""
        return cls(
            name=payload["name"],
            dtype=DataType.from_name(payload["type"]),
            nullable=payload["nullable"],
            primary_key=payload["primary_key"],
        )


class TableSchema:
    """An ordered collection of :class:`Column` objects.

    Provides positional and by-name access. Column-name lookup is
    case-insensitive, matching common SQL behaviour.
    """

    def __init__(self, name: str, columns: Sequence[Column]):
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in self._index:
                raise CatalogError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            self._index[key] = position
        pk = [c.name for c in self.columns if c.primary_key]
        if len(pk) > 1:
            raise CatalogError(
                f"table {name!r} declares multiple primary keys: {pk}"
            )
        self.primary_key: Optional[str] = pk[0] if pk else None

    # -- lookups ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._index

    def position(self, name: str) -> int:
        """Return the 0-based position of ``name`` or raise CatalogError."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise CatalogError(
                f"no column {name!r} in table {self.name!r}"
            ) from None

    def column(self, name: str) -> Column:
        """Return the :class:`Column` named ``name``."""
        return self.columns[self.position(name)]

    def column_names(self) -> List[str]:
        """Return column names in declaration order."""
        return [c.name for c in self.columns]

    # -- validation ------------------------------------------------------

    def validate_row(self, values: Sequence[SQLValue]) -> Tuple[SQLValue, ...]:
        """Validate a full positional row, returning the coerced tuple."""
        if len(values) != len(self.columns):
            raise ConstraintError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        return tuple(
            column.validate(value)
            for column, value in zip(self.columns, values)
        )

    def row_from_mapping(self, mapping: Dict[str, SQLValue]) -> Tuple[SQLValue, ...]:
        """Build a positional row from a column→value mapping.

        Missing columns default to NULL (validated against nullability);
        unknown keys raise :class:`~repro.engine.errors.CatalogError`.
        """
        for key in mapping:
            if key not in self:
                raise CatalogError(
                    f"no column {key!r} in table {self.name!r}"
                )
        lowered = {key.lower(): value for key, value in mapping.items()}
        return self.validate_row(
            [lowered.get(c.name.lower()) for c in self.columns]
        )

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.dtype.value}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"


def schema(name: str, *specs: Tuple) -> TableSchema:
    """Convenience constructor for a :class:`TableSchema`.

    Each spec is ``(name, dtype)`` or ``(name, dtype, options...)`` where
    options are the strings ``"pk"`` and/or ``"not null"``.

    >>> s = schema("t", ("id", DataType.INTEGER, "pk"), ("v", DataType.TEXT))
    >>> s.primary_key
    'id'
    """
    columns = []
    for spec in specs:
        col_name, dtype = spec[0], spec[1]
        options = {str(opt).lower() for opt in spec[2:]}
        columns.append(
            Column(
                name=col_name,
                dtype=dtype,
                nullable="not null" not in options and "pk" not in options,
                primary_key="pk" in options,
            )
        )
    return TableSchema(name, columns)
