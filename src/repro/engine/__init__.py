"""A pure-Python relational database engine.

This subpackage is the *substrate* for the delay-defense reproduction:
the paper deployed its scheme on a commercial RDBMS, so we provide our
own — typed schemas, heap tables with stable rowids, hash/ordered
secondary indexes, an SQL subset, a rule-based planner, and a statement
executor. The delay layer (:mod:`repro.core`) wraps :class:`Database`
without modifying it.
"""

from .catalog import Catalog
from .database import Database, EngineStats
from .durability import (
    RecoveryReport,
    ReplayedEntry,
    checkpoint_database,
    recover_database,
    replay_entry,
    replay_journal,
)
from .errors import (
    CatalogError,
    ConstraintError,
    EngineError,
    ExecutionError,
    JournalError,
    ParseError,
    TypeMismatchError,
)
from .executor import Executor, ResultSet
from .index import HashIndex, Index, OrderedIndex, create_index
from .journal import (
    JournalRecord,
    JournalScan,
    WriteAheadJournal,
    scan_journal,
)
from .persistence import (
    PersistenceError,
    atomic_write_json,
    dump_database,
    export_csv,
    import_csv,
    load_database,
    open_database,
    save_database,
)
from .planner import AccessPath, candidate_rowids, choose_access_path
from .rwlock import LockError, ReadWriteLock
from .schema import Column, TableSchema, schema
from .table import HeapTable
from .transactions import TransactionError, UndoLog
from .types import DataType, SQLValue
from .vectorized import ScanWorkerPool, VectorizedExecutor

__all__ = [
    "AccessPath",
    "Catalog",
    "CatalogError",
    "Column",
    "ConstraintError",
    "DataType",
    "Database",
    "EngineError",
    "EngineStats",
    "ExecutionError",
    "Executor",
    "HashIndex",
    "HeapTable",
    "Index",
    "JournalError",
    "JournalRecord",
    "JournalScan",
    "OrderedIndex",
    "ParseError",
    "PersistenceError",
    "RecoveryReport",
    "ReplayedEntry",
    "ResultSet",
    "SQLValue",
    "ScanWorkerPool",
    "TableSchema",
    "TransactionError",
    "TypeMismatchError",
    "UndoLog",
    "VectorizedExecutor",
    "WriteAheadJournal",
    "atomic_write_json",
    "candidate_rowids",
    "checkpoint_database",
    "choose_access_path",
    "create_index",
    "dump_database",
    "export_csv",
    "import_csv",
    "load_database",
    "open_database",
    "recover_database",
    "replay_entry",
    "replay_journal",
    "save_database",
    "scan_journal",
    "schema",
]
