"""Compile ``expr`` AST nodes into batch evaluators over column arrays.

The compiler turns a WHERE-clause expression into a closure evaluating
the predicate for a whole selection of rows at once, returning a
three-valued mask (:class:`Tri`). Two tiers:

* **numpy tier** — comparisons on INTEGER/FLOAT columns where
  exactness is *provable*: int64-vs-int64 comparisons are exact, and
  int-column-vs-float-literal comparisons are canonicalised into pure
  integer comparisons (``col < 3.5`` becomes ``col <= 3``) instead of
  casting the column to float64, which would silently collapse values
  beyond 2**53 — the precision bug class this module exists to avoid.
  Float columns compare as float64 (exact), and integer literals only
  ride the float path when ``float(lit) == lit`` holds exactly.
* **object tier** — everything else falls back to per-row evaluation
  of the *original* scalar semantics (``Expression.evaluate`` against
  a minimal context of just the referenced columns), so LIKE, string
  comparisons, arithmetic, and every error message behave exactly as
  the classic executor's, just without per-row full-fragment dicts.

Unsupported *structure* (an unresolvable column name, a subquery node)
raises :class:`NotVectorizable` at compile time; the caller then runs
the whole statement on the classic executor, which reproduces the
classic behaviour for those shapes by construction. Value-dependent
behaviour (type errors, division by zero) never causes fallback — the
object tier reproduces it.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Tuple

from ..expr import (
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    InSet,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Logical,
    Not,
    ScalarSubquery,
    _as_bool,
    _like_to_regex,
)
from ..types import DataType, SQLValue
from .columns import ColumnBatch, HAVE_NUMPY, _INT64_MAX, _INT64_MIN

if HAVE_NUMPY:
    import numpy as _np


class NotVectorizable(Exception):
    """Raised at compile time when a statement shape is unsupported.

    Callers catch this and fall back to the classic executor; it never
    escapes the engine.
    """


# -- selections -------------------------------------------------------------


class SelView:
    """A batch restricted to a position selection (``None`` = all rows)."""

    __slots__ = ("batch", "positions", "_np_idx")

    def __init__(
        self, batch: ColumnBatch, positions: Optional[List[int]] = None
    ):
        self.batch = batch
        self.positions = positions
        self._np_idx = None

    @property
    def size(self) -> int:
        if self.positions is None:
            return len(self.batch)
        return len(self.positions)

    def values(self, index: int) -> List[SQLValue]:
        """The selected values of one column, as a Python list."""
        column = self.batch.columns[index]
        if self.positions is None:
            return column
        return [column[position] for position in self.positions]

    def np_col(self, index: int):
        """``(values, nulls)`` numpy arrays over the selection, or
        ``(None, None)`` when the column has no exact numpy form."""
        values, nulls = self.batch.numpy_column(index)
        if values is None:
            return (None, None)
        if self.positions is None:
            return (values, nulls)
        if self._np_idx is None:
            self._np_idx = _np.asarray(self.positions, dtype=_np.intp)
        return (values[self._np_idx], nulls[self._np_idx])


# -- three-valued masks -----------------------------------------------------


class Tri:
    """A vector of SQL three-valued truth: per row TRUE, FALSE, or NULL.

    Internally two parallel boolean vectors: ``t`` (exactly TRUE) and
    ``n`` (exactly NULL); FALSE is neither. Numpy arrays when numpy is
    available, plain lists otherwise — the combinators below handle
    both representations.
    """

    __slots__ = ("t", "n")

    def __init__(self, t, n):
        self.t = t
        self.n = n

    @classmethod
    def const(cls, size: int, value: Optional[bool]) -> "Tri":
        if HAVE_NUMPY:
            t = _np.full(size, value is True, dtype=bool)
            n = _np.full(size, value is None, dtype=bool)
            return cls(t, n)
        return cls([value is True] * size, [value is None] * size)

    @classmethod
    def from_rows(cls, truths: List[Optional[bool]]) -> "Tri":
        if HAVE_NUMPY:
            t = _np.fromiter(
                (value is True for value in truths),
                dtype=bool,
                count=len(truths),
            )
            n = _np.fromiter(
                (value is None for value in truths),
                dtype=bool,
                count=len(truths),
            )
            return cls(t, n)
        return cls(
            [value is True for value in truths],
            [value is None for value in truths],
        )

    def true_positions(self) -> List[int]:
        """Indices (within the selection) where the value is TRUE."""
        if HAVE_NUMPY:
            return _np.flatnonzero(self.t).tolist()
        return [i for i, flag in enumerate(self.t) if flag]


def tri_and(a: Tri, b: Tri) -> Tri:
    if HAVE_NUMPY:
        t = a.t & b.t
        false_a = ~a.t & ~a.n
        false_b = ~b.t & ~b.n
        n = (a.n | b.n) & ~false_a & ~false_b
        return Tri(t, n)
    t, n = [], []
    for at, an, bt, bn in zip(a.t, a.n, b.t, b.n):
        false_either = (not at and not an) or (not bt and not bn)
        t.append(at and bt)
        n.append(not false_either and (an or bn))
    return Tri(t, n)


def tri_or(a: Tri, b: Tri) -> Tri:
    if HAVE_NUMPY:
        t = a.t | b.t
        n = (a.n | b.n) & ~t
        return Tri(t, n)
    t, n = [], []
    for at, an, bt, bn in zip(a.t, a.n, b.t, b.n):
        t.append(at or bt)
        n.append(not (at or bt) and (an or bn))
    return Tri(t, n)


def tri_not(a: Tri) -> Tri:
    if HAVE_NUMPY:
        return Tri(~a.t & ~a.n, a.n)
    return Tri(
        [not t and not n for t, n in zip(a.t, a.n)],
        list(a.n),
    )


# -- name resolution --------------------------------------------------------


class SingleTableResolver:
    """Resolve column references for a single-table statement.

    Accepts ``label.column`` and bare ``column`` spellings, mirroring
    the classic executor's fragment keys for a FROM clause with one
    table (where no name is ever shared). Unknown names raise
    :class:`NotVectorizable` — the classic path's behaviour for them
    (an error per evaluated row, or *no* error on an empty candidate
    set) is subtle enough that falling back is the only way to stay
    bit-identical.
    """

    def __init__(self, batch: ColumnBatch, label: str):
        self._by_name = {}
        for index, name in enumerate(batch.column_names):
            self._by_name[name] = index
            self._by_name[f"{label}.{name}"] = index
        self._dtypes = batch.dtypes

    def resolve(self, name: str) -> Tuple[int, DataType]:
        index = self._by_name.get(name.lower())
        if index is None:
            raise NotVectorizable(f"unresolvable column {name!r}")
        return index, self._dtypes[index]


# -- leaf compilers ---------------------------------------------------------

BatchFilter = Callable[[SelView], Tri]

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!=", "<>": "<>"}


def _object_tier(expr: Expression, resolver) -> BatchFilter:
    """Per-row evaluation of the original scalar semantics.

    Builds a minimal row context holding only the columns the
    expression references, so the per-row cost is proportional to the
    expression, not the schema width. Exactness and error behaviour
    are inherited from ``Expression.evaluate`` itself.
    """
    referenced = {}
    for name in expr.columns():
        key = name.lower()
        if key not in referenced:
            index, _dtype = resolver.resolve(key)
            referenced[key] = index

    def run(view: SelView) -> Tri:
        columns = {
            key: view.values(index) for key, index in referenced.items()
        }
        truths: List[Optional[bool]] = []
        if columns:
            keys = list(columns.keys())
            value_lists = [columns[key] for key in keys]
            for row_values in zip(*value_lists):
                context = dict(zip(keys, row_values))
                truths.append(_as_bool(expr.evaluate(context)))
        else:
            context = {}
            for _ in range(view.size):
                truths.append(_as_bool(expr.evaluate(context)))
        return Tri.from_rows(truths)

    return run


def _np_compare(op: str, values, literal):
    if op == "=":
        return values == literal
    if op in ("!=", "<>"):
        return values != literal
    if op == "<":
        return values < literal
    if op == "<=":
        return values <= literal
    if op == ">":
        return values > literal
    return values >= literal


def _int_op_for_float(op: str, literal: float):
    """Rewrite ``int_col OP float_literal`` as an exact integer test.

    Returns ``("const", truth)`` when the comparison is row-independent
    for every non-NULL integer, or ``("cmp", op2, int_literal)`` for an
    equivalent pure-int comparison. Exact for *all* integers — no
    float64 round trip ever touches the column.
    """
    if math.isnan(literal):
        return ("const", op in ("!=", "<>"))
    if math.isinf(literal):
        positive = literal > 0
        if op in ("!=", "<>"):
            return ("const", True)
        if op == "=":
            return ("const", False)
        if op in ("<", "<="):
            return ("const", positive)
        return ("const", not positive)
    floor = math.floor(literal)
    if literal == floor:  # integral float: compare as the exact int
        return ("cmp", op, floor)
    if op == "=":
        return ("const", False)
    if op in ("!=", "<>"):
        return ("const", True)
    if op in ("<", "<="):  # col < 3.5  <=>  col <= 3
        return ("cmp", "<=", floor)
    return ("cmp", ">=", floor + 1)  # col > 3.5  <=>  col >= 4


def _int_literal_cmp(op: str, literal: int):
    """``int64 column OP unbounded-int literal`` as numpy or constant."""
    if literal > _INT64_MAX:
        if op in ("<", "<=", "!=", "<>"):
            return ("const", True)
        return ("const", False)
    if literal < _INT64_MIN:
        if op in (">", ">=", "!=", "<>"):
            return ("const", True)
        return ("const", False)
    return ("cmp", op, literal)


def _compile_col_lit(
    op: str, index: int, dtype: DataType, literal: SQLValue
) -> Optional[BatchFilter]:
    """Numpy-tier column-vs-literal comparison, or None if not exact."""
    if not HAVE_NUMPY:
        return None
    if literal is None:

        def all_null(view: SelView) -> Tri:
            return Tri.const(view.size, None)

        return all_null
    if isinstance(literal, bool) or not isinstance(literal, (int, float)):
        return None
    if dtype is DataType.INTEGER:
        if isinstance(literal, float):
            plan = _int_op_for_float(op, literal)
        else:
            plan = _int_literal_cmp(op, literal)
    elif dtype is DataType.FLOAT:
        if isinstance(literal, int):
            try:
                as_float = float(literal)
            except OverflowError:
                return None
            if as_float != literal:
                return None
            literal = as_float
        plan = ("cmp", op, literal)
    else:
        return None

    def run(view: SelView) -> Tri:
        values, nulls = view.np_col(index)
        if values is None:
            return None  # signals caller to fall back per call
        if plan[0] == "const":
            t = _np.full(view.size, plan[1], dtype=bool) & ~nulls
        else:
            t = _np_compare(plan[1], values, plan[2]) & ~nulls
        return Tri(t, nulls)

    return run


def _compile_col_col(
    op: str,
    left: Tuple[int, DataType],
    right: Tuple[int, DataType],
) -> Optional[BatchFilter]:
    if not HAVE_NUMPY:
        return None
    left_index, left_dtype = left
    right_index, right_dtype = right
    numeric = (DataType.INTEGER, DataType.FLOAT)
    if left_dtype not in numeric or right_dtype not in numeric:
        return None
    if left_dtype is not right_dtype:
        # int-vs-float column comparison would cast the int column to
        # float64 (lossy beyond 2**53): object tier keeps it exact.
        return None

    def run(view: SelView) -> Tri:
        left_values, left_nulls = view.np_col(left_index)
        right_values, right_nulls = view.np_col(right_index)
        if left_values is None or right_values is None:
            return None
        nulls = left_nulls | right_nulls
        t = _np_compare(op, left_values, right_values) & ~nulls
        return Tri(t, nulls)

    return run


def _with_fallback(
    fast: Optional[BatchFilter], expr: Expression, resolver
) -> BatchFilter:
    """Wrap a numpy-tier closure with a per-call object-tier fallback.

    The numpy tier can decline *at run time* (a column turned out to
    hold an integer outside int64, so no exact array exists); the
    object tier then evaluates that selection exactly.
    """
    slow = None
    if fast is None:
        return _object_tier(expr, resolver)

    def run(view: SelView) -> Tri:
        nonlocal slow
        result = fast(view)
        if result is not None:
            return result
        if slow is None:
            slow = _object_tier(expr, resolver)
        return slow(view)

    return run


def _compile_comparison(node: Comparison, resolver) -> BatchFilter:
    left, right = node.left, node.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        index, dtype = resolver.resolve(left.name)
        fast = _compile_col_lit(node.op, index, dtype, right.value)
        return _with_fallback(fast, node, resolver)
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        index, dtype = resolver.resolve(right.name)
        fast = _compile_col_lit(
            _FLIP[node.op], index, dtype, left.value
        ) if node.op in _FLIP else None
        return _with_fallback(fast, node, resolver)
    if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
        left_resolved = resolver.resolve(left.name)
        right_resolved = resolver.resolve(right.name)
        fast = (
            _compile_col_col(node.op, left_resolved, right_resolved)
            if node.op in _FLIP
            else None
        )
        return _with_fallback(fast, node, resolver)
    return _object_tier(node, resolver)


def _compile_is_null(node: IsNull, resolver) -> BatchFilter:
    if not isinstance(node.operand, ColumnRef):
        return _object_tier(node, resolver)
    index, _dtype = resolver.resolve(node.operand.name)
    negated = node.negated

    def run(view: SelView) -> Tri:
        if HAVE_NUMPY:
            _values, nulls = view.np_col(index)
            if nulls is None:
                nulls = _np.fromiter(
                    (value is None for value in view.values(index)),
                    dtype=bool,
                    count=view.size,
                )
            t = ~nulls if negated else nulls
            return Tri(t, _np.zeros(view.size, dtype=bool))
        truths = [
            (value is not None) if negated else (value is None)
            for value in view.values(index)
        ]
        return Tri(truths, [False] * view.size)

    return run


_SET_COMPATIBLE = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (int, float),
    DataType.TEXT: (str,),
    DataType.BOOLEAN: (bool,),
}


def _compile_in(node, resolver, values, negated, contains_null) -> BatchFilter:
    """Set-membership tier for IN over literal members.

    Python set membership hashes ints and floats consistently, so
    ``value in {candidates}`` reproduces ``_compare("=", ...)`` for
    type-compatible members; incompatible members (which would *raise*
    per classic row) stay on the object tier via the caller.
    """
    if not isinstance(node.operand, ColumnRef):
        return _object_tier(node, resolver)
    index, dtype = resolver.resolve(node.operand.name)
    compatible = _SET_COMPATIBLE[dtype]
    for candidate in values:
        if candidate is None:
            continue
        if isinstance(candidate, bool) and dtype is not DataType.BOOLEAN:
            return _object_tier(node, resolver)
        if not isinstance(candidate, compatible):
            return _object_tier(node, resolver)
    members = {
        candidate for candidate in values if candidate is not None
    }
    saw_null = contains_null or any(
        candidate is None for candidate in values
    )

    def run(view: SelView) -> Tri:
        truths: List[Optional[bool]] = []
        for value in view.values(index):
            if value is None:
                truths.append(None)
            elif value in members:
                truths.append(not negated)
            elif saw_null:
                truths.append(None)
            else:
                truths.append(negated)
        return Tri.from_rows(truths)

    return run


def _compile_like(node: Like, resolver) -> BatchFilter:
    if not (
        isinstance(node.operand, ColumnRef)
        and isinstance(node.pattern, Literal)
    ):
        return _object_tier(node, resolver)
    index, dtype = resolver.resolve(node.operand.name)
    pattern = node.pattern.value
    if pattern is None:

        def all_null(view: SelView) -> Tri:
            return Tri.const(view.size, None)

        return all_null
    if dtype is not DataType.TEXT or not isinstance(pattern, str):
        return _object_tier(node, resolver)
    regex = _like_to_regex(pattern)
    negated = node.negated

    def run(view: SelView) -> Tri:
        truths: List[Optional[bool]] = []
        for value in view.values(index):
            if value is None:
                truths.append(None)
            else:
                matched = regex.fullmatch(value) is not None
                truths.append(matched != negated)
        return Tri.from_rows(truths)

    return run


def _compile_between(node: Between, resolver) -> BatchFilter:
    operand, low, high = node.operand, node.low, node.high
    fast_ge = fast_le = None
    if (
        HAVE_NUMPY
        and isinstance(operand, ColumnRef)
        and isinstance(low, Literal)
        and isinstance(high, Literal)
        and low.value is not None
        and high.value is not None
    ):
        index, dtype = resolver.resolve(operand.name)
        fast_ge = _compile_col_lit(">=", index, dtype, low.value)
        fast_le = _compile_col_lit("<=", index, dtype, high.value)
    if fast_ge is None or fast_le is None:
        return _object_tier(node, resolver)
    negated = node.negated
    slow = None

    def run(view: SelView) -> Tri:
        nonlocal slow
        ge = fast_ge(view)
        le = fast_le(view)
        if ge is None or le is None:
            if slow is None:
                slow = _object_tier(node, resolver)
            return slow(view)
        # Mirror Between.evaluate's three-valued logic exactly: a NULL
        # bound-side result stays NULL *unless* the other side already
        # decided FALSE (then NOT BETWEEN is TRUE, BETWEEN is FALSE).
        any_null = ge.n | le.n
        any_false = (~ge.t & ~ge.n) | (~le.t & ~le.n)
        both = ge.t & le.t
        if negated:
            t = (~any_null & ~both) | (any_null & any_false)
        else:
            t = ~any_null & both
        n = any_null & ~any_false
        return Tri(t, n)

    return run


def _value_category(value: SQLValue) -> Optional[str]:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, (int, float)):
        return "numeric"
    if isinstance(value, str):
        return "text"
    return None


def _leaf_category(expression: Expression, resolver) -> Optional[str]:
    """Type category of a ColumnRef/Literal leaf, or None otherwise."""
    if isinstance(expression, Literal):
        return _value_category(expression.value)
    if isinstance(expression, ColumnRef):
        _index, dtype = resolver.resolve(expression.name)
        return {
            DataType.INTEGER: "numeric",
            DataType.FLOAT: "numeric",
            DataType.TEXT: "text",
            DataType.BOOLEAN: "bool",
        }[dtype]
    return None


def _comparable(a: Optional[str], b: Optional[str]) -> bool:
    if a is None or b is None:
        return False
    if a == "null" or b == "null":
        return True
    return a == b


def is_safe_bool(expression: Expression, resolver) -> bool:
    """Whether evaluating ``expression`` as a predicate can never raise.

    Load-bearing for error parity: the classic executor evaluates the
    whole WHERE row by row, so the *first* error it raises comes from
    the first offending row. Decomposed batch evaluation runs each
    subtree over all rows, which could surface a different subtree's
    error first. Trees proven raise-free here may be decomposed; any
    other tree is evaluated whole, per row, in classic order.
    """
    if isinstance(expression, Logical):
        return is_safe_bool(expression.left, resolver) and is_safe_bool(
            expression.right, resolver
        )
    if isinstance(expression, Not):
        return is_safe_bool(expression.operand, resolver)
    if isinstance(expression, Comparison):
        return _comparable(
            _leaf_category(expression.left, resolver),
            _leaf_category(expression.right, resolver),
        )
    if isinstance(expression, IsNull):
        return _leaf_category(expression.operand, resolver) is not None
    if isinstance(expression, Between):
        operand = _leaf_category(expression.operand, resolver)
        return _comparable(
            operand, _leaf_category(expression.low, resolver)
        ) and _comparable(operand, _leaf_category(expression.high, resolver))
    if isinstance(expression, Like):
        return _leaf_category(expression.operand, resolver) in (
            "text",
            "null",
        ) and _leaf_category(expression.pattern, resolver) in ("text", "null")
    if isinstance(expression, InList):
        operand = _leaf_category(expression.operand, resolver)
        if operand is None:
            return False
        return all(
            isinstance(item, Literal)
            and _comparable(operand, _value_category(item.value))
            for item in expression.items
        )
    if isinstance(expression, InSet):
        operand = _leaf_category(expression.operand, resolver)
        if operand is None:
            return False
        return all(
            _comparable(operand, _value_category(value))
            for value in expression.values
        )
    if isinstance(expression, Literal):
        return expression.value is None or isinstance(expression.value, bool)
    if isinstance(expression, ColumnRef):
        _index, dtype = resolver.resolve(expression.name)
        return dtype is DataType.BOOLEAN
    # Arithmetic, Negate, unknown nodes: may raise (type errors,
    # division by zero, non-boolean predicate results).
    return False


def contains_subquery(expression: Optional[Expression]) -> bool:
    """Whether any subquery node appears anywhere in the tree."""
    if expression is None:
        return False
    if isinstance(expression, (ScalarSubquery, InSubquery)):
        return True
    for attribute in ("left", "right", "operand", "low", "high", "pattern"):
        child = getattr(expression, attribute, None)
        if isinstance(child, Expression) and contains_subquery(child):
            return True
    items = getattr(expression, "items", None)
    if items:
        for item in items:
            if contains_subquery(item):
                return True
    return False


def compile_filter(
    expression: Optional[Expression], resolver
) -> Optional[BatchFilter]:
    """Compile a predicate into a batch evaluator.

    Returns None for an absent predicate (every row passes). Raises
    :class:`NotVectorizable` for structurally unsupported expressions
    (unknown columns, subqueries).
    """
    if expression is None:
        return None
    if contains_subquery(expression):
        raise NotVectorizable("subquery in predicate")
    if not is_safe_bool(expression, resolver):
        # The tree can raise: evaluate it whole, row by row, so the
        # first error comes from the first offending row exactly as on
        # the classic path (batching subtrees would reorder errors).
        return _object_tier(expression, resolver)
    return _compile(expression, resolver)


def _compile(expression: Expression, resolver) -> BatchFilter:
    if isinstance(expression, Logical):
        left = _compile(expression.left, resolver)
        right = _compile(expression.right, resolver)
        combine = tri_and if expression.op == "AND" else tri_or

        def run(view: SelView) -> Tri:
            return combine(left(view), right(view))

        return run
    if isinstance(expression, Not):
        inner = _compile(expression.operand, resolver)

        def run_not(view: SelView) -> Tri:
            return tri_not(inner(view))

        return run_not
    if isinstance(expression, Comparison):
        return _compile_comparison(expression, resolver)
    if isinstance(expression, IsNull):
        return _compile_is_null(expression, resolver)
    if isinstance(expression, Like):
        return _compile_like(expression, resolver)
    if isinstance(expression, Between):
        return _compile_between(expression, resolver)
    if isinstance(expression, InSet):
        return _compile_in(
            expression,
            resolver,
            list(expression.values),
            expression.negated,
            expression.contains_null,
        )
    if isinstance(expression, InList):
        if all(isinstance(item, Literal) for item in expression.items):
            return _compile_in(
                expression,
                resolver,
                [item.value for item in expression.items],
                expression.negated,
                False,
            )
        return _object_tier(expression, resolver)
    if isinstance(expression, Literal):
        value = expression.value
        if value is None or isinstance(value, bool):

            def run_const(view: SelView) -> Tri:
                return Tri.const(view.size, value)

            return run_const
        return _object_tier(expression, resolver)
    # ColumnRef (a bare boolean column), Arithmetic, Negate, and any
    # future node: exact per-row evaluation.
    return _object_tier(expression, resolver)
