"""The vectorized SELECT executor.

:class:`VectorizedExecutor` subclasses the classic
:class:`~repro.engine.executor.Executor` and overrides only the bound
SELECT path. Instead of materialising a dict context per row, it works
over *positions* into cached :class:`~repro.engine.vectorized.columns.
ColumnBatch` snapshots: a working row is a tuple of per-source
positions (``-1`` marks an outer-join null extension). Predicates
compile into batch evaluators (:mod:`.compiler`), equi-joins become
positional hash joins, and aggregation gathers value lists straight
from the column arrays.

Everything that is not provably reproducible raises
:class:`~repro.engine.vectorized.compiler.NotVectorizable` during
planning and the statement reruns on the inherited classic path — DML
and DDL never enter this module at all. The invariant is bit-identical
output: ``rows``, ``rowids``, and ``touched`` (values *and* order)
must equal the classic executor's, because the delay guard prices
queries, maintains popularity counts, and keys its result cache off
them. Every equivalence-relevant decision below mirrors a specific
classic code path and says which one.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..catalog import Catalog
from ..errors import ExecutionError
from ..executor import Executor, ResultSet, Touched
from ..expr import ColumnRef, Comparison, Expression, predicate_holds
from ..parser.ast import SelectStatement
from ..types import SQLValue, sort_key
from .columns import HAVE_NUMPY, ColumnBatch
from .compiler import (
    NotVectorizable,
    SelView,
    SingleTableResolver,
    compile_filter,
)

if HAVE_NUMPY:
    import numpy as _np

#: A working row: one position per FROM source, -1 = outer-join null.
PosTuple = Tuple[int, ...]


class MultiView:
    """Compiler view over joined position tuples (see :class:`SelView`).

    Column indices are ``(source, column)`` pairs; gathers follow the
    per-source position of each tuple, yielding NULL for ``-1``
    (outer-join null extensions), exactly like the classic executor's
    null fragments.
    """

    __slots__ = ("batches", "tuples", "_np_idx")

    def __init__(self, batches: List[ColumnBatch], tuples: List[PosTuple]):
        self.batches = batches
        self.tuples = tuples
        self._np_idx: Dict[int, Tuple[object, object]] = {}

    @property
    def size(self) -> int:
        return len(self.tuples)

    def values(self, index) -> List[SQLValue]:
        source, column = index
        values = self.batches[source].columns[column]
        return [
            values[t[source]] if t[source] >= 0 else None
            for t in self.tuples
        ]

    def np_col(self, index):
        source, column = index
        values, nulls = self.batches[source].numpy_column(column)
        if values is None:
            return (None, None)
        positions, missing = self._positions(source)
        return (values[positions], nulls[positions] | missing)

    def _positions(self, source: int):
        cached = self._np_idx.get(source)
        if cached is None:
            raw = _np.fromiter(
                (t[source] for t in self.tuples),
                dtype=_np.intp,
                count=len(self.tuples),
            )
            missing = raw < 0
            cached = (_np.where(missing, 0, raw), missing)
            self._np_idx[source] = cached
        return cached


class MultiResolver:
    """Resolve column names to ``(source, column)`` across all sources."""

    def __init__(self, key_map: Dict[str, Tuple[int, int]], batches):
        self._key_map = key_map
        self._batches = batches

    def resolve(self, name: str):
        entry = self._key_map.get(name.lower())
        if entry is None:
            raise NotVectorizable(f"unresolvable column {name!r}")
        source, column = entry
        return entry, self._batches[source].dtypes[column]


class VectorizedExecutor(Executor):
    """Columnar SELECT execution with classic fallback.

    Args:
        catalog: the shared catalog.
        scan_pool: optional
            :class:`~repro.engine.vectorized.workers.ScanWorkerPool` for
            multi-process full scans (read path only).
        parallel_scan_min_rows: full scans below this row count stay
            in-process — forking pipes cost more than they save.
    """

    def __init__(
        self,
        catalog: Catalog,
        scan_pool=None,
        parallel_scan_min_rows: int = 4096,
    ):
        super().__init__(catalog)
        self.scan_pool = scan_pool
        self.parallel_scan_min_rows = parallel_scan_min_rows
        #: dispatch counters, surfaced by the guard's observability.
        self.path_counts: Dict[str, int] = {
            "vectorized": 0,
            "parallel": 0,
            "classic": 0,
        }

    # -- dispatch -----------------------------------------------------------

    def _execute_bound_select(self, statement: SelectStatement) -> ResultSet:
        try:
            result = self._vector_select(statement)
        except NotVectorizable:
            result = super()._execute_bound_select(statement)
            result.execution_path = "classic"
            self.path_counts["classic"] += 1
            return result
        self.path_counts[result.execution_path] += 1
        return result

    # -- planning -----------------------------------------------------------

    def _vector_select(self, statement: SelectStatement) -> ResultSet:
        # Source resolution raises the same CatalogError /
        # ExecutionError the classic path would (shared methods).
        sources = self._select_sources(statement)
        shared = self._shared_columns(sources)
        batches = [table.column_batch() for table, _ in sources]
        # name -> (source, column): the static image of the classic
        # executor's merged fragment keys (label.col always, bare col
        # only when unshared; labels are unique so keys never collide).
        key_map: Dict[str, Tuple[int, int]] = {}
        for source_index, ((_table, label), batch) in enumerate(
            zip(sources, batches)
        ):
            for column_index, name in enumerate(batch.column_names):
                key_map[f"{label}.{name}"] = (source_index, column_index)
                if name not in shared:
                    key_map[name] = (source_index, column_index)

        parallel = False
        if statement.joins:
            tuples = self._joined_tuples(statement, sources, batches, key_map)
            if statement.where is not None:
                batch_filter = compile_filter(
                    statement.where, MultiResolver(key_map, batches)
                )
                mask = batch_filter(MultiView(batches, tuples))
                tuples = [tuples[i] for i in mask.true_positions()]
        else:
            tuples, parallel = self._single_table_tuples(
                statement, sources[0], batches[0]
            )

        path = "parallel" if parallel else "vectorized"
        if statement.group_by:
            result = self._vector_grouped(
                statement, sources, batches, key_map, shared, tuples
            )
        elif any(item.aggregate for item in statement.items):
            result = self._vector_aggregate(
                statement, sources, batches, key_map, tuples
            )
        else:
            result = self._vector_plain(
                statement, sources, batches, key_map, tuples
            )
        result.execution_path = path
        return result

    # -- row sourcing ---------------------------------------------------------

    def _single_table_tuples(
        self,
        statement: SelectStatement,
        source,
        batch: ColumnBatch,
    ) -> Tuple[List[PosTuple], bool]:
        """Filtered positions for a single-table SELECT.

        Uses the same planner access path as the classic executor, so
        candidate order (and therefore output order) is identical.
        """
        from ..planner import candidate_rowids, choose_access_path

        table, label = source
        path = choose_access_path(self.catalog, table, statement.where)
        if path.kind == "full_scan":
            # rowids() and the batch share scan order exactly.
            positions: Optional[List[int]] = None
        else:
            positions = []
            for rowid in candidate_rowids(self.catalog, table, path):
                position = batch.position_of(rowid)
                if position is not None:  # classic skips vanished rows
                    positions.append(position)

        if statement.where is None:
            selected = (
                list(range(len(batch))) if positions is None else positions
            )
            return [(p,) for p in selected], False

        if (
            positions is None
            and self.scan_pool is not None
            and len(batch) >= self.parallel_scan_min_rows
        ):
            hits = self.scan_pool.filter_positions(
                table, label, statement.where, len(batch)
            )
            if hits is not None:
                return [(p,) for p in hits], True

        batch_filter = compile_filter(
            statement.where, SingleTableResolver(batch, label)
        )
        mask = batch_filter(SelView(batch, positions))
        hits = mask.true_positions()
        if positions is not None:
            hits = [positions[i] for i in hits]
        return [(p,) for p in hits], False

    def _joined_tuples(
        self,
        statement: SelectStatement,
        sources,
        batches: List[ColumnBatch],
        key_map: Dict[str, Tuple[int, int]],
    ) -> List[PosTuple]:
        """Positional hash joins, replicating the classic join exactly.

        The classic `_apply_join` picks its hash path from the merged
        context keys at runtime; those key sets equal our static
        ``key_map`` prefixes, so the same statements hash-join here.
        Bucket lookups use a plain dict exactly like the classic path
        (so e.g. ``1`` and ``1.0`` share a bucket there and here).
        Conditions the classic path would nested-loop fall back
        entirely (NotVectorizable).
        """
        # Classic: joins drive off table.rowids() (full scan order).
        tuples: List[PosTuple] = [(p,) for p in range(len(batches[0]))]
        left_keys = {
            name
            for name, (source, _column) in key_map.items()
            if source == 0
        }
        for join_index, join in enumerate(statement.joins, start=1):
            batch = batches[join_index]
            right_keys = {
                name
                for name, (source, _column) in key_map.items()
                if source == join_index
            }
            equi = self._static_equi_keys(
                join.condition, left_keys, right_keys
            )
            if equi is None:
                raise NotVectorizable("non-equi join condition")
            left_name, right_name = equi
            left_source, left_column = key_map[left_name]
            right_column = key_map[right_name][1]
            left_values = batches[left_source].columns[left_column]
            right_values = batch.columns[right_column]

            buckets: Dict[SQLValue, List[int]] = {}
            for position, value in enumerate(right_values):
                if value is None:
                    continue
                buckets.setdefault(value, []).append(position)

            joined: List[PosTuple] = []
            for t in tuples:
                left_position = t[left_source]
                value = (
                    left_values[left_position] if left_position >= 0 else None
                )
                matches = (
                    buckets.get(value, []) if value is not None else []
                )
                for right_position in matches:
                    joined.append(t + (right_position,))
                if not matches and join.outer:
                    joined.append(t + (-1,))
            tuples = joined
            left_keys |= right_keys
        return tuples

    @staticmethod
    def _static_equi_keys(
        condition: Expression, left_keys, right_keys
    ) -> Optional[Tuple[str, str]]:
        """Static twin of the classic ``_equi_join_keys`` membership test.

        The classic check also returns None when either input is empty
        (falling to its nested loop) — but on an empty side both
        branches produce identical output, so resolving statically here
        is equivalence-preserving.
        """
        if not isinstance(condition, Comparison) or condition.op != "=":
            return None
        if not isinstance(condition.left, ColumnRef) or not isinstance(
            condition.right, ColumnRef
        ):
            return None
        a = condition.left.name.lower()
        b = condition.right.name.lower()
        if a in left_keys and b in right_keys and b not in left_keys:
            return a, b
        if b in left_keys and a in right_keys and a not in left_keys:
            return b, a
        return None

    # -- shared shaping helpers ------------------------------------------------

    def _touched_of(
        self, batches: List[ColumnBatch], t: PosTuple
    ) -> List[Touched]:
        """(table, rowid) pairs in source order; -1 contributes nothing
        (classic outer joins don't record the unmatched side)."""
        return [
            (batches[s].table_key, batches[s].rowids[p])
            for s, p in enumerate(t)
            if p >= 0
        ]

    def _evaluator(
        self,
        expression: Expression,
        key_map: Dict[str, Tuple[int, int]],
        batches: List[ColumnBatch],
    ) -> Callable[[PosTuple], SQLValue]:
        """Per-tuple evaluator over a minimal referenced-column context.

        Semantics (including error messages and evaluation order) come
        from ``Expression.evaluate`` itself; only context construction
        is narrowed. Unresolvable references fall back to classic,
        which reproduces the resolve-or-raise behaviour exactly.
        """
        if isinstance(expression, ColumnRef):
            entry = key_map.get(expression.name.lower())
            if entry is None:
                raise NotVectorizable(
                    f"unresolvable column {expression.name!r}"
                )
            source, column = entry
            values = batches[source].columns[column]

            def fast(t: PosTuple) -> SQLValue:
                position = t[source]
                return values[position] if position >= 0 else None

            return fast

        referenced: Dict[str, Tuple[int, int]] = {}
        for name in expression.columns():
            key = name.lower()
            if key in referenced:
                continue
            entry = key_map.get(key)
            if entry is None:
                raise NotVectorizable(f"unresolvable column {name!r}")
            referenced[key] = entry

        def run(t: PosTuple) -> SQLValue:
            context = {
                key: (
                    batches[source].columns[column][t[source]]
                    if t[source] >= 0
                    else None
                )
                for key, (source, column) in referenced.items()
            }
            return expression.evaluate(context)

        return run

    def _context_of(
        self, sources, batches: List[ColumnBatch], shared, t: PosTuple
    ) -> Dict[str, SQLValue]:
        """The full merged context dict of one tuple — byte-for-byte the
        classic executor's fragment union (for HAVING and grouped
        non-aggregate items, which may reference any column)."""
        context: Dict[str, SQLValue] = {}
        for source_index, ((_table, label), batch) in enumerate(
            zip(sources, batches)
        ):
            position = t[source_index]
            for column_index, name in enumerate(batch.column_names):
                value = (
                    batch.columns[column_index][position]
                    if position >= 0
                    else None
                )
                context[f"{label}.{name}"] = value
                if name not in shared:
                    context[name] = value
        return context

    def _sort_tuples(
        self,
        statement: SelectStatement,
        tuples: List[PosTuple],
        key_map,
        batches,
    ) -> List[PosTuple]:
        """ORDER BY via the classic reversed-stable-sort recipe."""
        evaluators = [
            self._evaluator(item.expression, key_map, batches)
            for item in statement.order_by
        ]
        result = list(tuples)
        for item, evaluate in reversed(
            list(zip(statement.order_by, evaluators))
        ):
            result.sort(
                key=lambda t: sort_key(evaluate(t)),
                reverse=item.descending,
            )
        return result

    # -- plain SELECT -----------------------------------------------------------

    def _vector_plain(
        self, statement, sources, batches, key_map, tuples
    ) -> ResultSet:
        if statement.order_by:
            tuples = self._sort_tuples(statement, tuples, key_map, batches)

        columns = self._output_columns(statement, sources)
        projectors: List[Tuple[str, object]] = []
        for item in statement.items:
            if item.star:
                gathers = []
                for source_index, ((_table, _label), batch) in enumerate(
                    zip(sources, batches)
                ):
                    for column_index in range(len(batch.column_names)):
                        gathers.append(
                            (source_index, batch.columns[column_index])
                        )
                projectors.append(("star", gathers))
            else:
                projectors.append(
                    (
                        "expr",
                        self._evaluator(item.expression, key_map, batches),
                    )
                )

        projected: List[Tuple[PosTuple, Tuple[SQLValue, ...]]] = []
        for t in tuples:
            values: List[SQLValue] = []
            for kind, payload in projectors:
                if kind == "star":
                    for source_index, column_values in payload:
                        position = t[source_index]
                        values.append(
                            column_values[position] if position >= 0 else None
                        )
                else:
                    values.append(payload(t))
            projected.append((t, tuple(values)))

        if statement.distinct:
            seen = set()
            unique = []
            for t, row in projected:
                key = tuple(sort_key(value) for value in row)
                if key not in seen:
                    seen.add(key)
                    unique.append((t, row))
            projected = unique

        offset = statement.offset or 0
        if offset:
            projected = projected[offset:]
        if statement.limit is not None:
            projected = projected[: statement.limit]

        driving = sources[0][0]
        return ResultSet(
            columns=columns,
            rows=[row for _, row in projected],
            rowids=[
                batches[0].rowids[t[0]] for t, _ in projected
            ],
            touched=[
                pair
                for t, _ in projected
                for pair in self._touched_of(batches, t)
            ],
            table=driving.name,
            rowcount=len(projected),
            statement_kind="select",
        )

    # -- aggregates -------------------------------------------------------------

    def _aggregate_item_value(
        self, item, member_tuples: List[PosTuple], key_map, batches
    ) -> SQLValue:
        if item.aggregate == "COUNT" and item.expression is None:
            return len(member_tuples)
        evaluate = self._evaluator(item.expression, key_map, batches)
        observed = [evaluate(t) for t in member_tuples]
        return self._aggregate_of_values(
            item.aggregate, item.distinct, observed
        )

    def _vector_aggregate(
        self, statement, sources, batches, key_map, tuples
    ) -> ResultSet:
        for item in statement.items:
            if not item.aggregate:
                raise ExecutionError(
                    "mixing aggregates with plain columns requires GROUP BY"
                )
        columns: List[str] = []
        values: List[SQLValue] = []
        for item in statement.items:
            columns.append(item.alias or self._aggregate_label(item))
            values.append(
                self._aggregate_item_value(item, tuples, key_map, batches)
            )
        rows = [tuple(values)]
        rowids = [batches[0].rowids[t[0]] for t in tuples]
        touched = [
            pair for t in tuples for pair in self._touched_of(batches, t)
        ]
        # Mirror the classic path's LIMIT/OFFSET handling (including
        # the consistent-trim bugfix there).
        offset = statement.offset or 0
        if offset:
            rows = rows[offset:]
        if statement.limit is not None:
            rows = rows[: statement.limit]
        if not rows:
            rowids = []
            touched = []
        return ResultSet(
            columns=columns,
            rows=rows,
            rowids=rowids,
            touched=touched,
            table=statement.table,
            rowcount=len(rows),
            statement_kind="select",
        )

    def _vector_grouped(
        self, statement, sources, batches, key_map, shared, tuples
    ) -> ResultSet:
        for item in statement.items:
            if item.star:
                raise ExecutionError("SELECT * is not valid with GROUP BY")
        group_evaluators = [
            self._evaluator(expression, key_map, batches)
            for expression in statement.group_by
        ]
        groups: Dict[Tuple, List[PosTuple]] = {}
        order: List[Tuple] = []
        for t in tuples:
            key = tuple(
                sort_key(evaluate(t)) for evaluate in group_evaluators
            )
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(t)

        columns: List[str] = [
            item.alias
            or (
                self._aggregate_label(item)
                if item.aggregate
                else str(item.expression)
            )
            for item in statement.items
        ]

        rows: List[Tuple[SQLValue, ...]] = []
        row_touched: List[List[Touched]] = []
        for key in order:
            members = groups[key]
            first_context: Optional[Dict[str, SQLValue]] = None
            values: List[SQLValue] = []
            for item in statement.items:
                if item.aggregate:
                    values.append(
                        self._aggregate_item_value(
                            item, members, key_map, batches
                        )
                    )
                else:
                    if first_context is None:
                        first_context = self._context_of(
                            sources, batches, shared, members[0]
                        )
                    values.append(item.expression.evaluate(first_context))
            if statement.having is not None:
                if first_context is None:
                    first_context = self._context_of(
                        sources, batches, shared, members[0]
                    )
                having_context = self._having_context(
                    statement, columns, values, first_context
                )
                if not predicate_holds(statement.having, having_context):
                    continue
            rows.append(tuple(values))
            row_touched.append(
                [
                    pair
                    for t in members
                    for pair in self._touched_of(batches, t)
                ]
            )

        combined = list(zip(rows, row_touched))
        if statement.order_by:
            combined = self._sort_grouped(combined, columns, statement)

        offset = statement.offset or 0
        if offset:
            combined = combined[offset:]
        if statement.limit is not None:
            combined = combined[: statement.limit]

        return ResultSet(
            columns=columns,
            rows=[row for row, _ in combined],
            rowids=[
                rowid
                for _, touched in combined
                for _name, rowid in touched[:1]
            ],
            touched=[pair for _, touched in combined for pair in touched],
            table=statement.table,
            rowcount=len(combined),
            statement_kind="select",
        )
