"""Columnar table snapshots.

A :class:`ColumnBatch` is an immutable column-major view of one
:class:`~repro.engine.table.HeapTable` at one table version: a rowid
list in scan (insertion) order plus one Python value list per column,
with optional numpy acceleration arrays built lazily per column.

Numpy arrays are only ever used where they are provably exact:

* INTEGER columns materialise an ``int64`` array (NULLs as 0 plus a
  separate null mask) **only when every value fits int64** — Python
  ints are unbounded, and silently wrapping one would corrupt
  comparisons and therefore ``touched`` and delay pricing. Columns
  holding a value outside int64 simply report no numpy array and the
  compiler keeps them on the exact object tier.
* FLOAT columns are ``float64`` exactly (the schema layer already
  coerces stored values to Python floats).
* BOOLEAN columns are ``bool``.
* TEXT columns never get a numpy array; string predicates run on the
  object tier.

The snapshot holds references to the same value objects the heap does
(no deep copy), so building one is O(rows) pointer work, amortised by
the per-version cache on :meth:`HeapTable.column_batch`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..types import DataType, SQLValue

try:  # pragma: no cover - exercised implicitly by every test run
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - environment without numpy
    _np = None
    HAVE_NUMPY = False

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class ColumnBatch:
    """Column-major snapshot of a heap table at one version.

    Attributes:
        version: the table version this snapshot reflects.
        table_key: lower-cased table name (the ``touched`` key).
        rowids: rowids in scan order.
        columns: one value list per column, parallel to ``rowids``.
        column_names: lower-cased column names, in schema order.
        dtypes: each column's :class:`~repro.engine.types.DataType`.
    """

    __slots__ = (
        "version",
        "table_key",
        "rowids",
        "columns",
        "column_names",
        "dtypes",
        "_position",
        "_np_cache",
    )

    def __init__(
        self,
        version: int,
        table_key: str,
        rowids: List[int],
        columns: List[List[SQLValue]],
        column_names: List[str],
        dtypes: List[DataType],
    ):
        self.version = version
        self.table_key = table_key
        self.rowids = rowids
        self.columns = columns
        self.column_names = column_names
        self.dtypes = dtypes
        self._position: Optional[Dict[int, int]] = None
        #: column index -> (values array, null mask) or (None, None)
        #: when the column cannot be represented exactly.
        self._np_cache: Dict[int, Tuple[object, object]] = {}

    @classmethod
    def from_table(cls, table) -> "ColumnBatch":
        schema = table.schema
        names = [column.name.lower() for column in schema.columns]
        dtypes = [column.dtype for column in schema.columns]
        rowids: List[int] = []
        columns: List[List[SQLValue]] = [[] for _ in names]
        appenders = [column.append for column in columns]
        for rowid, row in table.scan():
            rowids.append(rowid)
            for append, value in zip(appenders, row):
                append(value)
        return cls(
            version=table.version,
            table_key=table.name.lower(),
            rowids=rowids,
            columns=columns,
            column_names=names,
            dtypes=dtypes,
        )

    def __len__(self) -> int:
        return len(self.rowids)

    def position_of(self, rowid: int) -> Optional[int]:
        """Scan-order position of ``rowid`` in this snapshot, if present."""
        positions = self._position
        if positions is None:
            positions = {rid: i for i, rid in enumerate(self.rowids)}
            self._position = positions
        return positions.get(rowid)

    def numpy_column(self, index: int):
        """``(values, null_mask)`` numpy arrays for one column, or
        ``(None, None)`` when no exact representation exists.

        Lazily built and cached per column. Racing readers may build
        the same arrays twice; the cache assignment is atomic and the
        results identical, so the race is benign.
        """
        cached = self._np_cache.get(index)
        if cached is not None:
            return cached
        built = self._build_numpy(index)
        self._np_cache[index] = built
        return built

    def _build_numpy(self, index: int):
        if not HAVE_NUMPY:
            return (None, None)
        dtype = self.dtypes[index]
        values = self.columns[index]
        if dtype is DataType.INTEGER:
            nulls = _np.fromiter(
                (value is None for value in values),
                dtype=bool,
                count=len(values),
            )
            filled = []
            for value in values:
                if value is None:
                    filled.append(0)
                elif _INT64_MIN <= value <= _INT64_MAX:
                    filled.append(value)
                else:
                    # A value outside int64 cannot be held exactly:
                    # this column stays on the object tier.
                    return (None, None)
            return (_np.array(filled, dtype=_np.int64), nulls)
        if dtype is DataType.FLOAT:
            nulls = _np.fromiter(
                (value is None for value in values),
                dtype=bool,
                count=len(values),
            )
            filled = _np.fromiter(
                (0.0 if value is None else value for value in values),
                dtype=_np.float64,
                count=len(values),
            )
            return (filled, nulls)
        if dtype is DataType.BOOLEAN:
            nulls = _np.fromiter(
                (value is None for value in values),
                dtype=bool,
                count=len(values),
            )
            filled = _np.fromiter(
                (bool(value) for value in values),
                dtype=bool,
                count=len(values),
            )
            return (filled, nulls)
        return (None, None)  # TEXT: object tier only

    def __repr__(self) -> str:
        return (
            f"ColumnBatch({self.table_key!r}, rows={len(self.rowids)}, "
            f"version={self.version})"
        )
