"""Fork-based read-only scan workers.

A :class:`ScanWorkerPool` forks worker processes that each hold a
copy-on-write snapshot of the catalog (fork semantics: the child sees
the parent's heap exactly as it was at fork time, for free). The
parent hands each worker a contiguous chunk of a full scan —
``(table, label, version, where, start, end)`` — and the worker sends
back the *matching positions* only, so pipe traffic is proportional to
selectivity, not table size. Chunks are reassembled in order, which
reproduces the sequential scan's position order exactly.

Safety argument (why stale answers are impossible):

* Workers are forked from the parent and never see later mutations.
  The parent tracks the epoch it forked at and **respawns the pool**
  whenever its epoch source says the database changed
  (:meth:`ScanWorkerPool.ensure_fresh`, called before every dispatch).
* Belt and braces: every task carries the parent's current
  ``HeapTable.version`` and the worker compares it against its own
  snapshot's version, answering ``stale`` on any mismatch. The parent
  treats *any* non-ok reply — stale, unsupported, error, or a broken
  pipe — as "compute locally", so the pool can fail, lag, or die
  without ever changing a query's result.
* Workers only ever run the read-only filter path (scan + predicate);
  DML never reaches them, and their copy-on-write pages are discarded
  on exit.

The pool is an *optimisation* layered on the vectorized executor: the
local path computes the identical position list, so every fallback is
bit-identical by construction.
"""

from __future__ import annotations

import os
import signal
import time
import warnings
from typing import Callable, List, Optional

from .columns import ColumnBatch  # noqa: F401  (re-exported for workers)
from .compiler import NotVectorizable, SelView, SingleTableResolver, compile_filter

try:  # pragma: no cover - exercised on posix CI
    from multiprocessing.connection import Pipe

    HAVE_FORK = hasattr(os, "fork")
except ImportError:  # pragma: no cover - non-posix
    Pipe = None
    HAVE_FORK = False


def available_cores() -> int:
    """Best-effort usable core count (shared with the benchmarks)."""
    try:
        return len(os.sched_getaffinity(0))  # type: ignore[attr-defined]
    except AttributeError:  # pragma: no cover - non-linux
        return os.cpu_count() or 1


def _worker_main(catalog, connection) -> None:
    """Worker loop: receive filter tasks, answer with match positions."""
    while True:
        try:
            task = connection.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        table_name, label, version, where, start, end = task
        try:
            table = catalog.table(table_name)
            if table.version != version:
                connection.send(("stale", None))
                continue
            batch = table.column_batch()
            positions = list(range(start, min(end, len(batch))))
            batch_filter = compile_filter(
                where, SingleTableResolver(batch, label)
            )
            if batch_filter is None:
                connection.send(("ok", positions))
                continue
            mask = batch_filter(SelView(batch, positions))
            hits = mask.true_positions()
            connection.send(("ok", [positions[i] for i in hits]))
        except NotVectorizable:
            connection.send(("unsupported", None))
        except BaseException as error:  # noqa: BLE001 - isolate the parent
            try:
                connection.send(("error", repr(error)))
            except (OSError, ValueError):
                return


class ScanWorkerPool:
    """A pool of forked read-only scan workers over one catalog.

    Args:
        catalog: the engine catalog; workers snapshot it at fork time.
        workers: process count (values < 1 are clamped to 1).
        epoch: callable returning a monotonic mutation counter for the
            whole database (e.g. ``lambda: db.mutation_epoch``). The
            pool respawns whenever it changes. Defaults to a constant,
            which is only sound for immutable workloads — pass a real
            epoch source for anything that mutates.
    """

    def __init__(
        self,
        catalog,
        workers: int = 2,
        epoch: Optional[Callable[[], int]] = None,
    ):
        self.catalog = catalog
        self.workers = max(1, int(workers))
        self._epoch = epoch if epoch is not None else (lambda: 0)
        self._pids: List[int] = []
        self._connections: List[object] = []
        self._fork_epoch: Optional[int] = None
        self._broken = False
        #: dispatch statistics (parallel scans served / local fallbacks).
        self.served = 0
        self.fallbacks = 0
        self.respawns = 0

    @property
    def alive(self) -> bool:
        return bool(self._pids) and not self._broken

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> bool:
        """Fork the workers; returns False where fork is unavailable.

        Workers are forked with raw ``os.fork()``, NOT
        ``multiprocessing.Process``: the mp child bootstrap calls
        ``sys.stdin.close()``, and a deployment whose main thread is
        blocked reading stdin (the server recipe, ``procserver``)
        holds the stdin buffer lock across the fork — the child
        deadlocks on it before ever reaching worker code. The raw
        child runs nothing but the pipe loop and leaves through
        ``os._exit``, touching no inherited stdio or interpreter
        teardown state.
        """
        if not HAVE_FORK:
            return False
        self.close()
        self._broken = False
        self._fork_epoch = self._epoch()
        for _ in range(self.workers):
            parent_end, child_end = Pipe(duplex=True)
            with warnings.catch_warnings():
                # 3.12+ warns on fork-with-threads; the worker's code
                # path is audited fork-safe (pipe + catalog reads only)
                warnings.simplefilter("ignore", DeprecationWarning)
                pid = os.fork()
            if pid == 0:  # pragma: no cover - child process
                status = 0
                try:
                    parent_end.close()
                    # earlier siblings' parent ends were inherited too;
                    # close them so their EOF semantics stay crisp
                    for connection in self._connections:
                        try:
                            connection.close()
                        except OSError:
                            pass
                    _worker_main(self.catalog, child_end)
                except BaseException:  # noqa: BLE001 - never unwind parent state
                    status = 1
                finally:
                    os._exit(status)
            child_end.close()
            self._pids.append(pid)
            self._connections.append(parent_end)
        return True

    def ensure_fresh(self) -> bool:
        """Respawn if the database mutated since fork; False if unusable."""
        if not HAVE_FORK:
            return False
        if self._broken or not self._pids:
            return self.start()
        if self._epoch() != self._fork_epoch:
            self.respawns += 1
            return self.start()
        return True

    @staticmethod
    def _reap(pid: int, timeout: float) -> bool:
        """Wait for ``pid`` to exit, up to ``timeout`` seconds."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                done, _status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return True
            if done == pid:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.005)

    def close(self) -> None:
        """Stop all workers (idempotent)."""
        for connection in self._connections:
            try:
                connection.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        for pid in self._pids:
            if not self._reap(pid, timeout=2.0):  # pragma: no cover - stuck
                try:
                    os.kill(pid, signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    pass
                self._reap(pid, timeout=1.0)
        self._pids = []
        self._connections = []
        self._fork_epoch = None

    def __enter__(self) -> "ScanWorkerPool":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------------

    def filter_positions(
        self, table, label: str, where, total: int
    ) -> Optional[List[int]]:
        """Evaluate ``where`` over a full scan of ``table`` in parallel.

        Returns ascending match positions, or None when the pool cannot
        serve the task (not running, stale workers, unsupported
        predicate, any worker error) — the caller then computes the
        identical answer locally.
        """
        if total <= 0:
            return []
        if not self.ensure_fresh():
            self.fallbacks += 1
            return None
        count = min(self.workers, total)
        chunk = (total + count - 1) // count
        version = table.version
        tasks = []
        for worker_index in range(count):
            start = worker_index * chunk
            end = min(start + chunk, total)
            tasks.append((start, end))
        try:
            for (start, end), connection in zip(tasks, self._connections):
                connection.send(
                    (table.name, label, version, where, start, end)
                )
            # Drain every reply even after a failure: leaving one queued
            # would desynchronise the next dispatch on that pipe.
            chunks: List[Optional[List[int]]] = []
            failed = False
            for _task, connection in zip(tasks, self._connections):
                status, payload = connection.recv()
                if status != "ok":
                    failed = True
                    if status == "stale":  # refork before the next scan
                        self._broken = True
                    chunks.append(None)
                else:
                    chunks.append(payload)
        except (OSError, EOFError, ValueError, BrokenPipeError):
            self._broken = True
            self.fallbacks += 1
            return None
        if failed:
            self.fallbacks += 1
            return None
        self.served += 1
        positions: List[int] = []
        for part in chunks:
            positions.extend(part)
        return positions
