"""Vectorized columnar execution.

The classic executor evaluates statements row-at-a-time over per-row
dict contexts. This package provides a columnar path: tables expose
cached column arrays (:mod:`.columns`), predicates compile from the
``expr`` AST into batch evaluators over those arrays (:mod:`.compiler`),
and a :class:`~repro.engine.vectorized.executor.VectorizedExecutor`
runs SELECTs end to end over positions instead of dicts — hash joins
and grouped aggregation included — falling back to the classic
executor for any statement shape it does not cover.

The invariant that makes the fallback (and the whole path) safe is
**bit-identical output**: ``ResultSet.rows``, ``rowids``, and
``touched`` must equal the classic executor's exactly, including
ordering, because the delay guard prices queries, maintains popularity
counts, and keys its result cache off them. The differential harness
in ``tests/engine/test_vectorized_equivalence.py`` enforces this over
a statement corpus plus seeded fuzzing.

:mod:`.workers` layers a fork-based read-only scan-worker pool on top
so large full scans use every core while DML stays on the
single-writer path.
"""

from .columns import ColumnBatch, HAVE_NUMPY
from .compiler import NotVectorizable, compile_filter
from .executor import VectorizedExecutor
from .workers import ScanWorkerPool

__all__ = [
    "ColumnBatch",
    "HAVE_NUMPY",
    "NotVectorizable",
    "compile_filter",
    "VectorizedExecutor",
    "ScanWorkerPool",
]
