"""Catalog: the collection of tables and indexes forming a database.

Concurrency audit: lookups (``table``, ``indexes_for``, ``index_on``,
``table_names``) never mutate catalog state, so any number may run under
the engine's shared read lock; ``create_*``/``drop_*`` mutate the name
maps and run only under the write side (CREATE/DROP statements are
classified as writers by :meth:`repro.engine.database.Database.execute`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errors import CatalogError
from .index import Index, create_index
from .schema import TableSchema
from .table import HeapTable


class Catalog:
    """Named tables plus their secondary indexes.

    Table and index names are case-insensitive. The catalog owns index
    lifecycle: dropping a table detaches and removes its indexes.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, HeapTable] = {}
        self._indexes: Dict[str, Index] = {}
        self._indexes_by_table: Dict[str, List[Index]] = {}
        self._rowid_offset = 0
        self._rowid_stride = 1

    def set_rowid_allocation(self, offset: int, stride: int) -> None:
        """Configure strided rowid allocation for all (and future) tables.

        Cluster shards call this once before serving traffic so each shard
        hands out rowids from a disjoint residue class (see
        :meth:`repro.engine.table.HeapTable.configure_rowids`). Applies to
        every existing table and is inherited by tables created later —
        including tables recreated during journal replay.
        """
        for table in self._tables.values():
            table.configure_rowids(offset, stride)
        self._rowid_offset = offset
        self._rowid_stride = stride

    # -- tables ------------------------------------------------------------

    def create_table(
        self, schema: TableSchema, if_not_exists: bool = False
    ) -> HeapTable:
        """Create and return a new heap table for ``schema``."""
        key = schema.name.lower()
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise CatalogError(f"table {schema.name!r} already exists")
        table = HeapTable(schema)
        if self._rowid_stride != 1:
            table.configure_rowids(self._rowid_offset, self._rowid_stride)
        self._tables[key] = table
        self._indexes_by_table[key] = []
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> bool:
        """Drop a table and all of its indexes.

        Returns True if a table was dropped. With ``if_exists`` a missing
        table is a no-op returning False; otherwise it raises.
        """
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return False
            raise CatalogError(f"no table named {name!r}")
        for index in self._indexes_by_table.pop(key, []):
            index.detach()
            del self._indexes[index.name.lower()]
        del self._tables[key]
        return True

    def table(self, name: str) -> HeapTable:
        """Look up a table by name or raise CatalogError."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        """True if a table with this name exists."""
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        """Names of all tables, in creation order."""
        return [table.name for table in self._tables.values()]

    # -- indexes ------------------------------------------------------------

    def create_index(
        self, name: str, table_name: str, column: str, kind: str = "ordered"
    ) -> Index:
        """Create a secondary index; it is kept in sync automatically."""
        key = name.lower()
        if key in self._indexes:
            raise CatalogError(f"index {name!r} already exists")
        table = self.table(table_name)
        index = create_index(name, table, column, kind)
        self._indexes[key] = index
        self._indexes_by_table[table_name.lower()].append(index)
        return index

    def drop_index(self, name: str) -> None:
        """Drop an index by name."""
        key = name.lower()
        if key not in self._indexes:
            raise CatalogError(f"no index named {name!r}")
        index = self._indexes.pop(key)
        index.detach()
        self._indexes_by_table[index.table.name.lower()].remove(index)

    def indexes_for(self, table_name: str) -> List[Index]:
        """All indexes on the given table (empty list if none)."""
        return list(self._indexes_by_table.get(table_name.lower(), []))

    def index_on(
        self, table_name: str, column: str, kind: Optional[str] = None
    ) -> Optional[Index]:
        """Find an index on ``table.column``, optionally of a given kind."""
        target = column.lower()
        for index in self.indexes_for(table_name):
            if index.column.lower() != target:
                continue
            if kind is None or index.kind == kind:
                return index
        return None
