"""Rule-based access-path selection.

The planner inspects the conjuncts of a WHERE clause and chooses the
cheapest available access path for the ``FROM`` table:

1. primary-key equality → direct PK lookup (O(1));
2. equality on an indexed column → index lookup;
3. range / BETWEEN on an ordered-indexed column → index range scan;
4. otherwise → full scan.

The chosen path yields *candidate* rowids; the executor always re-applies
the full predicate, so an over-approximate path is safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .catalog import Catalog
from .expr import (
    Between,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
    conjuncts,
)
from .table import HeapTable
from .types import SQLValue


@dataclass(frozen=True)
class AccessPath:
    """A resolved way of producing candidate rowids for a table.

    Attributes:
        kind: "full_scan" | "pk_lookup" | "index_lookup" | "index_range"
            | "index_in".
        column: the column driving the path (None for full scans).
        index_name: name of the index used, if any.
        key: equality key for pk/index lookups.
        keys: key list for IN-driven lookups.
        low/high (+ inclusivity): bounds for range scans.
    """

    kind: str
    column: Optional[str] = None
    index_name: Optional[str] = None
    key: SQLValue = None
    keys: Tuple[SQLValue, ...] = ()
    low: SQLValue = None
    high: SQLValue = None
    low_inclusive: bool = True
    high_inclusive: bool = True

    def describe(self) -> str:
        """Human-readable one-line summary (used by EXPLAIN)."""
        if self.kind == "full_scan":
            return "FULL SCAN"
        if self.kind == "pk_lookup":
            return f"PK LOOKUP {self.column}={self.key!r}"
        if self.kind == "index_lookup":
            return f"INDEX LOOKUP {self.index_name}({self.column}={self.key!r})"
        if self.kind == "index_in":
            return (
                f"INDEX IN-LOOKUP {self.index_name}"
                f"({self.column} IN {list(self.keys)!r})"
            )
        low_bracket = "[" if self.low_inclusive else "("
        high_bracket = "]" if self.high_inclusive else ")"
        return (
            f"INDEX RANGE {self.index_name}({self.column} in "
            f"{low_bracket}{self.low!r}, {self.high!r}{high_bracket})"
        )


def _literal_value(expression: Expression) -> Tuple[bool, SQLValue]:
    """If the expression is a literal constant, return (True, value)."""
    if isinstance(expression, Literal):
        return True, expression.value
    return False, None


def _column_equals_literal(
    predicate: Expression,
) -> Optional[Tuple[str, SQLValue]]:
    """Match ``col = literal`` or ``literal = col``; return (col, value)."""
    if not isinstance(predicate, Comparison) or predicate.op != "=":
        return None
    left, right = predicate.left, predicate.right
    if isinstance(left, ColumnRef):
        ok, value = _literal_value(right)
        if ok and value is not None:
            return left.name, value
    if isinstance(right, ColumnRef):
        ok, value = _literal_value(left)
        if ok and value is not None:
            return right.name, value
    return None


def _column_range(
    predicate: Expression,
) -> Optional[Tuple[str, SQLValue, SQLValue, bool, bool]]:
    """Match a single range conjunct on a column.

    Returns (column, low, high, low_inclusive, high_inclusive) with None
    for an unbounded side.
    """
    if isinstance(predicate, Between) and not predicate.negated:
        if isinstance(predicate.operand, ColumnRef):
            low_ok, low = _literal_value(predicate.low)
            high_ok, high = _literal_value(predicate.high)
            if low_ok and high_ok and low is not None and high is not None:
                return predicate.operand.name, low, high, True, True
        return None
    if not isinstance(predicate, Comparison):
        return None
    op, left, right = predicate.op, predicate.left, predicate.right
    if op not in ("<", "<=", ">", ">="):
        return None
    if isinstance(left, ColumnRef):
        ok, value = _literal_value(right)
        if not ok or value is None:
            return None
        column = left.name
    elif isinstance(right, ColumnRef):
        ok, value = _literal_value(left)
        if not ok or value is None:
            return None
        column = right.name
        # flip: literal OP column  ==  column FLIPPED(OP) literal
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
    else:
        return None
    if op == "<":
        return column, None, value, True, False
    if op == "<=":
        return column, None, value, True, True
    if op == ">":
        return column, value, None, False, True
    return column, value, None, True, True


def _column_in_literals(
    predicate: Expression,
) -> Optional[Tuple[str, Tuple[SQLValue, ...]]]:
    """Match ``col IN (lit, lit, ...)``."""
    if not isinstance(predicate, InList) or predicate.negated:
        return None
    if not isinstance(predicate.operand, ColumnRef):
        return None
    values = []
    for item in predicate.items:
        ok, value = _literal_value(item)
        if not ok or value is None:
            return None
        values.append(value)
    return predicate.operand.name, tuple(values)


def choose_access_path(
    catalog: Catalog, table: HeapTable, where: Optional[Expression]
) -> AccessPath:
    """Pick the best access path for ``table`` under predicate ``where``."""
    predicates = conjuncts(where)
    schema = table.schema
    # 1. primary-key equality
    for predicate in predicates:
        match = _column_equals_literal(predicate)
        if match and schema.primary_key and (
            match[0].lower() == schema.primary_key.lower()
        ):
            return AccessPath(
                kind="pk_lookup", column=schema.primary_key, key=match[1]
            )
    # 2. equality on any indexed column
    for predicate in predicates:
        match = _column_equals_literal(predicate)
        if match is None or match[0] not in schema:
            continue
        index = catalog.index_on(table.name, match[0])
        if index is not None:
            return AccessPath(
                kind="index_lookup",
                column=index.column,
                index_name=index.name,
                key=match[1],
            )
    # 3. IN-list on an indexed column
    for predicate in predicates:
        match_in = _column_in_literals(predicate)
        if match_in is None or match_in[0] not in schema:
            continue
        index = catalog.index_on(table.name, match_in[0])
        if index is not None:
            return AccessPath(
                kind="index_in",
                column=index.column,
                index_name=index.name,
                keys=match_in[1],
            )
    # 4. range on an ordered-indexed column: merge all range conjuncts
    #    for the same column to tighten both bounds.
    ranges: dict = {}
    for predicate in predicates:
        match_range = _column_range(predicate)
        if match_range is None or match_range[0] not in schema:
            continue
        column, low, high, low_inc, high_inc = match_range
        index = catalog.index_on(table.name, column, kind="ordered")
        if index is None:
            continue
        entry = ranges.setdefault(
            index.column,
            {"index": index, "low": None, "high": None,
             "low_inc": True, "high_inc": True},
        )
        if low is not None and (
            entry["low"] is None or low > entry["low"]
            or (low == entry["low"] and not low_inc)
        ):
            entry["low"], entry["low_inc"] = low, low_inc
        if high is not None and (
            entry["high"] is None or high < entry["high"]
            or (high == entry["high"] and not high_inc)
        ):
            entry["high"], entry["high_inc"] = high, high_inc
    if ranges:
        column, entry = next(iter(ranges.items()))
        return AccessPath(
            kind="index_range",
            column=column,
            index_name=entry["index"].name,
            low=entry["low"],
            high=entry["high"],
            low_inclusive=entry["low_inc"],
            high_inclusive=entry["high_inc"],
        )
    return AccessPath(kind="full_scan")


def candidate_rowids(
    catalog: Catalog, table: HeapTable, path: AccessPath
) -> List[int]:
    """Materialize the candidate rowid list for an access path."""
    if path.kind == "full_scan":
        return table.rowids()
    if path.kind == "pk_lookup":
        rowid = table.lookup_pk(path.key)
        return [rowid] if rowid is not None else []
    index = None
    for candidate in catalog.indexes_for(table.name):
        if candidate.name == path.index_name:
            index = candidate
            break
    if index is None:  # index dropped between plan and execute
        return table.rowids()
    if path.kind == "index_lookup":
        return index.lookup(path.key)
    if path.kind == "index_in":
        rowids: List[int] = []
        for key in path.keys:
            rowids.extend(index.lookup(key))
        return sorted(set(rowids))
    if path.kind == "index_range":
        return index.range(  # type: ignore[union-attr]
            low=path.low,
            high=path.high,
            low_inclusive=path.low_inclusive,
            high_inclusive=path.high_inclusive,
        )
    raise ValueError(f"unknown access path kind {path.kind!r}")
