"""Durability: save and load databases, import and export CSV.

The engine is in-memory by design (the delay experiments run on
synthetic data), but a production deployment needs its catalog to
survive restarts. This module serialises an entire
:class:`~repro.engine.database.Database` — schemas, rows, rowids, and
index definitions — to a single JSON document, and restores it with
rowids preserved (the delay layer keys its popularity counts by rowid,
so stability across restarts matters).

CSV import/export is provided for moving data in and out of other
systems.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from .catalog import Catalog
from .database import Database
from .errors import CatalogError, EngineError
from .schema import Column, TableSchema
from .types import DataType, SQLValue

#: Format identifier written into every save file.
FORMAT = "repro-engine-v1"


class PersistenceError(EngineError):
    """Raised when a save file is missing, malformed, or incompatible."""


def atomic_write_json(
    path: Union[str, Path], payload: Dict, indent: Optional[int] = None
) -> None:
    """Write JSON so that ``path`` always holds a complete document.

    The payload is written to a temporary file *in the same directory*
    (so the final rename cannot cross filesystems), fsync'd, and moved
    into place with :func:`os.replace` — atomic on POSIX. A crash at any
    point leaves either the previous file or the new one, never a torn
    mix; the directory is fsync'd afterwards so the rename itself is
    durable.
    """
    target = Path(path)
    directory = target.parent if str(target.parent) else Path(".")
    handle_fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=str(directory)
    )
    try:
        with os.fdopen(handle_fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; rename is still atomic
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _column_to_dict(column: Column) -> Dict:
    return column.to_dict()


def _column_from_dict(payload: Dict) -> Column:
    return Column.from_dict(payload)


def dump_database(database: Database) -> Dict:
    """Serialise a database to a JSON-compatible dictionary.

    Takes the write side of the engine lock: the dump must be a
    point-in-time snapshot, and taking the exclusive side (rather than
    a shared read view) lets the writer-preference guarantee it starts
    promptly even under a steady stream of readers.
    """
    with database.write_txn():
        tables = []
        for name in database.catalog.table_names():
            heap = database.catalog.table(name)
            tables.append(
                {
                    "name": heap.schema.name,
                    "columns": [
                        _column_to_dict(column)
                        for column in heap.schema.columns
                    ],
                    "rows": [
                        {"rowid": rowid, "values": list(row)}
                        for rowid, row in heap.scan()
                    ],
                    "next_rowid": heap._next_rowid,
                }
            )
        indexes = []
        for name in database.catalog.table_names():
            for index in database.catalog.indexes_for(name):
                indexes.append(
                    {
                        "name": index.name,
                        "table": index.table.name,
                        "column": index.column,
                        "kind": index.kind,
                    }
                )
        return {"format": FORMAT, "tables": tables, "indexes": indexes}


def load_database(payload: Dict) -> Database:
    """Rebuild a database from :func:`dump_database` output.

    Rowids are restored exactly, so guard-layer state keyed on
    ``(table, rowid)`` remains valid across a save/load cycle.
    """
    if payload.get("format") != FORMAT:
        raise PersistenceError(
            f"unsupported save format {payload.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    database = Database()
    with database.write_txn():
        return _load_into(database, payload)


def _load_into(database: Database, payload: Dict) -> Database:
    """Populate ``database`` from a payload; caller holds its write side."""
    for table_payload in payload.get("tables", []):
        schema = TableSchema(
            table_payload["name"],
            [
                _column_from_dict(column)
                for column in table_payload["columns"]
            ],
        )
        heap = database.catalog.create_table(schema)
        for row_payload in table_payload["rows"]:
            rowid = row_payload["rowid"]
            # Restore with original rowids: validate through insert,
            # then re-key. Insert assigns sequential ids, so replay in
            # rowid order and fix the internal map directly.
            heap.insert(row_payload["values"])
        # Re-key rowids to the saved ones (insert assigned 1..n in
        # saved order, which may differ after deletions pre-save).
        saved_ids = [row["rowid"] for row in table_payload["rows"]]
        _rekey(heap, saved_ids, table_payload.get("next_rowid"))
    for index_payload in payload.get("indexes", []):
        database.catalog.create_index(
            index_payload["name"],
            index_payload["table"],
            index_payload["column"],
            index_payload["kind"],
        )
    return database


def _rekey(heap, saved_ids: List[int], next_rowid: Optional[int]) -> None:
    """Replace sequential insert rowids with the saved rowids."""
    current_ids = heap.rowids()
    if current_ids == saved_ids:
        if next_rowid is not None:
            heap._next_rowid = max(heap._next_rowid, next_rowid)
        return
    rows = {rowid: heap.get(rowid) for rowid in current_ids}
    heap._rows.clear()
    if heap._pk_index is not None:
        heap._pk_index.clear()
    for assigned, saved in zip(current_ids, saved_ids):
        row = rows[assigned]
        heap._rows[saved] = row
        if heap._pk_index is not None:
            heap._pk_index[row[heap._pk_position]] = saved
    top = max(saved_ids, default=0) + 1
    heap._next_rowid = max(top, next_rowid or 0)


def save_database(database: Database, path: Union[str, Path]) -> None:
    """Write a database to ``path`` as JSON, atomically.

    Uses :func:`atomic_write_json`: a crash mid-save leaves the previous
    good snapshot intact rather than a truncated JSON document.
    """
    payload = dump_database(database)
    atomic_write_json(path, payload, indent=1)


def open_database(path: Union[str, Path]) -> Database:
    """Load a database previously written by :func:`save_database`."""
    file_path = Path(path)
    if not file_path.exists():
        raise PersistenceError(f"no save file at {file_path}")
    try:
        payload = json.loads(file_path.read_text())
    except json.JSONDecodeError as error:
        raise PersistenceError(f"corrupt save file: {error}") from error
    return load_database(payload)


# -- CSV ----------------------------------------------------------------------


def export_csv(
    database: Database, table: str, path: Union[str, Path]
) -> int:
    """Write one table to CSV (header row + data); returns row count.

    The scan runs under the engine's shared read lock, so the exported
    file is a consistent point-in-time view even with concurrent
    writers. NULLs are written as empty fields; a TEXT value that is
    itself an empty string round-trips as empty too — use the JSON
    format when that distinction matters.
    """
    with database.read_view():
        heap = database.catalog.table(table)
        count = 0
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(heap.schema.column_names())
            for _rowid, row in heap.scan():
                writer.writerow(
                    ["" if value is None else value for value in row]
                )
                count += 1
        return count


def import_csv(
    database: Database,
    table: str,
    path: Union[str, Path],
    create: bool = False,
) -> int:
    """Load CSV rows into ``table``; returns the number inserted.

    With ``create=True`` a new all-TEXT table is created from the
    header. Otherwise the target table must exist and values are parsed
    into each column's declared type (empty fields become NULL).

    Every record is checked and parsed *before* anything is inserted: a
    ragged record (fewer or more fields than the header) or an
    unparsable value raises :class:`PersistenceError` naming the line,
    and the table is untouched. The inserts then run as one atomic bulk
    load through :meth:`~repro.engine.database.Database.insert_rows` —
    under the engine's exclusive write lock, maintaining secondary
    indexes through the ordinary mutation stream, and journalled when a
    write-ahead journal is attached.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise PersistenceError(f"no CSV file at {file_path}")
    with open(file_path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise PersistenceError("CSV file is empty") from None
        records = []
        for line, record in enumerate(reader, start=2):
            if len(record) != len(header):
                raise PersistenceError(
                    f"CSV line {line} has {len(record)} field(s), "
                    f"header has {len(header)}"
                )
            records.append((line, record))
    with database.write_txn():
        if create:
            if database.catalog.has_table(table):
                raise CatalogError(f"table {table!r} already exists")
            database.create_table(
                TableSchema(
                    table, [Column(name, DataType.TEXT) for name in header]
                )
            )
        heap = database.catalog.table(table)
        schema = heap.schema
        if len(header) != len(schema):
            raise PersistenceError(
                f"CSV has {len(header)} columns, table {table!r} has "
                f"{len(schema)}"
            )
        rows = []
        for line, record in records:
            try:
                rows.append(
                    [
                        _parse_csv_value(text, schema.columns[position].dtype)
                        for position, text in enumerate(record)
                    ]
                )
            except (ValueError, PersistenceError) as error:
                raise PersistenceError(
                    f"CSV line {line}: {error}"
                ) from error
        database.insert_rows(table, rows)
        return len(rows)


def _parse_csv_value(text: str, dtype: DataType) -> SQLValue:
    if text == "":
        return None
    if dtype is DataType.INTEGER:
        return int(text)
    if dtype is DataType.FLOAT:
        return float(text)
    if dtype is DataType.BOOLEAN:
        lowered = text.strip().lower()
        if lowered in ("true", "1", "t", "yes"):
            return True
        if lowered in ("false", "0", "f", "no"):
            return False
        raise PersistenceError(f"cannot parse boolean from {text!r}")
    return text
