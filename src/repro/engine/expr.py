"""Expression AST and evaluation for WHERE clauses and projections.

Expressions are immutable trees evaluated against a row context (a mapping
from lower-cased column name to value). SQL three-valued logic is honoured:
comparisons against NULL yield NULL, and a WHERE clause only admits rows
whose predicate evaluates to exactly TRUE.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import ExecutionError
from .types import SQLValue

#: Row context type: lower-cased column name -> value.
RowContext = Dict[str, SQLValue]


class Expression:
    """Base class for all expression nodes."""

    def evaluate(self, row: RowContext) -> SQLValue:
        """Evaluate against a row context; subclasses must override."""
        raise NotImplementedError

    def columns(self) -> List[str]:
        """Return all column names referenced by this expression."""
        return []


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: SQLValue

    def evaluate(self, row: RowContext) -> SQLValue:
        return self.value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        if self.value is None:
            return "NULL"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column by name."""

    name: str

    def evaluate(self, row: RowContext) -> SQLValue:
        key = self.name.lower()
        try:
            return row[key]
        except KeyError:
            raise ExecutionError(
                f"unknown or ambiguous column {self.name!r} "
                "(qualify shared column names as table.column)"
            ) from None

    def columns(self) -> List[str]:
        return [self.name]

    def __str__(self) -> str:
        return self.name


def _is_null(value: SQLValue) -> bool:
    return value is None


def _numeric_pair(
    left: SQLValue, right: SQLValue, op: str
) -> Tuple[SQLValue, SQLValue]:
    """Require two non-bool numbers and return them *unconverted*.

    Ints stay ints: Python compares and combines int/float operands
    exactly, while a float64 round trip would silently collapse
    integers beyond 2**53 — corrupting equality on large keys and
    therefore ``touched`` sets and delay pricing.
    """
    for side in (left, right):
        if isinstance(side, bool) or not isinstance(side, (int, float)):
            raise ExecutionError(f"operator {op!r} expects numbers, got {side!r}")
    return left, right


def _compare(op: str, left: SQLValue, right: SQLValue) -> Optional[bool]:
    """Three-valued comparison: returns None if either side is NULL."""
    if _is_null(left) or _is_null(right):
        return None
    # Allow int/float cross-comparison; otherwise require same category.
    numeric = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
    if numeric(left) != numeric(right) or (
        isinstance(left, str) != isinstance(right, str)
    ):
        if type(left) is not type(right):
            raise ExecutionError(
                f"cannot compare {left!r} with {right!r} using {op!r}"
            )
    if op == "=":
        return left == right
    if op in ("!=", "<>"):
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison such as ``a < 5``."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: RowContext) -> SQLValue:
        return _compare(self.op, self.left.evaluate(row), self.right.evaluate(row))

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic: ``+ - * / %``. NULL-propagating."""

    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: RowContext) -> SQLValue:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if _is_null(left) or _is_null(right):
            return None
        if self.op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        lnum, rnum = _numeric_pair(left, right, self.op)
        if self.op == "+":
            return lnum + rnum
        if self.op == "-":
            return lnum - rnum
        if self.op == "*":
            return lnum * rnum
        if self.op == "/":
            if rnum == 0:
                raise ExecutionError("division by zero")
            if (
                isinstance(lnum, int)
                and isinstance(rnum, int)
                and lnum % rnum == 0
            ):
                # Evenly-divisible ints divide exactly: true division
                # would produce a float and collapse quotients beyond
                # 2**53 (e.g. ``WHERE id / 1 = <huge key>`` matching
                # the wrong rows and mispricing them).
                return lnum // rnum
            return lnum / rnum
        if self.op == "%":
            if rnum == 0:
                raise ExecutionError("modulo by zero")
            return lnum % rnum
        raise ExecutionError(f"unknown arithmetic operator {self.op!r}")

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Negate(Expression):
    """Unary numeric negation."""

    operand: Expression

    def evaluate(self, row: RowContext) -> SQLValue:
        value = self.operand.evaluate(row)
        if _is_null(value):
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"cannot negate {value!r}")
        return -value

    def columns(self) -> List[str]:
        return self.operand.columns()

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Logical(Expression):
    """AND / OR with SQL three-valued semantics."""

    op: str  # "AND" | "OR"
    left: Expression
    right: Expression

    def evaluate(self, row: RowContext) -> SQLValue:
        left = _as_bool(self.left.evaluate(row))
        right = _as_bool(self.right.evaluate(row))
        if self.op == "AND":
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if self.op == "OR":
            if left is True or right is True:
                return True
            if left is None or right is None:
                return None
            return False
        raise ExecutionError(f"unknown logical operator {self.op!r}")

    def columns(self) -> List[str]:
        return self.left.columns() + self.right.columns()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not(Expression):
    """Logical NOT, NULL-propagating."""

    operand: Expression

    def evaluate(self, row: RowContext) -> SQLValue:
        value = _as_bool(self.operand.evaluate(row))
        if value is None:
            return None
        return not value

    def columns(self) -> List[str]:
        return self.operand.columns()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def evaluate(self, row: RowContext) -> SQLValue:
        result = self.operand.evaluate(row) is None
        return not result if self.negated else result

    def columns(self) -> List[str]:
        return self.operand.columns()

    def __str__(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {suffix})"


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)`` with literal list members."""

    operand: Expression
    items: Tuple[Expression, ...]
    negated: bool = False

    def evaluate(self, row: RowContext) -> SQLValue:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        saw_null = False
        for item in self.items:
            candidate = item.evaluate(row)
            if candidate is None:
                saw_null = True
                continue
            matched = _compare("=", value, candidate)
            if matched:
                return not self.negated
        if saw_null:
            return None
        return self.negated

    def columns(self) -> List[str]:
        cols = self.operand.columns()
        for item in self.items:
            cols.extend(item.columns())
        return cols

    def __str__(self) -> str:
        items = ", ".join(str(item) for item in self.items)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {keyword} ({items}))"


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high`` (inclusive on both ends)."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False

    def evaluate(self, row: RowContext) -> SQLValue:
        value = self.operand.evaluate(row)
        low = self.low.evaluate(row)
        high = self.high.evaluate(row)
        ge = _compare(">=", value, low) if value is not None and low is not None else None
        le = _compare("<=", value, high) if value is not None and high is not None else None
        if ge is None or le is None:
            if ge is False or le is False:
                return self.negated
            return None
        result = ge and le
        return not result if self.negated else result

    def columns(self) -> List[str]:
        return self.operand.columns() + self.low.columns() + self.high.columns()

    def __str__(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {keyword} {self.low} AND {self.high})"


@dataclass(frozen=True)
class Like(Expression):
    """``expr [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: Expression
    negated: bool = False

    def evaluate(self, row: RowContext) -> SQLValue:
        value = self.operand.evaluate(row)
        pattern = self.pattern.evaluate(row)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise ExecutionError("LIKE expects string operands")
        regex = _like_to_regex(pattern)
        result = regex.fullmatch(value) is not None
        return not result if self.negated else result

    def columns(self) -> List[str]:
        return self.operand.columns() + self.pattern.columns()

    def __str__(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand} {keyword} {self.pattern})"


@dataclass(frozen=True)
class InSet(Expression):
    """``expr [NOT] IN <precomputed set>`` (internal, executor-bound).

    Produced by the executor when it binds an ``IN (SELECT ...)``
    subquery: the subquery runs once and its column becomes ``values``.
    NULL semantics match :class:`InList` (a NULL member makes a
    non-match UNKNOWN rather than FALSE).
    """

    operand: Expression
    values: Tuple[SQLValue, ...]
    negated: bool = False
    contains_null: bool = False

    def evaluate(self, row: RowContext) -> SQLValue:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        matched = any(
            candidate is not None and _compare("=", value, candidate)
            for candidate in self.values
        )
        if matched:
            return not self.negated
        if self.contains_null:
            return None
        return self.negated

    def columns(self) -> List[str]:
        return self.operand.columns()

    def __str__(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {keyword} <{len(self.values)} values>)"


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """A parenthesised ``(SELECT ...)`` used as a scalar value.

    Holds the parsed statement; the executor *binds* it (runs it once
    and substitutes the resulting literal) before evaluation — only
    uncorrelated subqueries are supported. Evaluating an unbound
    subquery is an error.
    """

    select: object  # parser.ast.SelectStatement (kept opaque here)

    def evaluate(self, row: RowContext) -> SQLValue:
        raise ExecutionError(
            "unbound scalar subquery (subqueries are only supported in "
            "WHERE and HAVING clauses)"
        )

    def columns(self) -> List[str]:
        return []

    def __str__(self) -> str:
        return "(SELECT ...)"


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``; bound by the executor."""

    operand: Expression
    select: object
    negated: bool = False

    def evaluate(self, row: RowContext) -> SQLValue:
        raise ExecutionError(
            "unbound IN-subquery (subqueries are only supported in "
            "WHERE and HAVING clauses)"
        )

    def columns(self) -> List[str]:
        return self.operand.columns()

    def __str__(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {keyword} (SELECT ...))"


_LIKE_CACHE: Dict[str, "re.Pattern[str]"] = {}


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    cached = _LIKE_CACHE.get(pattern)
    if cached is not None:
        return cached
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    compiled = re.compile("".join(parts), re.DOTALL)
    if len(_LIKE_CACHE) < 1024:
        _LIKE_CACHE[pattern] = compiled
    return compiled


def _as_bool(value: SQLValue) -> Optional[bool]:
    """Coerce an evaluated value to three-valued boolean."""
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    raise ExecutionError(f"expected boolean expression, got {value!r}")


def predicate_holds(expression: Optional[Expression], row: RowContext) -> bool:
    """Return True iff ``expression`` is absent or evaluates to exactly TRUE."""
    if expression is None:
        return True
    return _as_bool(expression.evaluate(row)) is True


def conjuncts(expression: Optional[Expression]) -> List[Expression]:
    """Flatten an AND-tree into its conjunct list (empty for None)."""
    if expression is None:
        return []
    if isinstance(expression, Logical) and expression.op == "AND":
        return conjuncts(expression.left) + conjuncts(expression.right)
    return [expression]
